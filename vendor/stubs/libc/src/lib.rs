//! Offline stand-in for `libc`: exactly the x86-64 Linux (glibc) surface
//! this workspace touches — memory mapping, memfd, and SIGSEGV handling.
//! The extern declarations link against the system C library like the
//! real crate; the struct layouts mirror glibc's x86-64 ABI. Only used by
//! the offline stub registry (see `vendor/stubs/README.md`).

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)]
#![allow(non_snake_case)] // The W* status macros keep their POSIX names.
#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

pub use std::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type greg_t = i64;
pub type sighandler_t = size_t;
pub type socklen_t = u32;
pub type pid_t = i32;

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const MAP_SHARED: c_int = 1;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;
pub const MFD_CLOEXEC: c_uint = 1;
pub const SYS_memfd_create: c_long = 319;
pub const _SC_PAGESIZE: c_int = 30;
pub const SIGSEGV: c_int = 11;
pub const SA_SIGINFO: c_int = 4;
pub const SIG_DFL: sighandler_t = 0;
/// Index of the page-fault error code in `mcontext_t::gregs` (x86-64).
pub const REG_ERR: c_int = 19;

pub const AF_UNIX: c_int = 1;
pub const SOCK_SEQPACKET: c_int = 5;
pub const SOL_SOCKET: c_int = 1;
pub const SO_RCVBUF: c_int = 8;
pub const MSG_NOSIGNAL: c_int = 0x4000;
pub const EINTR: c_int = 4;

/// glibc's 1024-bit signal set.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<extern "C" fn()>,
}

/// glibc's 128-byte `siginfo_t`; the fault address is the first union
/// field after the three leading ints (offset 16 on 64-bit).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad0: c_int,
    _sifields: [u64; 14],
}

impl siginfo_t {
    /// Faulting address (valid for SIGSEGV/SIGBUS).
    ///
    /// # Safety
    ///
    /// Only meaningful inside a handler for a fault signal.
    pub unsafe fn si_addr(&self) -> *mut c_void {
        self._sifields[0] as *mut c_void
    }
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct stack_t {
    pub ss_sp: *mut c_void,
    pub ss_flags: c_int,
    pub ss_size: size_t,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct mcontext_t {
    pub gregs: [greg_t; 23],
    fpregs: *mut c_void,
    __reserved1: [u64; 8],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct ucontext_t {
    pub uc_flags: c_ulong,
    pub uc_link: *mut ucontext_t,
    pub uc_stack: stack_t,
    pub uc_mcontext: mcontext_t,
    pub uc_sigmask: sigset_t,
    __fpregs_mem: [u64; 64],
    __ssp: [u64; 4],
}

extern "C" {
    pub fn sysconf(name: c_int) -> c_long;
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    pub fn socketpair(domain: c_int, ty: c_int, protocol: c_int, sv: *mut c_int) -> c_int;
    pub fn setsockopt(
        socket: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        option_len: socklen_t,
    ) -> c_int;
    pub fn send(socket: c_int, buf: *const c_void, len: size_t, flags: c_int) -> ssize_t;
    pub fn recv(socket: c_int, buf: *mut c_void, len: size_t, flags: c_int) -> ssize_t;
    pub fn fork() -> pid_t;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn _exit(code: c_int) -> !;
}

/// Whether `waitpid` status reports death by signal.
pub fn WIFSIGNALED(status: c_int) -> bool {
    ((status & 0x7f) + 1) >> 1 > 0
}

/// The signal that killed the child (valid when [`WIFSIGNALED`]).
pub fn WTERMSIG(status: c_int) -> c_int {
    status & 0x7f
}
