//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//! This workspace only *derives* Serialize/Deserialize (no code consumes
//! the traits), so empty expansions typecheck everywhere.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
