//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! integer-range / tuple / `collection::vec` / `any::<T>()` strategies,
//! `prop_assume!` and the `prop_assert*!` family, and
//! `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test RNG; failures report the failing case but are
//! **not shrunk**. Only used by the offline stub registry (see
//! `vendor/stubs/README.md`).

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; each generated test derives its seed from
    /// the test name so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test name, used to seed its [`TestRng`].
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Run configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bit-pattern reinterpretation: exercises NaN/inf/subnormals too.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy over a type's whole domain; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs `cases` passing cases of `body`, skipping rejected ones.
/// Support runtime for the `proptest!` macro — not called directly.
pub fn run_cases(
    name: &str,
    cfg: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::new(seed_from_name(name));
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(64);
    while passed < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many prop_assume! rejections ({attempts} attempts, {passed} passed)"
        );
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {attempts} failed: {msg}")
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $cfg;
            $crate::run_cases(stringify!($name), &cfg, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                #[allow(unused_braces)]
                { $body }
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left), stringify!($right), l
                    )));
                }
            }
        }
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}
