//! Offline stand-in for `rand`: the workspace declares the dependency but
//! no code imports it, so this only needs to satisfy resolution. A tiny
//! SplitMix64 is provided in case a future bench wants cheap randomness.
//! Only used by the offline stub registry (see `vendor/stubs/README.md`).

/// Minimal deterministic generator (SplitMix64).
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
