//! Offline stand-in for `crossbeam` (channel module only).
//!
//! `std::sync::mpsc` provides the same unbounded MPSC semantics and the
//! same error enums this workspace relies on. Only used by the offline
//! stub registry (see `vendor/stubs/README.md`).

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when every receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a wall-clock timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
