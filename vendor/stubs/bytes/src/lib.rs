//! Offline stand-in for `bytes`.
//!
//! A cheaply clonable, immutable byte buffer — the only `Bytes` behaviour
//! this workspace needs. Only used by the offline stub registry (see
//! `vendor/stubs/README.md`).

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    /// A buffer borrowing nothing: copies from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self(Arc::from(s))
    }

    /// Copies `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self(Arc::from(s))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self(Arc::from(s))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self(Arc::from(b))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.0.len())
    }
}
