//! Offline stand-in for `serde`.
//!
//! This workspace only derives `Serialize`/`Deserialize` for report
//! structs; nothing serializes through the traits. The stub re-exports
//! no-op derive macros. Only used by the offline stub registry (see
//! `vendor/stubs/README.md`).

pub use serde_derive::{Deserialize, Serialize};
