//! Offline stand-in for `criterion`.
//!
//! Runs each registered benchmark closure for a handful of iterations,
//! reports a crude mean per iteration, and collects no statistics.
//! Enough to keep `cargo bench`/`cargo test --benches` compiling and
//! smoke-running offline. Only used by the offline stub registry (see
//! `vendor/stubs/README.md`).

use std::time::Instant;

/// Iterations per measured benchmark in this stub.
const ITERS: u64 = 10;

pub use std::hint::black_box;

/// How batched inputs are grouped; ignored by the stub.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            black_box(routine());
        }
    }

    /// Times `routine` on fresh inputs from `setup` each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            black_box(routine(input));
        }
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { _private: () };
    let start = Instant::now();
    f(&mut b);
    let per_iter = start.elapsed().as_nanos() as u64 / ITERS.max(1);
    println!("bench {name:<40} ~{per_iter} ns/iter (stub, {ITERS} iters)");
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark immediately.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl ToString, mut f: F) {
        run_one(&name.to_string(), &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group; benches run immediately, `finish` is a no-op.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl ToString, mut f: F) {
        run_one(&format!("{}/{}", self.name, name.to_string()), &mut f);
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
