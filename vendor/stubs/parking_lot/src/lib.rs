//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the (subset of the) `parking_lot`
//! API this workspace uses: non-poisoning `lock()`/`read()`/`write()`
//! without `Result`, and a `Condvar::wait` that takes `&mut MutexGuard`.
//! Only used by the offline stub registry (see `vendor/stubs/README.md`);
//! networked builds use the real crate.

use std::sync::{self, PoisonError};

/// Guard type re-used from std (identical deref behaviour).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Read guard type re-used from std.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard type re-used from std.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that ignores poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Self(sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(t: T) -> Self {
        Self(sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condition-variable wait (mirrors
/// `parking_lot::WaitTimeoutResult`).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    ///
    /// `std`'s wait consumes the guard; `parking_lot`'s borrows it. Bridge
    /// the two by moving the guard out and back through raw pointers.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: `guard` is exclusively borrowed; we move the value out,
        // hand it to std's wait, and write the returned guard back before
        // anyone can observe the hole. A panic inside `wait` aborts via
        // the duplicate-guard drop, which is acceptable for a test stub.
        unsafe {
            let taken = std::ptr::read(guard);
            let back = self.0.wait(taken).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, back);
        }
    }

    /// Blocks until notified or `timeout` elapses. Returns a result whose
    /// [`WaitTimeoutResult::timed_out`] reports whether the wait expired.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: same guard move-out/move-back dance as `wait` above.
        unsafe {
            let taken = std::ptr::read(guard);
            let (back, res) = self
                .0
                .wait_timeout(taken, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, back);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}
