//! Umbrella package for the Millipage reproduction: examples and
//! cross-crate integration tests live here.
