#!/usr/bin/env sh
# Tier-1 offline build + test.
#
# The workspace needs NO network and NO registry cache: the committed
# [patch.crates-io] section in Cargo.toml routes every external
# dependency to the std-only stub crates in vendor/stubs/, and
# .cargo/config.toml pins `[net] offline = true`. See
# vendor/stubs/README.md for the stub inventory and how to switch back
# to registry builds.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --release --workspace --no-fail-fast
