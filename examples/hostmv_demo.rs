//! MultiView on the real MMU (Linux): the paper's §2 mechanism live.
//!
//! Run with `cargo run --release --example hostmv_demo`.
//!
//! Creates one memory object (`memfd`), maps it through three application
//! views plus the privileged view, installs a SIGSEGV handler, and then:
//!
//! 1. takes real page faults through sealed views and upgrades their
//!    protection on the fly (the DSM fault path),
//! 2. shows the same physical page carrying different protections through
//!    different views,
//! 3. performs a privileged-view update while application views are
//!    sealed (§2.3.1's atomic update / zero-copy receive),
//! 4. measures the real cost of a fault + mprotect upgrade cycle.

#[cfg(target_os = "linux")]
fn main() {
    use hostmv::{install_handler, HostProt, MultiViewRegion};
    use std::sync::Arc;
    use std::time::Instant;

    let region = Arc::new(MultiViewRegion::new(16, 3).expect("mmap views"));
    let counters = install_handler(Arc::clone(&region)).expect("install handler");
    println!(
        "memory object: {} pages of {} B, {} app views + privileged view",
        region.pages(),
        region.page_size(),
        region.views()
    );

    // 1. Fault-driven upgrades.
    region.priv_write(0, 0, b"hello through the privileged view");
    println!("\n-- fault-driven upgrade ladder --");
    println!("view 0 page 0: {:?}", region.prot(0, 0));
    let b = region.read_u8(0, 0, 0); // SIGSEGV -> ReadOnly -> retry.
    println!(
        "read through sealed view 0 returned {:?} after {} read fault(s); prot now {:?}",
        b as char,
        counters.read_faults(),
        region.prot(0, 0)
    );
    region.write_u8(0, 0, 0, b'H'); // SIGSEGV -> ReadWrite -> retry.
    println!(
        "write upgraded to {:?} ({} write faults so far)",
        region.prot(0, 0),
        counters.write_faults()
    );

    // 2. Independent protections over one physical page.
    println!("\n-- one physical page, three protections --");
    region.protect(1, 0, HostProt::ReadOnly).expect("mprotect");
    println!(
        "page 0: view0={:?} view1={:?} view2={:?} (same bytes: view1 reads {:?})",
        region.prot(0, 0),
        region.prot(1, 0),
        region.prot(2, 0),
        region.read_u8(1, 0, 0) as char,
    );

    // 3. Privileged update while sealed.
    println!("\n-- privileged update while application views are sealed --");
    region.protect(0, 1, HostProt::NoAccess).expect("mprotect");
    region.priv_write(1, 0, b"minipage contents arriving off the wire");
    region.protect(0, 1, HostProt::ReadOnly).expect("mprotect");
    println!(
        "after grant, view 0 reads: {:?}",
        (0..8)
            .map(|i| region.read_u8(0, 1, i) as char)
            .collect::<String>()
    );

    // 4. Real fault cost.
    println!("\n-- real fault + upgrade cost --");
    let rounds = 2_000u32;
    let t0 = Instant::now();
    for i in 0..rounds {
        region.protect(0, 2, HostProt::NoAccess).expect("mprotect");
        region.write_u8(0, 2, 0, i as u8); // One SIGSEGV round trip each.
    }
    let per = t0.elapsed().as_nanos() as f64 / rounds as f64;
    println!(
        "{rounds} seal+fault+upgrade cycles: {per:.0} ns each \
         (paper's NT access fault alone: 26 us on a 300 MHz P-II)"
    );
    println!(
        "\ntotals: {} read faults, {} write faults — all recovered",
        counters.read_faults(),
        counters.write_faults()
    );
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("hostmv_demo requires Linux (mmap/mprotect/SIGSEGV).");
}
