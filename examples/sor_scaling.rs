//! SOR scaling study: the red/black solver of §4.3 across 1–8 hosts.
//!
//! Run with `cargo run --release --example sor_scaling [-- rows cols iters]`.
//!
//! Rows are separate allocations (256-byte minipages at the paper's 64
//! columns), so only band-boundary rows travel between hosts and the
//! speedup stays near linear — the headline fine-grain result.

use millipage::ClusterConfig;
use millipage_apps::sor::{run_sor, SorParams};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let p = SorParams {
        rows: args.first().copied().unwrap_or(2048),
        cols: args.get(1).copied().unwrap_or(64),
        iters: args.get(2).copied().unwrap_or(10),
    };
    println!(
        "SOR {}x{} ({} KB shared, {} iterations), row = {} B minipage\n",
        p.rows,
        p.cols,
        p.shared_bytes() / 1024,
        p.iters,
        p.cols * 4
    );
    // The fault column covers the whole run, including host 0 reading the
    // full matrix back for verification after the timed region.
    println!("hosts  time(ms)  speedup  eff  faults(run)  barriers");
    let mut t1 = 0;
    for hosts in [1usize, 2, 4, 8] {
        let cfg = ClusterConfig {
            hosts,
            ..ClusterConfig::default()
        };
        let r = run_sor(cfg, p);
        assert!(r.report.coherence_violations.is_empty());
        if hosts == 1 {
            t1 = r.timed_ns;
        }
        println!(
            "{:>5}  {:>8.2}  {:>7.2}  {:>4.2}  {:>11}  {:>8}",
            hosts,
            r.timed_ns as f64 / 1e6,
            r.speedup(t1),
            r.speedup(t1) / hosts as f64,
            r.report.read_faults,
            r.report.barriers,
        );
    }
}
