//! Quickstart: a four-host Millipage cluster sharing fine-grain data.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Demonstrates the core API: malloc-like allocation (every allocation is
//! its own minipage), transparent fault-driven sharing, barriers, locks,
//! and the run report with the Figure 6 time breakdown.

use millipage::{run, AllocMode, Category, ClusterConfig, CostModel, HostId};

fn main() {
    let cfg = ClusterConfig {
        hosts: 4,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        seed: 42,
        ..ClusterConfig::default()
    };

    let report = run(
        cfg,
        // Setup runs once on the manager: allocate the shared state.
        |setup| {
            let counter = setup.alloc_cell_init::<u64>(0);
            let table = setup.alloc_vec_init::<f64>(&[0.0; 32]);
            (counter, table)
        },
        // Every host runs this program.
        |ctx, (counter, table)| {
            let me = ctx.host().index();

            // Each host fills its own slice of the table; the table is one
            // allocation — one minipage — so the single writable copy
            // migrates between hosts as they take turns.
            for i in (me * 8)..(me * 8 + 8) {
                ctx.set(table, i, (i * i) as f64);
            }
            ctx.barrier();

            // A lock-protected shared counter.
            for _ in 0..10 {
                ctx.lock(1);
                let v = ctx.cell_get(counter);
                ctx.compute(5_000); // 5 µs of "work" in the section.
                ctx.cell_set(counter, v + 1);
                ctx.unlock(1);
            }
            ctx.barrier();

            if ctx.host() == HostId(0) {
                let total = ctx.cell_get(counter);
                assert_eq!(total, 40);
                let sum: f64 = (0..32).map(|i| ctx.get(table, i)).sum();
                println!("counter = {total}, table checksum = {sum}");
            }
        },
    );

    println!("\n-- run report --");
    println!("hosts          : {}", report.hosts);
    println!(
        "virtual time   : {:.2} ms",
        report.virtual_time as f64 / 1e6
    );
    println!("read faults    : {}", report.read_faults);
    println!("write faults   : {}", report.write_faults);
    println!("invalidations  : {}", report.invalidations);
    println!("barriers       : {}", report.barriers);
    println!("lock acquires  : {}", report.lock_acquires);
    println!("messages       : {}", report.messages);
    for c in Category::ALL {
        println!(
            "  {:<12} {:>8.2} ms",
            c.label(),
            report.breakdown.get(c) as f64 / 1e6
        );
    }
    assert!(report.coherence_violations.is_empty());
    println!("coherence      : OK (single-writer/multiple-readers held)");
}
