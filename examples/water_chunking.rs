//! WATER chunking study — a compact interactive version of Figure 7.
//!
//! Run with `cargo run --release --example water_chunking [-- molecules]`.
//!
//! Sweeps the allocator chunking level (§4.4) from 1 (one molecule per
//! minipage) through 6 (a full page of molecules) to `none`
//! (page-granularity allocation, the classical page-based DSM), printing
//! the false-sharing/aggregation tradeoff: competing requests rise with
//! the chunk level while fault counts fall, and efficiency peaks in the
//! middle.

use millipage::{AllocMode, ClusterConfig};
use millipage_apps::water::{run_water, WaterParams};

fn main() {
    let molecules = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(192);
    let p = WaterParams {
        molecules,
        ..WaterParams::paper()
    };
    println!(
        "WATER, {} molecules of 672 B, 8 hosts (paper: optimum at level 5)\n",
        p.molecules
    );
    println!("chunk  time(ms)  faults  competing  locks");
    let mut results = Vec::new();
    for level in 1..=6usize {
        let cfg = ClusterConfig {
            hosts: 8,
            alloc_mode: AllocMode::FineGrain { chunking: level },
            ..ClusterConfig::default()
        };
        results.push((level.to_string(), run_water(cfg, p)));
    }
    let cfg = ClusterConfig {
        hosts: 8,
        alloc_mode: AllocMode::PageGrain,
        ..ClusterConfig::default()
    };
    results.push(("none".into(), run_water(cfg, p)));
    let best = results
        .iter()
        .map(|(_, r)| r.timed_ns)
        .min()
        .expect("nonempty");
    for (label, r) in &results {
        assert!(r.report.coherence_violations.is_empty());
        println!(
            "{:>5}  {:>8.2}  {:>6}  {:>9}  {:>5}   efficiency {:.2}",
            label,
            r.timed_ns as f64 / 1e6,
            r.report.read_faults + r.report.write_faults,
            r.report.competing_requests,
            r.report.lock_acquires,
            best as f64 / r.timed_ns as f64,
        );
    }
}
