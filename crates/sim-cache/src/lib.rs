//! Cache and TLB simulation for the MultiView overhead study (§4.1).
//!
//! The paper's Figure 5 measures a standalone test application that
//! traverses an `N`-byte array through `n` views (minipages of `4096/n`
//! bytes) and finds:
//!
//! 1. overhead under 4% while the active page-table footprint fits the
//!    second-level cache,
//! 2. sharp *breaking points* where `n · N ≈ 512` (N in MB) — exactly
//!    where the PTE working set (`n · N / 1024` bytes at 4 bytes per PTE)
//!    exceeds the Pentium II's 512 KB L2,
//! 3. linear growth beyond the break with a slope independent of `N`.
//!
//! This crate provides the pieces to reproduce that mechanism: a
//! set-associative [`Cache`] with per-access insertion policy (reused PTE
//! lines insert at MRU; the streaming data lines insert near LRU, modeling
//! their single-use behaviour), a [`Tlb`], and the [`fig5`] model that
//! replays the test application's reference stream.

mod cache;
pub mod fig5;
mod tlb;

pub use cache::{Cache, CacheConfig, Insertion};
pub use tlb::{Tlb, TlbConfig};
