//! A set-associative cache simulator with per-access insertion policy.

/// Where a filled line enters its set's recency stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insertion {
    /// Most-recently-used position: normal fills (reused data, PTEs).
    Mru,
    /// Least-recently-used position: streaming fills that will not be
    /// reused soon (the sequential data sweep of the Figure 5 test). This
    /// models the effective streaming resistance that keeps hot PTE lines
    /// resident while single-use data flows through.
    Lru,
}

/// Cache geometry.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheConfig {
    /// The paper's testbed L2: 512 KB, 4-way, 32-byte lines.
    pub fn pentium_ii_l2() -> Self {
        Self {
            capacity: 512 * 1024,
            ways: 4,
            line: 32,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line)
    }
}

/// A set-associative cache with true-LRU replacement and configurable
/// insertion position.
pub struct Cache {
    cfg: CacheConfig,
    /// Per set: tags ordered most- to least-recently used.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sizes, non-power-of-two line,
    /// capacity not divisible into sets).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two() && cfg.line > 0, "bad line size");
        assert!(cfg.ways > 0, "need at least one way");
        assert!(
            cfg.capacity.is_multiple_of(cfg.ways * cfg.line) && cfg.sets() > 0,
            "capacity must divide into sets"
        );
        Self {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets()],
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses byte address `addr`; returns `true` on hit. On miss, the
    /// line is filled at the given insertion position.
    pub fn access(&mut self, addr: u64, ins: Insertion) -> bool {
        let tag = addr / self.cfg.line as u64;
        let set = (tag % self.sets.len() as u64) as usize;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|&t| t == tag) {
            lines.remove(pos);
            lines.insert(0, tag);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if lines.len() == self.cfg.ways {
            lines.pop();
        }
        match ins {
            Insertion::Mru => lines.insert(0, tag),
            Insertion::Lru => lines.push(tag),
        }
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(capacity: usize, ways: usize, line: usize) -> Cache {
        Cache::new(CacheConfig {
            capacity,
            ways,
            line,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny(1024, 2, 32);
        assert!(!c.access(0, Insertion::Mru));
        assert!(c.access(0, Insertion::Mru));
        assert!(c.access(31, Insertion::Mru), "same line");
        assert!(!c.access(32, Insertion::Mru), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // One set: capacity 64, 2 ways, 32-byte lines.
        let mut c = tiny(64, 2, 32);
        c.access(0, Insertion::Mru); // {0}
        c.access(64, Insertion::Mru); // {64, 0} — same set (one set total).
        c.access(0, Insertion::Mru); // touch 0 → {0, 64}
        c.access(128, Insertion::Mru); // evicts 64 → {128, 0}
        assert!(c.access(0, Insertion::Mru));
        assert!(!c.access(64, Insertion::Mru));
    }

    #[test]
    fn lru_insertion_is_evicted_first() {
        let mut c = tiny(64, 2, 32);
        c.access(0, Insertion::Mru);
        c.access(64, Insertion::Lru); // Inserted at LRU position.
        c.access(128, Insertion::Mru); // Should evict 64, not 0.
        assert!(c.access(0, Insertion::Mru));
        assert!(!c.access(64, Insertion::Mru));
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheConfig {
            capacity: 4096,
            ways: 4,
            line: 32,
        });
        // 2 KB working set in a 4 KB cache: after warmup, all hits.
        for _ in 0..3 {
            for a in (0..2048u64).step_by(32) {
                c.access(a, Insertion::Mru);
            }
        }
        c.reset();
        for a in (0..2048u64).step_by(32) {
            c.access(a, Insertion::Mru);
        }
        // Second sweep must be all hits.
        let h0 = c.hits();
        for a in (0..2048u64).step_by(32) {
            c.access(a, Insertion::Mru);
        }
        assert_eq!(c.hits() - h0, 64);
    }

    #[test]
    fn oversized_working_set_thrashes_with_mru_round_robin() {
        // Sequential sweep larger than capacity with MRU insertion and
        // true LRU: classic worst case, ~0% hits.
        let mut c = Cache::new(CacheConfig {
            capacity: 1024,
            ways: 4,
            line: 32,
        });
        for _ in 0..4 {
            for a in (0..4096u64).step_by(32) {
                c.access(a, Insertion::Mru);
            }
        }
        assert!(c.hit_rate() < 0.01, "rate = {}", c.hit_rate());
    }

    #[test]
    fn streaming_with_lru_insertion_preserves_hot_lines() {
        // Hot set of 16 lines + a large stream: with LRU insertion for the
        // stream, the hot lines keep hitting.
        let mut c = Cache::new(CacheConfig {
            capacity: 2048,
            ways: 4,
            line: 32,
        });
        let hot: Vec<u64> = (0..16u64).map(|i| i * 32).collect();
        for round in 0..20u64 {
            for &h in &hot {
                c.access(h, Insertion::Mru);
            }
            for s in 0..64u64 {
                c.access((1 << 20) | ((round * 64 + s) * 32), Insertion::Lru);
            }
        }
        // Hot lines: 16 × 20 accesses, only the first round misses.
        assert!(c.hits() >= 16 * 19, "hits = {}", c.hits());
    }

    #[test]
    fn fully_associative_lru_is_a_stack_algorithm() {
        // Inclusion property: a larger fully-associative LRU cache never
        // has fewer hits on the same trace.
        let trace: Vec<u64> = (0..400u64).map(|i| ((i * 37) % 93) * 32).collect();
        let mut prev_hits = 0;
        for ways in [4usize, 8, 16, 32] {
            let mut c = Cache::new(CacheConfig {
                capacity: 32 * ways,
                ways,
                line: 32,
            });
            for &a in &trace {
                c.access(a, Insertion::Mru);
            }
            assert!(
                c.hits() >= prev_hits,
                "ways {ways}: {} < {prev_hits}",
                c.hits()
            );
            prev_hits = c.hits();
        }
    }

    #[test]
    fn pentium_l2_geometry() {
        let cfg = CacheConfig::pentium_ii_l2();
        assert_eq!(cfg.sets(), 4096);
        let _ = Cache::new(cfg);
    }
}
