//! The Figure 5 microbenchmark model.
//!
//! §4.1's test application "allocates an array of characters (bytes). The
//! array resides in minipages of equal size. The number of minipages in
//! each page is equal to the number of views. The main application routine
//! iteratively traverses the array, reading each element (from first to
//! last) exactly once in each iteration."
//!
//! Reference stream, replayed exactly (exploiting sequential access so one
//! model step covers one minipage visit):
//!
//! * each minipage visit touches a fresh vpage → one TLB lookup; a TLB
//!   miss walks to the PTE, whose 4 bytes live in a PTE array indexed by
//!   global vpage number and may hit or miss the L2;
//! * each 32-byte data line of the minipage is one L2 access; the data
//!   sweep is streaming (each line read once per iteration) and inserts
//!   at LRU, while PTE lines insert at MRU — the modeling choice that
//!   reproduces the paper's observation that the breaking points sit
//!   exactly where the PTE footprint (`n·N/1024` bytes) exceeds the
//!   512 KB L2 (§4.1's own explanation: "the breaking-points occur
//!   precisely when the PTEs can no longer be cached there").

use crate::cache::{Cache, CacheConfig, Insertion};
use crate::tlb::{Tlb, TlbConfig};

/// Timing and geometry of the Figure 5 model.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Config {
    /// Page size (4 KB on the testbed).
    pub page: usize,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Base cost of one byte access (L1 hit path), ns.
    pub base_ns: f64,
    /// Cost of an L2 data-line fill from memory, ns.
    pub data_miss_ns: f64,
    /// TLB miss with the PTE in L2, ns.
    pub tlb_miss_l2_hit_ns: f64,
    /// TLB miss with the PTE walk going to memory, ns. Calibrated: covers
    /// the multi-level walk plus the replacement interference the paper
    /// observes ("the cache misses caused by the missing PTEs dominate the
    /// cache activity").
    pub pte_mem_ns: f64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            page: 4096,
            tlb: TlbConfig::pentium_ii_data(),
            l2: CacheConfig::pentium_ii_l2(),
            base_ns: 6.6, // ~2 cycles at 300 MHz per byte read loop.
            data_miss_ns: 70.0,
            tlb_miss_l2_hit_ns: 25.0,
            pte_mem_ns: 400.0,
        }
    }
}

/// One point of the Figure 5 surface.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Point {
    /// Array size in bytes.
    pub n_bytes: usize,
    /// Number of views (= minipages per page).
    pub views: usize,
    /// Modeled nanoseconds for one traversal iteration.
    pub iter_ns: f64,
    /// Slowdown relative to the single-view traversal of the same array.
    pub slowdown: f64,
    /// PTE footprint in bytes (`n·N/1024` at 4 bytes per PTE).
    pub pte_footprint: usize,
}

/// Models one traversal iteration; returns total ns.
fn iteration_ns(
    cfg: &Fig5Config,
    n_bytes: usize,
    views: usize,
    tlb: &mut Tlb,
    l2: &mut Cache,
) -> f64 {
    let pages = n_bytes.div_ceil(cfg.page);
    // The paper sweeps view counts that do not divide the page (16, 64,
    // 112, …): the page splits into `views` minipages of floor(page/views)
    // bytes, the last one absorbing the remainder.
    let minipage = (cfg.page / views).max(1);
    // Virtual layout: view v spans its own range of vpages; PTEs for all
    // views live in per-view page-table regions.
    let pte_region = 1u64 << 40; // Distinct address region for PTEs.
    let mut ns = 0.0;
    for page in 0..pages {
        for view in 0..views {
            // One minipage visit: vpage = (view, page).
            let vpn = (view * pages + page) as u64;
            if !tlb.access(vpn) {
                let pte_addr = pte_region + vpn * 4;
                if l2.access(pte_addr, Insertion::Mru) {
                    ns += cfg.tlb_miss_l2_hit_ns;
                } else {
                    ns += cfg.pte_mem_ns;
                }
            }
            // The minipage's data lines (shared physical page, so the data
            // addresses are the same regardless of view).
            let this_len = if view == views - 1 {
                cfg.page - minipage * (views - 1)
            } else {
                minipage
            };
            let base = (page * cfg.page + minipage * view) as u64;
            for line in 0..this_len.div_ceil(cfg.l2.line) {
                if !l2.access(base + (line * cfg.l2.line) as u64, Insertion::Lru) {
                    ns += cfg.data_miss_ns;
                }
            }
            ns += cfg.base_ns * this_len as f64;
        }
    }
    ns
}

/// Computes one Figure 5 point: traversal of `n_bytes` through `views`
/// views, warmed up and normalized against the single-view baseline.
///
/// # Panics
///
/// Panics if `views` is zero or exceeds the page size.
pub fn point(cfg: &Fig5Config, n_bytes: usize, views: usize) -> Fig5Point {
    assert!(
        views >= 1 && views <= cfg.page,
        "need between 1 and page-size views"
    );
    let run = |v: usize| {
        let mut tlb = Tlb::new(cfg.tlb);
        let mut l2 = Cache::new(CacheConfig { ..cfg.l2 });
        // Warm one iteration, measure the second (steady state).
        iteration_ns(cfg, n_bytes, v, &mut tlb, &mut l2);
        iteration_ns(cfg, n_bytes, v, &mut tlb, &mut l2)
    };
    let iter_ns = run(views);
    let baseline = run(1);
    Fig5Point {
        n_bytes,
        views,
        iter_ns,
        slowdown: iter_ns / baseline,
        pte_footprint: n_bytes / cfg.page * views * 4,
    }
}

/// Sweeps the Figure 5 grid: every `views` value for every array size.
pub fn sweep(cfg: &Fig5Config, sizes: &[usize], views: &[usize]) -> Vec<Fig5Point> {
    let mut out = Vec::new();
    for &n in sizes {
        for &v in views {
            out.push(point(cfg, n, v));
        }
    }
    out
}

/// The paper's breaking-point rule: overhead becomes substantial where
/// `n · N ≈ 512` (N in MB), i.e. the PTE footprint reaches the L2 size.
pub fn predicted_break_views(cfg: &Fig5Config, n_bytes: usize) -> usize {
    (cfg.l2.capacity / 4 * cfg.page / n_bytes).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1 << 20;

    #[test]
    fn below_break_overhead_is_small() {
        // §4.1: "For 1 ≤ n ≤ 32 the measured overhead is always less than
        // 4% for 512KB ≤ N ≤ 16MB."
        let cfg = Fig5Config::default();
        for n_bytes in [512 * 1024, MB, 4 * MB] {
            for views in [2usize, 8, 16] {
                if views * n_bytes >= 512 * MB {
                    continue;
                }
                let p = point(&cfg, n_bytes, views);
                assert!(
                    p.slowdown < 1.06,
                    "N={n_bytes} n={views}: slowdown {}",
                    p.slowdown
                );
            }
        }
    }

    #[test]
    fn breaking_point_at_paper_location() {
        // N = 16 MB breaks at n ≈ 32 (n·N = 512 MB).
        let cfg = Fig5Config::default();
        assert_eq!(predicted_break_views(&cfg, 16 * MB), 32);
        let before = point(&cfg, 16 * MB, 16).slowdown;
        let after = point(&cfg, 16 * MB, 128).slowdown;
        assert!(before < 1.1, "below break: {before}");
        assert!(after > 1.5, "beyond break: {after}");
    }

    #[test]
    fn beyond_break_growth_is_linear_in_views() {
        let cfg = Fig5Config::default();
        let n = 16 * MB;
        let s = |v: usize| point(&cfg, n, v).slowdown;
        let (s128, s256, s512) = (s(128), s(256), s(512));
        let d1 = (s256 - s128) / 128.0;
        let d2 = (s512 - s256) / 256.0;
        assert!((d1 - d2).abs() / d1 < 0.25, "slopes differ: {d1} vs {d2}");
    }

    #[test]
    fn slope_beyond_break_is_size_independent() {
        // §4.1: "beyond their respective breaking-points, the graphs for
        // all N increase with the same slope".
        let cfg = Fig5Config::default();
        let slope = |n_bytes: usize, v1: usize, v2: usize| {
            (point(&cfg, n_bytes, v2).slowdown - point(&cfg, n_bytes, v1).slowdown)
                / (v2 - v1) as f64
        };
        let s16 = slope(16 * MB, 128, 512);
        let s8 = slope(8 * MB, 256, 512);
        assert!(
            (s16 - s8).abs() / s16 < 0.35,
            "slopes: 16MB {s16} vs 8MB {s8}"
        );
    }

    #[test]
    fn pte_footprint_formula() {
        let cfg = Fig5Config::default();
        let p = point(&cfg, MB, 16);
        // 1 MB / 4 KB pages × 16 views × 4 B = 16 KB.
        assert_eq!(p.pte_footprint, 16 * 1024);
    }

    #[test]
    fn sweep_covers_grid() {
        let cfg = Fig5Config::default();
        let pts = sweep(&cfg, &[MB, 2 * MB], &[1, 16, 64]);
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().all(|p| p.slowdown >= 0.99));
    }

    #[test]
    fn non_dividing_view_counts_work() {
        // The paper's x-axis steps by 48 (16, 64, 112, …): minipages of
        // floor(4096/n) bytes with a remainder tail.
        let cfg = Fig5Config::default();
        let p = point(&cfg, MB, 112);
        assert!(p.slowdown >= 0.99 && p.slowdown < 100.0);
    }

    #[test]
    #[should_panic(expected = "between 1")]
    fn zero_views_panics() {
        let cfg = Fig5Config::default();
        let _ = point(&cfg, MB, 0);
    }
}
