//! A set-associative TLB simulator.

/// TLB geometry.
#[derive(Clone, Copy, Debug)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set.
    pub ways: usize,
}

impl TlbConfig {
    /// The paper's testbed data TLB: "The TLB size in the Pentium II is 64
    /// data entries" (4-way).
    pub fn pentium_ii_data() -> Self {
        Self {
            entries: 64,
            ways: 4,
        }
    }
}

/// A TLB over virtual page numbers with true-LRU sets.
pub struct Tlb {
    ways: usize,
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if entries do not divide into sets.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(
            cfg.ways > 0 && cfg.entries.is_multiple_of(cfg.ways),
            "bad TLB shape"
        );
        Self {
            ways: cfg.ways,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.entries / cfg.ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up virtual page number `vpn`; returns `true` on hit and
    /// installs the translation on miss.
    pub fn access(&mut self, vpn: u64) -> bool {
        let set = (vpn % self.sets.len() as u64) as usize;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&v| v == vpn) {
            entries.remove(pos);
            entries.insert(0, vpn);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if entries.len() == self.ways {
            entries.pop();
        }
        entries.insert(0, vpn);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_fits() {
        let mut t = Tlb::new(TlbConfig::pentium_ii_data());
        for _ in 0..4 {
            for vpn in 0..32u64 {
                t.access(vpn);
            }
        }
        // First sweep misses; the rest hit (32 pages < 64 entries,
        // uniform sets).
        assert_eq!(t.misses(), 32);
        assert_eq!(t.hits(), 96);
    }

    #[test]
    fn oversized_working_set_misses() {
        let mut t = Tlb::new(TlbConfig::pentium_ii_data());
        for _ in 0..4 {
            for vpn in 0..1024u64 {
                t.access(vpn);
            }
        }
        assert_eq!(t.hits(), 0, "sequential over-capacity sweep never hits");
    }

    #[test]
    fn lru_within_set() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            ways: 2,
        });
        t.access(0);
        t.access(1);
        t.access(0); // 0 MRU.
        t.access(2); // Evicts 1.
        assert!(t.access(0));
        assert!(!t.access(1));
    }
}
