//! Property-based tests of the cache/TLB simulators and the Figure 5
//! model.

use proptest::prelude::*;
use sim_cache::fig5::{point, Fig5Config};
use sim_cache::{Cache, CacheConfig, Insertion, Tlb, TlbConfig};

proptest! {
    /// Counters are conserved: hits + misses == accesses; replaying the
    /// same trace on a fresh cache is deterministic.
    #[test]
    fn counters_conserved_and_deterministic(
        trace in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..500),
    ) {
        let cfg = CacheConfig { capacity: 4096, ways: 4, line: 32 };
        let run = || {
            let mut c = Cache::new(cfg);
            let hits: Vec<bool> = trace
                .iter()
                .map(|&(a, mru)| {
                    c.access(a as u64, if mru { Insertion::Mru } else { Insertion::Lru })
                })
                .collect();
            (hits, c.hits(), c.misses())
        };
        let (h1, hits, misses) = run();
        let (h2, _, _) = run();
        prop_assert_eq!(&h1, &h2, "replay must be deterministic");
        prop_assert_eq!(hits + misses, trace.len() as u64);
        prop_assert_eq!(hits, h1.iter().filter(|&&x| x).count() as u64);
    }

    /// Inclusion: a fully-associative LRU cache with more ways never has
    /// fewer hits on the same MRU-insert trace (stack property).
    #[test]
    fn lru_stack_property(trace in proptest::collection::vec(any::<u16>(), 1..400)) {
        let mut prev = 0u64;
        for ways in [2usize, 4, 8, 16] {
            let mut c = Cache::new(CacheConfig { capacity: 32 * ways, ways, line: 32 });
            for &a in &trace {
                c.access(a as u64 * 32, Insertion::Mru);
            }
            prop_assert!(c.hits() >= prev, "ways={ways}: {} < {prev}", c.hits());
            prev = c.hits();
        }
    }

    /// TLB determinism and conservation.
    #[test]
    fn tlb_counters(trace in proptest::collection::vec(any::<u16>(), 1..400)) {
        let mut t = Tlb::new(TlbConfig::pentium_ii_data());
        for &v in &trace {
            t.access(v as u64);
        }
        prop_assert_eq!(t.hits() + t.misses(), trace.len() as u64);
        // Distinct pages ≤ misses (each distinct page misses at least once).
        let mut distinct: Vec<u16> = trace.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(t.misses() >= distinct.len() as u64);
    }

    /// Figure 5 sanity over arbitrary power-of-two view counts: slowdown
    /// is ≥ ~1 and finite, and grows monotonically past the break.
    #[test]
    fn fig5_slowdown_sane(view_pow in 0u32..9, size_pow in 19u32..24) {
        let cfg = Fig5Config::default();
        let views = 1usize << view_pow;
        let n = 1usize << size_pow;
        let p = point(&cfg, n, views);
        prop_assert!(p.slowdown >= 0.99, "slowdown {}", p.slowdown);
        prop_assert!(p.slowdown < 100.0, "slowdown {}", p.slowdown);
        prop_assert_eq!(p.pte_footprint, n / 4096 * views * 4);
    }
}

#[test]
fn fig5_monotone_in_views_beyond_break() {
    let cfg = Fig5Config::default();
    let n = 8 << 20;
    let mut prev = 0.0;
    for views in [64usize, 128, 256, 512] {
        let s = point(&cfg, n, views).slowdown;
        assert!(s >= prev, "slowdown must grow with views: {s} < {prev}");
        prev = s;
    }
}
