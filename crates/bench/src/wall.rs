//! Wall-clock benchmarks of the simulator's own hot paths (`repro bench`).
//!
//! Every other `repro` command measures *virtual* time — the calibrated
//! protocol costs the paper reports. This module measures *wall-clock*
//! time of the reproduction itself: how fast `Diff::compute` chews through
//! a page, how many checked shared-memory accesses per second an installed
//! page sustains, and how long the Table 2 apps take end to end. These are
//! the numbers the perf work of PR 5 moves; `BENCH_5.json` records the
//! before/after pairs.
//!
//! Timing is hand-rolled over `std::time::Instant` (adaptive batching,
//! best-of-N passes) — no criterion, no new dependencies, per the
//! workspace's offline dependency policy.

use millipage::diff::Diff;
use millipage::{run, ClusterConfig};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One measured benchmark point.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Stable identifier, e.g. `diff_compute/4096/dense`.
    pub name: String,
    /// Mean wall-clock nanoseconds per operation (best timed pass).
    pub ns_per_op: f64,
    /// Bytes processed per operation (0 when not meaningful).
    pub bytes_per_op: usize,
}

impl BenchResult {
    /// Operations per second implied by [`ns_per_op`](Self::ns_per_op).
    pub fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op.max(1e-9)
    }

    /// Throughput in MB/s (0 when `bytes_per_op` is 0).
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes_per_op as f64 * self.ops_per_sec() / 1e6
    }
}

/// Times `f`, adaptively growing the batch size until one pass runs for
/// at least `target_ns`, then keeps the fastest of `passes` passes.
/// Returns mean nanoseconds per call.
pub fn bench_ns<F: FnMut()>(mut f: F, target_ns: u128, passes: usize) -> f64 {
    for _ in 0..3 {
        f(); // warmup
    }
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed().as_nanos();
        if el >= target_ns || iters >= 1 << 28 {
            break;
        }
        let scale = match (target_ns * 2).checked_div(el) {
            None => 16,
            Some(s) => s.clamp(2, 1 << 16) as u64,
        };
        iters = iters.saturating_mul(scale).min(1 << 28);
    }
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

// ----------------------------------------------------------------------
// Diff micro-benchmarks.
// ----------------------------------------------------------------------

/// Change patterns the diff benches sweep. `dense` flips every byte (the
/// paper's 250 µs/4 KB worst case), `sparse` flips 8 isolated bytes, and
/// `straddle` writes 4-byte runs crossing u64 word boundaries (the case a
/// word-scanning diff must refine byte by byte).
pub const DIFF_PATTERNS: &[&str] = &["sparse", "dense", "straddle"];

/// Page sizes the diff benches sweep (16 B cell-sized minipage — the
/// byte-scan fast path — to the 4 KB page).
pub const DIFF_SIZES: &[usize] = &[16, 64, 256, 1024, 4096];

/// Builds a (twin, current) pair of `size` bytes under `pattern`.
pub fn diff_pair(size: usize, pattern: &str) -> (Vec<u8>, Vec<u8>) {
    let twin: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
    let mut cur = twin.clone();
    match pattern {
        "dense" => {
            for b in cur.iter_mut() {
                *b ^= 0xA5;
            }
        }
        "sparse" => {
            let step = (size / 8).max(1);
            let mut i = step / 2;
            while i < size {
                cur[i] ^= 0xFF;
                i += step;
            }
        }
        "straddle" => {
            let mut i = 6;
            while i + 4 <= size {
                for b in cur[i..i + 4].iter_mut() {
                    *b ^= 0x5A;
                }
                i += 64;
            }
        }
        other => panic!("unknown diff pattern {other:?}"),
    }
    (twin, cur)
}

/// Runs the diff micro-benchmarks: `compute` across the full size×pattern
/// matrix; `apply`/`encode`/`decode` on the 4 KB sparse and dense pairs.
pub fn diff_results(quick: bool) -> Vec<BenchResult> {
    let target: u128 = if quick { 2_000_000 } else { 20_000_000 };
    // Even quick mode takes several spread-out passes: on a virtualized
    // single core, one pass can eat a 50%+ steal-time burst, and the
    // regression gate compares single recordings at 20%.
    let passes = if quick { 4 } else { 5 };
    let mut out = Vec::new();
    for &size in DIFF_SIZES {
        for &pattern in DIFF_PATTERNS {
            let (twin, cur) = diff_pair(size, pattern);
            let ns = bench_ns(
                || {
                    std::hint::black_box(Diff::compute(
                        std::hint::black_box(&twin),
                        std::hint::black_box(&cur),
                    ));
                },
                target,
                passes,
            );
            out.push(BenchResult {
                name: format!("diff_compute/{size}/{pattern}"),
                ns_per_op: ns,
                bytes_per_op: size,
            });
        }
    }
    for &pattern in &["sparse", "dense"] {
        let size = 4096usize;
        let (twin, cur) = diff_pair(size, pattern);
        let d = Diff::compute(&twin, &cur);
        let mut target_buf = twin.clone();
        let ns = bench_ns(
            || {
                d.apply(std::hint::black_box(&mut target_buf));
            },
            target,
            passes,
        );
        out.push(BenchResult {
            name: format!("diff_apply/{size}/{pattern}"),
            ns_per_op: ns,
            bytes_per_op: size,
        });
        let ns = bench_ns(
            || {
                std::hint::black_box(d.encode());
            },
            target,
            passes,
        );
        out.push(BenchResult {
            name: format!("diff_encode/{size}/{pattern}"),
            ns_per_op: ns,
            bytes_per_op: size,
        });
        let wire = bytes::Bytes::from(d.encode());
        let ns = bench_ns(
            || {
                std::hint::black_box(Diff::decode(std::hint::black_box(&wire)));
            },
            target,
            passes,
        );
        out.push(BenchResult {
            name: format!("diff_decode/{size}/{pattern}"),
            ns_per_op: ns,
            bytes_per_op: size,
        });
    }
    out
}

// ----------------------------------------------------------------------
// Per-access fast path.
// ----------------------------------------------------------------------

/// Best-of-N over a closure that times one measurement pass and returns
/// its ns/op. A single pass is one scheduling quantum wide, so one burst
/// of hypervisor steal time can inflate it 50%+; the fastest of a few
/// spread-out passes is what the code actually costs.
fn best_of(passes: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes.max(1) {
        best = best.min(pass());
    }
    best
}

/// Measures checked `ctx` access throughput on an installed page: one
/// host, one 4 KB vector faulted in writable once, then tight read/write
/// loops — the non-faulting common case every DSM access pays.
pub fn fastpath_results(quick: bool) -> Vec<BenchResult> {
    let ops: usize = if quick { 200_000 } else { 2_000_000 };
    let range_ops = ops / 64;
    let slot = Arc::new(Mutex::new([0f64; 4]));
    let sink = Arc::clone(&slot);
    let cfg = ClusterConfig {
        hosts: 1,
        ..ClusterConfig::default()
    };
    run(
        cfg,
        |s| s.alloc_vec_init(&vec![0f64; 512]),
        move |ctx, sv| {
            // Install: the first write faults the page in writable; every
            // access after this is the fast path under test.
            for i in 0..512 {
                ctx.set(sv, i, i as f64);
            }
            let passes = 3;
            let read_ns = best_of(passes, || {
                let t = Instant::now();
                let mut acc = 0.0f64;
                for k in 0..ops {
                    acc += ctx.get(sv, k & 511);
                }
                std::hint::black_box(acc);
                t.elapsed().as_nanos() as f64 / ops as f64
            });
            let write_ns = best_of(passes, || {
                let t = Instant::now();
                for k in 0..ops {
                    ctx.set(sv, k & 511, k as f64);
                }
                t.elapsed().as_nanos() as f64 / ops as f64
            });
            let rr_ns = best_of(passes, || {
                let t = Instant::now();
                for k in 0..range_ops {
                    std::hint::black_box(ctx.read_range(sv, 0..512));
                    std::hint::black_box(k);
                }
                t.elapsed().as_nanos() as f64 / range_ops as f64
            });
            let vals = vec![1.5f64; 512];
            let wr_ns = best_of(passes, || {
                let t = Instant::now();
                for _ in 0..range_ops {
                    ctx.write_range(sv, 0, &vals);
                }
                t.elapsed().as_nanos() as f64 / range_ops as f64
            });
            *sink.lock() = [read_ns, write_ns, rr_ns, wr_ns];
        },
    );
    let [read_ns, write_ns, rr_ns, wr_ns] = *slot.lock();
    vec![
        BenchResult {
            name: "fastpath/read8".into(),
            ns_per_op: read_ns,
            bytes_per_op: 8,
        },
        BenchResult {
            name: "fastpath/write8".into(),
            ns_per_op: write_ns,
            bytes_per_op: 8,
        },
        BenchResult {
            name: "fastpath/read_range4k".into(),
            ns_per_op: rr_ns,
            bytes_per_op: 4096,
        },
        BenchResult {
            name: "fastpath/write_range4k".into(),
            ns_per_op: wr_ns,
            bytes_per_op: 4096,
        },
    ]
}

// ----------------------------------------------------------------------
// JSON emit / parse / regression check.
// ----------------------------------------------------------------------

/// Serializes one result list as a JSON array.
fn results_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ns_per_op\":{:.1},\"bytes_per_op\":{}}}",
            r.name, r.ns_per_op, r.bytes_per_op
        );
    }
    out.push(']');
    out
}

/// Serializes a plain single-run report.
pub fn to_json(results: &[BenchResult], quick: bool) -> String {
    format!(
        "{{\"schema\":\"millipage-bench-v1\",\"quick\":{},\"results\":{}}}\n",
        quick,
        results_json(results)
    )
}

/// Serializes a before/after comparison report (the `BENCH_5.json` shape).
pub fn to_compare_json(before: &[BenchResult], after: &[BenchResult], quick: bool) -> String {
    let mut speedups = String::from("[");
    let mut first = true;
    for a in after {
        if let Some(b) = before.iter().find(|b| b.name == a.name) {
            if !first {
                speedups.push(',');
            }
            first = false;
            let _ = write!(
                speedups,
                "{{\"name\":\"{}\",\"speedup\":{:.2}}}",
                a.name,
                b.ns_per_op / a.ns_per_op.max(1e-9)
            );
        }
    }
    speedups.push(']');
    format!(
        "{{\"schema\":\"millipage-bench-v1\",\"quick\":{},\"before\":{},\"after\":{},\"speedup\":{}}}\n",
        quick,
        results_json(before),
        results_json(after),
        speedups
    )
}

/// Extracts `(name, ns_per_op)` pairs from a bench JSON. Accepts both the
/// plain shape (reads `"results"`) and the comparison shape (reads
/// `"after"` — the optimized numbers are the baseline to hold). Hand
/// rolled like the writer: the grammar is exactly what we emit.
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let section = ["\"after\":[", "\"results\":["]
        .iter()
        .find_map(|k| json.find(k).map(|i| &json[i + k.len()..]));
    let Some(mut rest) = section else {
        return Vec::new();
    };
    let mut out = Vec::new();
    while let Some(ni) = rest.find("\"name\":\"") {
        // Stop at the section's closing bracket.
        if let Some(end) = rest.find(']') {
            if end < ni {
                break;
            }
        }
        rest = &rest[ni + 8..];
        let Some(nq) = rest.find('"') else { break };
        let name = rest[..nq].to_string();
        let Some(vi) = rest.find("\"ns_per_op\":") else {
            break;
        };
        rest = &rest[vi + 12..];
        let vend = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..vend].parse::<f64>() {
            out.push((name, v));
        }
        rest = &rest[vend..];
    }
    out
}

/// Compares `current` against a parsed baseline: returns the benchmarks
/// that regressed by more than their tolerance. `tolerance` (0.2 = 20%
/// slower) applies to the micro/e2e rows; `sim/` rows time the parallel
/// scheduler's wall clock, which swings ±30%+ with OS thread scheduling
/// on a busy box, so they get 5× the base tolerance (20% → 100%: only
/// slowdowns beyond 2× fail, and the failure mode under guard — a
/// serialized parallel scheduler — shows up as ~10×).
pub fn regressions(
    current: &[BenchResult],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for r in current {
        if let Some((_, base)) = baseline.iter().find(|(n, _)| *n == r.name) {
            let tol = if r.name.starts_with("sim/") {
                tolerance * 5.0
            } else {
                tolerance
            };
            if r.ns_per_op > base * (1.0 + tol) {
                out.push((r.name.clone(), *base, r.ns_per_op));
            }
        }
    }
    out
}

/// Benchmark names present in `current` but absent from `baseline`:
/// benchmarks the baseline file does not gate yet. `repro bench --check`
/// fails on these (or warns with `--allow-new`) so a new benchmark cannot
/// silently ride ungated until someone remembers to re-record.
pub fn missing_from_baseline(current: &[BenchResult], baseline: &[(String, f64)]) -> Vec<String> {
    current
        .iter()
        .filter(|r| !baseline.iter().any(|(n, _)| *n == r.name))
        .map(|r| r.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ns_times_a_cheap_op() {
        let mut x = 0u64;
        let ns = bench_ns(
            || {
                x = x.wrapping_add(1);
            },
            100_000,
            1,
        );
        assert!((0.0..1_000_000.0).contains(&ns));
    }

    #[test]
    fn diff_pairs_change_what_they_claim() {
        let (t, c) = diff_pair(4096, "dense");
        assert!(t.iter().zip(&c).all(|(a, b)| a != b));
        let (t, c) = diff_pair(4096, "sparse");
        let changed = t.iter().zip(&c).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 8);
        let (t, c) = diff_pair(256, "straddle");
        assert!(t.iter().zip(&c).any(|(a, b)| a != b));
        // Straddle runs cross a u64 boundary: bytes 6..10 differ.
        assert_ne!(t[7], c[7]);
        assert_ne!(t[8], c[8]);
    }

    #[test]
    fn json_roundtrips_through_parse() {
        let results = vec![
            BenchResult {
                name: "diff_compute/4096/dense".into(),
                ns_per_op: 1234.5,
                bytes_per_op: 4096,
            },
            BenchResult {
                name: "fastpath/read8".into(),
                ns_per_op: 55.1,
                bytes_per_op: 8,
            },
        ];
        let parsed = parse_baseline(&to_json(&results, true));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "diff_compute/4096/dense");
        assert!((parsed[0].1 - 1234.5).abs() < 0.1);
        // Comparison shape: the "after" numbers are the baseline.
        let faster = vec![BenchResult {
            name: "fastpath/read8".into(),
            ns_per_op: 30.0,
            bytes_per_op: 8,
        }];
        let parsed = parse_baseline(&to_compare_json(&results, &faster, false));
        assert_eq!(parsed.len(), 1);
        assert!((parsed[0].1 - 30.0).abs() < 0.1);
    }

    #[test]
    fn missing_from_baseline_lists_ungated_names() {
        let base = vec![("a".to_string(), 100.0)];
        let current = vec![
            BenchResult {
                name: "a".into(),
                ns_per_op: 90.0,
                bytes_per_op: 0,
            },
            BenchResult {
                name: "sim/new_row".into(),
                ns_per_op: 10.0,
                bytes_per_op: 0,
            },
        ];
        assert_eq!(missing_from_baseline(&current, &base), vec!["sim/new_row"]);
        assert!(missing_from_baseline(&current[..1], &base).is_empty());
    }

    #[test]
    fn regressions_flag_only_slower_results() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        let current = vec![
            BenchResult {
                name: "a".into(),
                ns_per_op: 115.0,
                bytes_per_op: 0,
            },
            BenchResult {
                name: "b".into(),
                ns_per_op: 130.0,
                bytes_per_op: 0,
            },
        ];
        let bad = regressions(&current, &base, 0.2);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "b");
    }

    #[test]
    fn sim_rows_get_the_wider_tolerance() {
        let base = vec![
            ("sim/sor@16h/w4/event_ns".to_string(), 100.0),
            ("sim/sor@16h/w8/event_ns".to_string(), 100.0),
        ];
        let current = vec![
            // +80%: trips a 20% gate but sits inside the 100% sim band.
            BenchResult {
                name: "sim/sor@16h/w4/event_ns".into(),
                ns_per_op: 180.0,
                bytes_per_op: 0,
            },
            // +150%: a real serialization-style collapse still fails.
            BenchResult {
                name: "sim/sor@16h/w8/event_ns".into(),
                ns_per_op: 250.0,
                bytes_per_op: 0,
            },
        ];
        let bad = regressions(&current, &base, 0.2);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "sim/sor@16h/w8/event_ns");
    }
}
