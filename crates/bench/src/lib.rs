//! Measurement scenarios and table formatting for the reproduction
//! harnesses.
//!
//! The `repro` binary (and several tests/benches) measure *virtual* times
//! of protocol operations by running tiny purpose-built cluster scenarios
//! and reading the per-category breakdowns — the same way the paper
//! measured its Table 1 / §4.2 numbers on the real system.

pub mod scenarios;
pub mod simthru;
pub mod wall;

use std::fmt::Write as _;

/// Formats nanoseconds as microseconds with one decimal.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Renders a fixed-width text table (first row = header).
pub fn render_table(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut width = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        for (i, cell) in r.iter().enumerate() {
            let pad = width[i] - cell.len();
            if i > 0 {
                out.push_str("  ");
            }
            // Right-align numeric-looking cells, left-align labels.
            let numeric = cell
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '-');
            if numeric && i > 0 {
                let _ = write!(out, "{}{}", " ".repeat(pad), cell);
            } else {
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_formats_microseconds() {
        assert_eq!(us(12_000), "12.0");
        assert_eq!(us(204_500), "204.5");
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(&[
            vec!["op".into(), "us".into()],
            vec!["fault".into(), "26.0".into()],
            vec!["set prot".into(), "12.0".into()],
        ]);
        assert!(t.contains("op"));
        assert!(t.contains("-----"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
