//! Purpose-built cluster scenarios measuring the §4.2 costs in virtual
//! time.

use millipage::{run, AllocMode, ClusterConfig, CostModel, HostId, Ns};
use parking_lot::Mutex;

/// Base configuration for microbenchmark scenarios: idle hosts (so the
/// poller, not the sweeper, answers — the paper's microbenchmarks ran on
/// otherwise-idle machines).
pub fn micro_cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 32,
        pages: 256,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        ..ClusterConfig::default()
    }
}

/// Virtual time to bring in a minipage of `size` bytes for reading
/// ("The time it takes to bring in a page for reading", §4.2).
///
/// `two_hop`: when `true`, the copy lives at a third host, so the request
/// takes requester → manager → holder; otherwise the manager host itself
/// holds the copy.
pub fn read_fault_time(size: usize, two_hop: bool) -> Ns {
    let hosts = if two_hop { 3 } else { 2 };
    let out = Mutex::new(0);
    run(
        micro_cfg(hosts),
        |s| {
            let v = s.alloc_vec::<u8>(size);
            s.write_vec(&v, 0, &vec![7u8; size]);
            v
        },
        |ctx, sv| {
            if two_hop && ctx.host() == HostId(2) {
                // Move the copy to host 2 (exclusive write).
                ctx.set(sv, 0, 1u8);
            }
            ctx.barrier();
            if ctx.host() == HostId(1) {
                let t0 = ctx.now();
                let _ = ctx.get(sv, 0);
                *out.lock() = ctx.now() - t0;
            }
            ctx.barrier();
        },
    );
    out.into_inner()
}

/// Virtual time to bring in a minipage of `size` bytes for writing with
/// `read_copies` read copies to invalidate first (§4.2: "These times vary
/// according to the number of read copies that should be invalidated").
pub fn write_fault_time(size: usize, read_copies: usize) -> Ns {
    let hosts = (read_copies + 2).max(2);
    let out = Mutex::new(0);
    run(
        micro_cfg(hosts),
        |s| {
            let v = s.alloc_vec::<u8>(size);
            s.write_vec(&v, 0, &vec![3u8; size]);
            v
        },
        |ctx, sv| {
            // Hosts 0..read_copies take read copies (host 0, the home,
            // already holds one).
            if ctx.host().index() < read_copies {
                let _ = ctx.get(sv, 0);
            }
            ctx.barrier();
            if ctx.host().index() == hosts - 1 {
                let t0 = ctx.now();
                ctx.set(sv, 0, 9u8);
                *out.lock() = ctx.now() - t0;
            }
            ctx.barrier();
        },
    );
    out.into_inner()
}

/// Virtual barrier latency observed by the last arriver, for `hosts`
/// hosts (§4.2: 59–153 µs, linear).
pub fn barrier_time(hosts: usize) -> Ns {
    let out = Mutex::new(0);
    run(
        micro_cfg(hosts),
        |_| (),
        |ctx, ()| {
            ctx.barrier(); // Align.
            if ctx.host().index() == hosts - 1 {
                ctx.compute(1_000_000); // Arrive last, everyone waiting.
                let t0 = ctx.now();
                ctx.barrier();
                *out.lock() = ctx.now() - t0;
            } else {
                ctx.barrier();
            }
        },
    );
    out.into_inner()
}

/// Virtual time of an uncontended lock followed by an unlock (§4.2:
/// 67–80 µs).
pub fn lock_unlock_time() -> Ns {
    let out = Mutex::new(0);
    run(
        micro_cfg(2),
        |_| (),
        |ctx, ()| {
            if ctx.host() == HostId(1) {
                let t0 = ctx.now();
                ctx.lock(5);
                ctx.unlock(5);
                *out.lock() = ctx.now() - t0;
            }
            ctx.barrier();
        },
    );
    out.into_inner()
}

/// Average minipage request service time with all hosts busy computing —
/// the §4.3.1 "750 µs average delay" effect. Returns (busy_avg, idle_avg).
pub fn busy_vs_idle_service(samples: usize) -> (Ns, Ns) {
    let measure = |busy: bool| -> Ns {
        let total = Mutex::new((0u128, 0u64));
        run(
            micro_cfg(2),
            |s| {
                (0..samples)
                    .map(|_| {
                        let v = s.alloc_vec::<u64>(16);
                        s.new_page();
                        v
                    })
                    .collect::<Vec<_>>()
            },
            |ctx, vs| {
                ctx.barrier();
                if ctx.host() == HostId(0) {
                    // The serving host: compute hard (busy) or idle.
                    if busy {
                        ctx.compute(1_000_000_000);
                    }
                } else {
                    for v in vs {
                        let t0 = ctx.now();
                        let _ = ctx.get(v, 0);
                        let mut t = total.lock();
                        t.0 += (ctx.now() - t0) as u128;
                        t.1 += 1;
                    }
                }
                ctx.barrier();
            },
        );
        let (sum, n) = total.into_inner();
        (sum / n.max(1) as u128) as Ns
    };
    (measure(true), measure(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use millipage::Category;

    #[test]
    fn read_fault_scales_with_minipage_size() {
        let small = read_fault_time(128, false);
        let large = read_fault_time(4096, false);
        // §4.2: 204 µs for 128 B → 314 µs for 4 KB. Accept the shape:
        // larger minipages cost more, both in the paper's ballpark.
        assert!(large > small, "4 KB {large} !> 128 B {small}");
        assert!(
            (100_000..500_000).contains(&small),
            "128 B read fault = {} ns",
            small
        );
        assert!(
            (150_000..700_000).contains(&large),
            "4 KB read fault = {} ns",
            large
        );
    }

    #[test]
    fn two_hop_difference_is_slight() {
        // §4.2: "The difference in arrival times for a minipage request
        // arriving in a single hop as opposed to two hops was slight."
        let one = read_fault_time(128, false) as f64;
        let two = read_fault_time(128, true) as f64;
        assert!(two >= one * 0.9);
        assert!(two < one * 2.0, "two-hop {two} vs one-hop {one}");
    }

    #[test]
    fn write_fault_grows_with_copies_to_invalidate() {
        let w0 = write_fault_time(128, 0);
        let w6 = write_fault_time(128, 6);
        assert!(w6 > w0, "more invalidations must cost more: {w0} vs {w6}");
        assert!((100_000..600_000).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn barrier_grows_linearly_with_hosts() {
        let b2 = barrier_time(2);
        let b8 = barrier_time(8);
        assert!(b8 > b2);
        assert!((40_000..350_000).contains(&b2), "b2 = {b2}");
        assert!((100_000..600_000).contains(&b8), "b8 = {b8}");
    }

    #[test]
    fn lock_unlock_in_paper_ballpark() {
        let t = lock_unlock_time();
        // Paper: 67–80 µs; accept a factor-two window around it.
        assert!((30_000..160_000).contains(&t), "lock+unlock = {t} ns");
    }

    #[test]
    fn busy_hosts_serve_much_slower() {
        let (busy, idle) = busy_vs_idle_service(20);
        assert!(
            busy > idle + 200_000,
            "sweeper delay must dominate: busy {busy} vs idle {idle}"
        );
        // §4.3.1: average delay about 750 µs, more than 500 µs of it from
        // the slow server response.
        assert!(
            (400_000..2_000_000).contains(&busy),
            "busy-mean = {busy} ns"
        );
    }

    #[test]
    fn breakdown_category_sees_synch_time() {
        // Sanity: the scenarios charge the categories the harness reads.
        let out = Mutex::new(0u64);
        run(
            micro_cfg(2),
            |_| (),
            |ctx, ()| {
                ctx.barrier();
                if ctx.host() == HostId(0) {
                    *out.lock() = ctx.breakdown().get(Category::Synch);
                }
            },
        );
        assert!(out.into_inner() > 0);
    }
}
