//! Simulator-throughput benchmarks: how fast the simulator itself runs
//! (`repro bench`'s `sim/...` rows).
//!
//! The diff/fastpath rows in [`crate::wall`] time protocol primitives;
//! these rows time the *scheduler* — wall-clock nanoseconds per simulated
//! message event and per simulated second, for the sequential canonical
//! schedule and for the conservative parallel mode at several worker
//! counts. The parallel rows are the regression gate for the PDES
//! machinery: if a change serializes the partitions (a stray global lock,
//! an over-eager horizon sync), `w8` collapses toward `seq` and
//! `repro bench --check` fails. Because parallel wall clock is noisy
//! (±30% run-to-run with OS thread scheduling), these rows are checked
//! at 5× the base tolerance — see [`crate::wall::regressions`]; the
//! collapse under guard is ~10×, far outside even the wide band.
//!
//! The workload is SOR at 64 hosts under the deterministic virtual-time
//! schedule — the largest-cluster, most message-dense Table 2 app, and
//! the configuration the parallel mode exists for. Every point runs the
//! *same* seed and produces the byte-identical canonical schedule; only
//! the wall clock differs.

use crate::wall::BenchResult;
use millipage::{ClusterConfig, ParallelConfig, SchedMode};
use millipage_apps::sor::{self, SorParams};
use std::time::Instant;

/// Worker counts the sim-throughput rows sweep; 0 means the sequential
/// scheduler (no `ParallelConfig` at all, not a 1-worker partition).
pub const SIM_WORKER_POINTS: &[usize] = &[0, 2, 4, 8];

/// Host counts the sim-throughput rows sweep — the hosts × workers
/// scaling matrix. 64 is the acceptance-scale cluster (`MAX_HOSTS`); 16
/// shows how the parallel win scales down.
pub const SIM_HOST_POINTS: &[usize] = &[16, 64];

/// Runs the sim-throughput sweep: SOR at each host count in
/// [`SIM_HOST_POINTS`], sequential plus each parallel point in
/// [`SIM_WORKER_POINTS`]. Each cell yields two rows:
///
/// * `sim/sor@{hosts}h/<point>/event_ns` — wall nanoseconds per
///   simulated message ([`ops_per_sec`](BenchResult::ops_per_sec) =
///   events/sec);
/// * `sim/sor@{hosts}h/<point>/wall_ns_per_sim_sec` — wall nanoseconds
///   per simulated second (1e9 / ns_per_op = sim-sec per wall-sec).
pub fn sim_throughput_results(quick: bool) -> Vec<BenchResult> {
    // Quick shrinks the workload, not the cluster: the scheduler cost
    // under test scales with hosts and messages, so keep the host counts
    // and trim rows and iterations.
    let params = if quick {
        SorParams {
            rows: 2048,
            cols: 64,
            iters: 4,
        }
    } else {
        SorParams {
            rows: 8192,
            cols: 64,
            iters: 10,
        }
    };
    let mut out = Vec::new();
    for &hosts in SIM_HOST_POINTS {
        out.extend(sim_point(hosts, params));
    }
    out
}

/// The two rows of every (hosts, workers) cell.
fn sim_point(hosts: usize, params: SorParams) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for &w in SIM_WORKER_POINTS {
        let cfg = ClusterConfig {
            hosts,
            sched: SchedMode::deterministic(),
            // Explicitly None for the sequential point: the default reads
            // MILLIPAGE_SIM_WORKERS, which must not skew the baseline.
            parallel: (w > 0).then(|| ParallelConfig::workers(w)),
            ..ClusterConfig::default()
        };
        let t = Instant::now();
        let r = sor::run_sor(cfg, params);
        let wall_ns = t.elapsed().as_nanos() as f64;
        assert!(
            r.report.coherence_violations.is_empty(),
            "sim-throughput SOR run had coherence violations: {:?}",
            r.report.coherence_violations
        );
        let point = if w == 0 {
            "seq".to_string()
        } else {
            format!("w{w}")
        };
        out.push(BenchResult {
            name: format!("sim/sor@{hosts}h/{point}/event_ns"),
            ns_per_op: wall_ns / r.report.messages.max(1) as f64,
            bytes_per_op: 0,
        });
        out.push(BenchResult {
            name: format!("sim/sor@{hosts}h/{point}/wall_ns_per_sim_sec"),
            ns_per_op: wall_ns / (r.report.virtual_time as f64 / 1e9).max(1e-9),
            bytes_per_op: 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_points_start_sequential() {
        assert_eq!(SIM_WORKER_POINTS[0], 0);
        assert!(SIM_WORKER_POINTS[1..].iter().all(|&w| w >= 2));
    }
}
