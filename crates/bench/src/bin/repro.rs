//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1            Table 1: basic operation costs
//! repro costs             §4.2 prose: fault/barrier/lock/diff times
//! repro fig5  [--quick]   Figure 5: MultiView overhead vs. #views
//! repro table2 [--quick] [--backend sim|host]
//!                         Table 2: application suite characteristics
//!                         (`--backend host`: SOR/IS on real memory)
//! repro sor   [--quick] [--backend sim|host] [--hosts N]
//! repro is    [--quick] [--backend sim|host] [--hosts N]
//!                         One app on one backend; `--backend host` runs
//!                         both and cross-checks the checksums, printing
//!                         real SIGSEGV fault counts next to simulated
//!                         ones (Linux only)
//! repro fig6  [--quick]   Figure 6: speedups + time breakdown
//! repro fig7  [--quick]   Figure 7: WATER chunking sweep
//! repro ablate [--quick]  Extensions: fast-polling what-if, baseline
//! repro manager-sweep [--quick]  §5 extension: home-policy hot-spot sweep
//! repro trace [scenario] [--quick] [--out trace.json] [--json report.json]
//!                         Traced run + invariant audit + Perfetto export
//! repro diagnose [scenario] [--quick] [--backend sim|host] [--json diagnose.json]
//!                         Sharing diagnostics: per-minipage heat stats,
//!                         ping-pong / false-sharing / hot-home detectors,
//!                         fault heatmap CSV + Perfetto counter tracks
//! repro adapt [scenario] [--quick] [--backend sim|host] [--json adapt.json]
//!                         Online adaptation: planted pathologies answered
//!                         by split/merge/home-migration, static-vs-adapted
//!                         tables for the Table 2 apps
//! repro faults [scenario] [--quick] [--seed N] [--out faults-trace.json]
//!                         Loss sweep under seeded wire faults + audit
//! repro explore [--schedules N] [--seed N] [--quick] [--out repro.json]
//!               [--inject stale-reinstall] [--replay repro.json]
//!                         Schedule exploration under the deterministic
//!                         scheduler; shrinks any violation to a replayable
//!                         JSON reproducer
//! repro all   [--quick]   Everything above
//! ```
//!
//! `--quick` shrinks the workloads for fast smoke runs; without it the
//! paper's input sets (Table 2) are used. Shapes, not absolute numbers,
//! are the reproduction target — see EXPERIMENTS.md.
//!
//! `repro trace` runs the Table 2 applications (or one of them:
//! `sor`/`is`/`water`/`lu`/`tsp`) at 4 hosts with the protocol tracer on,
//! replays every trace through the SW/MR invariant auditor, and writes a
//! combined Chrome-trace/Perfetto JSON (`--out`, default `trace.json`) —
//! load it at <https://ui.perfetto.dev>. `--json <path>` additionally
//! dumps the per-app [`RunReport`]s (histograms included) as JSON. Exits
//! nonzero on any audit violation or any dropped trace ring (a full ring
//! means the analysis ran on an incomplete event stream).
//!
//! `repro diagnose` runs each application twice under the deterministic
//! scheduler — once with the tracer on, once stats-only (the production
//! configuration of the diagnostics plane) — and cross-checks the
//! lock-free stats table against counts re-derived from the full trace,
//! and the detector rankings between the two runs. It prints the ranked
//! ping-pong / false-sharing / hot-home findings and the per-link wire
//! traffic, writes the vpage×host fault heatmap to
//! `diagnose-heatmap.csv` and per-host cumulative fault counter tracks to
//! `diagnose-trace.json` (Perfetto), and exits nonzero on any
//! counter/detector divergence or dropped trace ring. `--backend host`
//! instead runs SOR and IS on the real-memory backend (Linux) and
//! requires the per-minipage counters recorded by the SIGSEGV path to
//! match the simulator's trace-derived counts exactly.
//!
//! `repro adapt` drives the online adaptation engine. The three planted
//! pathology workloads (a false-sharing pair, a ping-ponging sibling
//! pair, a skewed-home hammer) run once statically and once with the
//! engine armed, under the deterministic scheduler: the matching action
//! (split / merge / home migration) must apply, the triggering detector
//! finding must clear, faults+invalidations must drop ≥ 25% in aggregate
//! (migration is judged on cross-host wire bytes — fault counts are
//! placement-independent), the adapted runs must replay byte-identically
//! and their traces must pass the invariant audit. The Table 2 apps (or
//! one of them) then re-run with the engine armed and must keep their
//! checksums. `--json <path>` dumps the per-workload before/after
//! metrics and action logs. `--backend host` instead runs a planted
//! remote hammer and SOR on the real-memory backend (Linux,
//! migration-only — granularity rewrites are sim-only on raw
//! application memory) and requires the host engine's action log to
//! match the sim's fingerprint exactly.
//!
//! `repro faults` sweeps packet-loss rates (0 / 0.1% / 1% / 5%; `--quick`
//! keeps 0 and 1%) across the Table 2 applications and all three home
//! policies with the seeded fault plane active (duplicates at half the
//! drop rate, reorders at twice it). Every run is traced and audited —
//! SW/MR invariants *plus* exactly-once FIFO delivery — and the table
//! reports retransmissions, suppressed duplicates, repaired reorders and
//! the added fault latency. Exits nonzero on any audit violation, any
//! exhausted retransmit budget, or any surfaced protocol error. The 1%
//! Centralized runs are exported as a Perfetto trace (`--out`, default
//! `faults-trace.json`).
//!
//! `repro explore` runs the built-in race workload (disjoint-element
//! writers over one HLRC minipage, one barrier per round) through a
//! seeded sweep of random-walk and PCT schedules under the deterministic
//! scheduler, auditing every interleaving. A clean sweep exits 0; any
//! violation is shrunk to a minimal schedule and written as JSON
//! (`--out`, default `schedule-repro.json`) with a nonzero exit.
//! `--inject stale-reinstall` re-introduces the PR-3 stale-reinstall bug
//! to demonstrate detection; `--replay <file>` replays a saved reproducer
//! instead of sweeping (exit mirrors whether it still violates).

use millipage::explore::{race_config, race_workload};
use millipage::{
    audit, explore, replay_repro, run, trace_counts, AdaptConfig, AdaptReport, AllocMode,
    AuditMode, Category, ChromeTrace, ClusterConfig, Consistency, CostModel, DiagReport,
    ExploreOpts, Finding, HomePolicyKind, MinimizedRepro, Ns, ParallelConfig, RunReport, SchedMode,
    SharedCell, TraceKind, Tracer, WireFaults,
};
use millipage_apps::{close, is, lu, sor, tsp, water, AppRun};
use millipage_bench::scenarios;
use millipage_bench::{render_table, simthru, us, wall};
use sim_cache::fig5::{point, predicted_break_views, Fig5Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "table1" => table1(),
        "costs" => costs(),
        "fig5" => fig5(quick),
        "table2" => {
            let hosts = flag_value(&args, "--hosts")
                .map(|s| s.parse().unwrap_or_else(|_| panic!("bad --hosts {s:?}")))
                .unwrap_or(8);
            let workers = flag_value(&args, "--workers")
                .map(|s| s.parse().unwrap_or_else(|_| panic!("bad --workers {s:?}")));
            match flag_value(&args, "--backend").as_deref() {
                None | Some("sim") => table2(quick, hosts, workers),
                Some("host") => table2_host(quick),
                Some(other) => {
                    eprintln!("unknown backend {other:?} (expected sim or host)");
                    std::process::exit(2);
                }
            }
        }
        "sor" | "is" => {
            let hosts = flag_value(&args, "--hosts")
                .and_then(|s| s.parse().ok())
                .unwrap_or(4);
            let backend = flag_value(&args, "--backend").unwrap_or_else(|| "sim".into());
            app_backend(cmd, quick, hosts, &backend);
        }
        "fig6" => fig6(quick),
        "fig7" => fig7(quick),
        "ablate" => ablate(quick),
        "manager-sweep" => manager_sweep(quick),
        "trace" => {
            let scenario = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "table2".into());
            let out = flag_value(&args, "--out").unwrap_or_else(|| "trace.json".into());
            let json = flag_value(&args, "--json");
            trace_cmd(&scenario, quick, &out, json.as_deref());
        }
        "diagnose" => {
            let scenario = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "table2".into());
            let backend = flag_value(&args, "--backend").unwrap_or_else(|| "sim".into());
            let json = flag_value(&args, "--json");
            diagnose_cmd(&scenario, quick, &backend, json.as_deref());
        }
        "adapt" => {
            let scenario = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "table2".into());
            let backend = flag_value(&args, "--backend").unwrap_or_else(|| "sim".into());
            let json = flag_value(&args, "--json");
            adapt_cmd(&scenario, quick, &backend, json.as_deref());
        }
        "faults" => {
            let scenario = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| "table2".into());
            let out = flag_value(&args, "--out").unwrap_or_else(|| "faults-trace.json".into());
            let seed = flag_value(&args, "--seed")
                .map(|s| {
                    s.parse::<u64>()
                        .unwrap_or_else(|_| panic!("bad --seed {s:?}"))
                })
                .unwrap_or(7);
            faults_cmd(&scenario, quick, seed, &out);
        }
        "explore" => {
            let schedules = flag_value(&args, "--schedules")
                .map(|s| {
                    s.parse::<usize>()
                        .unwrap_or_else(|_| panic!("bad --schedules {s:?}"))
                })
                .unwrap_or(if quick { 40 } else { 200 });
            let seed = flag_value(&args, "--seed")
                .map(|s| {
                    s.parse::<u64>()
                        .unwrap_or_else(|_| panic!("bad --seed {s:?}"))
                })
                .unwrap_or(7);
            let out = flag_value(&args, "--out").unwrap_or_else(|| "schedule-repro.json".into());
            let inject = flag_value(&args, "--inject");
            let replay = flag_value(&args, "--replay");
            explore_cmd(schedules, seed, &out, inject.as_deref(), replay.as_deref());
        }
        "bench" => {
            let json = flag_value(&args, "--json");
            let baseline = flag_value(&args, "--baseline");
            // `--check` takes an optional file; bare `--check` (or one
            // followed by another flag) compares against BENCH_10.json.
            let check = args.iter().position(|a| a == "--check").map(|i| {
                args.get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .unwrap_or_else(|| "BENCH_10.json".into())
            });
            let allow_new = args.iter().any(|a| a == "--allow-new");
            bench_cmd(
                quick,
                json.as_deref(),
                baseline.as_deref(),
                check.as_deref(),
                allow_new,
            );
        }
        "all" => {
            table1();
            costs();
            fig5(quick);
            table2(quick, 8, None);
            fig6(quick);
            fig7(quick);
            ablate(quick);
            manager_sweep(quick);
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!(
                "usage: repro [table1|costs|fig5|table2|sor|is|fig6|fig7|ablate|manager-sweep|trace|diagnose|adapt|faults|explore|bench|all] [--quick] [--backend sim|host]"
            );
            std::process::exit(2);
        }
    }
}

/// The value following `name` in `args` (`--out foo.json` style).
fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

// ----------------------------------------------------------------------
// Table 1: cost of basic operations.
// ----------------------------------------------------------------------

fn table1() {
    header("Table 1 — Cost of basic operations in millipage (paper vs model)");
    let c = CostModel::default();
    let rows = vec![
        vec!["operation".into(), "paper us".into(), "model us".into()],
        vec!["access fault".into(), "26".into(), us(c.access_fault)],
        vec!["get protection".into(), "7".into(), us(c.get_protection)],
        vec!["set protection".into(), "12".into(), us(c.set_protection)],
        vec![
            "header message send/recv (32 bytes)".into(),
            "12".into(),
            us(c.msg_time(0)),
        ],
        vec![
            "a data message send/recv (0.5 KB)".into(),
            "22".into(),
            us(c.msg_time(512)),
        ],
        vec![
            "a data message send/recv (1 KB)".into(),
            "34".into(),
            us(c.msg_time(1024)),
        ],
        vec![
            "a data message send/recv (4 KB)".into(),
            "90".into(),
            us(c.msg_time(4096)),
        ],
        vec![
            "minipage translation (MPT lookup)".into(),
            "7".into(),
            us(c.mpt_lookup),
        ],
    ];
    print!("{}", render_table(&rows));
}

// ----------------------------------------------------------------------
// §4.2 prose costs, measured on live scenarios.
// ----------------------------------------------------------------------

fn costs() {
    header("S4.2 — Measured protocol costs (virtual time, idle hosts)");
    println!("paper: read fault 204 us (128 B) -> 314 us (4 KB); write fault");
    println!("212-366 us (128 B) / 327-480 us (4 KB) by #copies invalidated;");
    println!("barrier 59-153 us (1-8 hosts); lock+unlock 67-80 us;");
    println!("run-length diff 250 us per 4 KB page (not needed by millipage).\n");

    let mut rows = vec![vec!["scenario".into(), "measured us".into()]];
    rows.push(vec![
        "read fault, 128 B, one hop".into(),
        us(scenarios::read_fault_time(128, false)),
    ]);
    rows.push(vec![
        "read fault, 128 B, two hops".into(),
        us(scenarios::read_fault_time(128, true)),
    ]);
    rows.push(vec![
        "read fault, 4 KB, one hop".into(),
        us(scenarios::read_fault_time(4096, false)),
    ]);
    for copies in [0usize, 3, 6] {
        rows.push(vec![
            format!("write fault, 128 B, {copies} copies invalidated"),
            us(scenarios::write_fault_time(128, copies)),
        ]);
    }
    for copies in [0usize, 6] {
        rows.push(vec![
            format!("write fault, 4 KB, {copies} copies invalidated"),
            us(scenarios::write_fault_time(4096, copies)),
        ]);
    }
    for hosts in [1usize, 2, 4, 8] {
        rows.push(vec![
            format!("barrier, {hosts} hosts"),
            us(scenarios::barrier_time(hosts)),
        ]);
    }
    rows.push(vec![
        "lock + unlock, uncontended".into(),
        us(scenarios::lock_unlock_time()),
    ]);
    let (busy, idle) = scenarios::busy_vs_idle_service(20);
    rows.push(vec![
        "read fault served by busy host (S3.5.1)".into(),
        us(busy),
    ]);
    rows.push(vec!["read fault served by idle host".into(), us(idle)]);
    let c = CostModel::default();
    rows.push(vec![
        "run-length diff of a 4 KB page (would-be cost)".into(),
        us(c.diff_time(4096)),
    ]);
    print!("{}", render_table(&rows));
}

// ----------------------------------------------------------------------
// Figure 5: MultiView overhead vs number of views.
// ----------------------------------------------------------------------

fn fig5(quick: bool) {
    header("Figure 5 — Overheads of MultiView (slowdown vs #views)");
    let cfg = Fig5Config::default();
    const MB: usize = 1 << 20;
    let sizes: &[usize] = if quick {
        &[512 * 1024, 2 * MB, 8 * MB]
    } else {
        &[512 * 1024, MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB]
    };
    // The paper's x-axis: 16, 64, 112, …, 496 (step 48).
    let views: &[usize] = if quick {
        &[1, 16, 32, 64, 128, 256, 512]
    } else {
        &[1, 16, 64, 112, 160, 208, 256, 304, 352, 400, 448, 496]
    };
    let mut rows = vec![{
        let mut h = vec!["views".to_string()];
        h.extend(sizes.iter().map(|s| format!("{}KB", s / 1024)));
        h
    }];
    for &v in views {
        let mut r = vec![v.to_string()];
        for &n in sizes {
            r.push(format!("{:.2}", point(&cfg, n, v).slowdown));
        }
        rows.push(r);
    }
    print!("{}", render_table(&rows));
    println!("predicted breaking points (PTE footprint = L2 size, n*N ~ 512 MB):");
    for &n in sizes {
        println!(
            "  N = {:>6} KB -> n ~ {}",
            n / 1024,
            predicted_break_views(&cfg, n)
        );
    }
}

// ----------------------------------------------------------------------
// Applications: shared runners.
// ----------------------------------------------------------------------

fn app_cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        ..ClusterConfig::default()
    }
}

struct AppSpec {
    name: &'static str,
    input: String,
    run: Box<dyn Fn(ClusterConfig) -> AppRun>,
}

fn app_specs(quick: bool) -> Vec<AppSpec> {
    app_specs_inner(quick, true, 8)
}

/// `chunk_water`: Figure 6 runs WATER at the paper's preferred chunking
/// level 5 (§4.3); Table 2 reports the fine-grain per-molecule layout.
/// `hosts`: the largest host count the specs will run at — inputs whose
/// decomposition has a per-host floor (IS needs one histogram region per
/// host) scale up to it.
fn app_specs_inner(quick: bool, chunk_water: bool, hosts: usize) -> Vec<AppSpec> {
    let (sp, ip, wp, lp, tp) = if quick {
        (
            sor::SorParams {
                rows: 8192,
                cols: 64,
                iters: 10,
            },
            is::IsParams {
                keys: 1 << 20,
                ..is::IsParams::paper()
            },
            water::WaterParams {
                molecules: 128,
                ..water::WaterParams::paper()
            },
            lu::LuParams {
                n: 512,
                block: 32,
                seed: 0x10,
            },
            tsp::TspParams {
                cities: 15,
                recursion_limit: 10,
                max_tours: 4000,
                seed: 0x75,
            },
        )
    } else {
        (
            sor::SorParams::paper(),
            is::IsParams::paper(),
            water::WaterParams::paper(),
            lu::LuParams::paper(),
            tsp::TspParams::paper(),
        )
    };
    // IS decomposes its histogram into per-host regions; large clusters
    // need at least one region per host.
    let ip = is::IsParams {
        regions: ip.regions.max(hosts),
        ..ip
    };
    vec![
        AppSpec {
            name: "SOR",
            input: format!("{}x{} matrix", sp.rows, sp.cols),
            run: Box::new(move |c| sor::run_sor(c, sp)),
        },
        AppSpec {
            name: "IS",
            input: format!(
                "2^{} numbers, 2^{} values",
                ip.keys.ilog2(),
                ip.max_key.ilog2()
            ),
            run: Box::new(move |c| is::run_is(c, ip)),
        },
        AppSpec {
            // §4.3: WATER's reported performance "was achieved by chunking
            // molecules in larger minipages" — the speedup figure runs at
            // the paper's preferred chunking level 5 (Figure 7's 8-host
            // optimum); Table 2 still reports the per-molecule granularity.
            name: "WATER",
            input: format!("{} molecules", wp.molecules),
            run: Box::new(move |mut c| {
                if chunk_water {
                    c.alloc_mode = AllocMode::FineGrain { chunking: 5 };
                }
                water::run_water(c, wp)
            }),
        },
        AppSpec {
            name: "LU",
            input: format!("{0}x{0} matrix, {1}x{1} blocks", lp.n, lp.block),
            run: Box::new(move |c| lu::run_lu(c, lp)),
        },
        AppSpec {
            name: "TSP",
            input: format!("{} cities, recursion {}", tp.cities, tp.recursion_limit),
            run: Box::new(move |c| tsp::run_tsp(c, tp)),
        },
    ]
}

// ----------------------------------------------------------------------
// Backend comparison: `repro sor|is --backend {sim,host}`.
// ----------------------------------------------------------------------

/// SOR input for the backend-comparison commands. The host backend moves
/// real bytes through per-byte volatile accessors, so `--quick` shrinks
/// below the sim-only quick sizes.
fn sor_cmp_params(quick: bool) -> sor::SorParams {
    if quick {
        sor::SorParams {
            rows: 512,
            cols: 64,
            iters: 4,
        }
    } else {
        sor::SorParams {
            rows: 8192,
            cols: 64,
            iters: 10,
        }
    }
}

/// IS input for the backend-comparison commands.
fn is_cmp_params(quick: bool) -> is::IsParams {
    if quick {
        is::IsParams {
            keys: 1 << 14,
            ..is::IsParams::paper()
        }
    } else {
        is::IsParams {
            keys: 1 << 20,
            ..is::IsParams::paper()
        }
    }
}

/// Prints the backend table: the sim row plus (when the host backend ran)
/// the host row produced by [`host_row`].
fn print_backend_table(sim: &AppRun, host_rows: Vec<Vec<String>>) {
    let mut rows = vec![vec![
        "backend".to_string(),
        "checksum".into(),
        "read flt".into(),
        "write flt".into(),
        "invalidations".into(),
        "time ms".into(),
    ]];
    rows.push(vec![
        "sim".into(),
        format!("{:.6}", sim.checksum),
        sim.report.read_faults.to_string(),
        sim.report.write_faults.to_string(),
        sim.report.invalidations.to_string(),
        format!("{:.2} (virtual)", sim.report.virtual_time as f64 / 1e6),
    ]);
    rows.extend(host_rows);
    print!("{}", render_table(&rows));
}

#[cfg(target_os = "linux")]
fn host_row(h: &millipage_apps::HostAppRun) -> Vec<Vec<String>> {
    vec![vec![
        "host".into(),
        format!("{:.6}", h.checksum),
        h.report.read_faults.iter().sum::<u64>().to_string(),
        h.report.write_faults.iter().sum::<u64>().to_string(),
        h.report.invalidations.iter().sum::<u64>().to_string(),
        format!("{:.2} (wall)", h.report.wall.as_secs_f64() * 1e3),
    ]]
}

/// Per-host real fault counts plus the sim-vs-host checksum cross-check;
/// exits nonzero on a mismatch (the host backend produced wrong results).
#[cfg(target_os = "linux")]
fn check_backends(sim: &AppRun, h: &millipage_apps::HostAppRun, tol: f64) {
    println!("per-host real faults (SIGSEGV):");
    for (i, (r, w)) in h
        .report
        .read_faults
        .iter()
        .zip(&h.report.write_faults)
        .enumerate()
    {
        println!(
            "  host {i}: {r} read, {w} write, {} invalidations",
            h.report.invalidations[i]
        );
    }
    if close(sim.checksum, h.checksum, tol) {
        println!(
            "checksums match: sim {} == host {} (tol {tol})",
            sim.checksum, h.checksum
        );
    } else {
        eprintln!(
            "CHECKSUM MISMATCH: sim {} vs host {} (tol {tol})",
            sim.checksum, h.checksum
        );
        std::process::exit(1);
    }
}

#[cfg(not(target_os = "linux"))]
fn host_unsupported() -> ! {
    eprintln!("the host (real-memory) backend requires Linux");
    std::process::exit(2);
}

/// `repro sor|is [--backend sim|host] [--hosts N] [--quick]`: one
/// application on one or both backends. With `--backend host` the sim run
/// happens too, so real SIGSEGV fault counts print next to simulated ones
/// and the checksums can be cross-checked.
fn app_backend(app: &str, quick: bool, hosts: usize, backend: &str) {
    if backend != "sim" && backend != "host" {
        eprintln!("unknown backend {backend:?} (expected sim or host)");
        std::process::exit(2);
    }
    match app {
        "sor" => {
            let p = sor_cmp_params(quick);
            header(&format!(
                "SOR — {backend} backend, {hosts} hosts, {}x{} matrix, {} iters",
                p.rows, p.cols, p.iters
            ));
            let sim = sor::run_sor(
                ClusterConfig {
                    hosts,
                    views: 16,
                    pages: 256,
                    alloc_mode: AllocMode::FINE,
                    ..ClusterConfig::default()
                },
                p,
            );
            if backend == "sim" {
                print_backend_table(&sim, vec![]);
                return;
            }
            #[cfg(target_os = "linux")]
            {
                let h = sor::run_sor_host(hosts, p).unwrap_or_else(|e| {
                    eprintln!("host run failed: {e}");
                    std::process::exit(1);
                });
                print_backend_table(&sim, host_row(&h));
                check_backends(&sim, &h, 1e-9);
            }
            #[cfg(not(target_os = "linux"))]
            host_unsupported();
        }
        "is" => {
            let p = is_cmp_params(quick);
            // The rotated merge needs hosts <= regions.
            let hosts = hosts.min(p.regions);
            header(&format!(
                "IS — {backend} backend, {hosts} hosts, 2^{} keys, 2^{} values",
                p.keys.ilog2(),
                p.max_key.ilog2()
            ));
            let sim = is::run_is(
                ClusterConfig {
                    hosts,
                    views: 8,
                    pages: 64,
                    ..ClusterConfig::default()
                },
                p,
            );
            if backend == "sim" {
                print_backend_table(&sim, vec![]);
                return;
            }
            #[cfg(target_os = "linux")]
            {
                let h = is::run_is_host(hosts, p).unwrap_or_else(|e| {
                    eprintln!("host run failed: {e}");
                    std::process::exit(1);
                });
                print_backend_table(&sim, host_row(&h));
                check_backends(&sim, &h, 1e-9);
            }
            #[cfg(not(target_os = "linux"))]
            host_unsupported();
        }
        other => unreachable!("app_backend called with {other:?}"),
    }
}

/// Table 2's host-capable subset (SOR and IS) on the real-memory backend:
/// both backends' checksums side by side with real SIGSEGV fault counts
/// next to the simulated ones. WATER, LU and TSP use locks and prefetch,
/// which the host `Dsm` surface deliberately excludes.
fn table2_host(quick: bool) {
    #[cfg(not(target_os = "linux"))]
    {
        let _ = quick;
        host_unsupported();
    }
    #[cfg(target_os = "linux")]
    {
        let hosts = 4usize;
        header(&format!(
            "Table 2 (host backend) — SOR and IS on real memory ({hosts} hosts)"
        ));
        let mut rows = vec![vec![
            "app".to_string(),
            "input set".into(),
            "sim checksum".into(),
            "host checksum".into(),
            "sim R/W flt".into(),
            "host R/W flt".into(),
            "host wall ms".into(),
        ]];
        let mut mismatches = 0usize;
        let mut push = |name: &str, input: String, sim: AppRun, h: millipage_apps::HostAppRun| {
            if !close(sim.checksum, h.checksum, 1e-9) {
                eprintln!(
                    "{name}: CHECKSUM MISMATCH sim {} vs host {}",
                    sim.checksum, h.checksum
                );
                mismatches += 1;
            }
            rows.push(vec![
                name.into(),
                input,
                format!("{:.6}", sim.checksum),
                format!("{:.6}", h.checksum),
                format!("{}/{}", sim.report.read_faults, sim.report.write_faults),
                format!(
                    "{}/{}",
                    h.report.read_faults.iter().sum::<u64>(),
                    h.report.write_faults.iter().sum::<u64>()
                ),
                format!("{:.2}", h.report.wall.as_secs_f64() * 1e3),
            ]);
        };
        let sp = sor_cmp_params(quick);
        push(
            "SOR",
            format!("{}x{} matrix", sp.rows, sp.cols),
            sor::run_sor(
                ClusterConfig {
                    hosts,
                    views: 16,
                    pages: 256,
                    alloc_mode: AllocMode::FINE,
                    ..ClusterConfig::default()
                },
                sp,
            ),
            sor::run_sor_host(hosts, sp).unwrap_or_else(|e| {
                eprintln!("SOR host run failed: {e}");
                std::process::exit(1);
            }),
        );
        let ip = is_cmp_params(quick);
        push(
            "IS",
            format!(
                "2^{} numbers, 2^{} values",
                ip.keys.ilog2(),
                ip.max_key.ilog2()
            ),
            is::run_is(
                ClusterConfig {
                    hosts,
                    views: 8,
                    pages: 64,
                    ..ClusterConfig::default()
                },
                ip,
            ),
            is::run_is_host(hosts, ip).unwrap_or_else(|e| {
                eprintln!("IS host run failed: {e}");
                std::process::exit(1);
            }),
        );
        print!("{}", render_table(&rows));
        println!("WATER/LU/TSP need locks and prefetch — sim backend only.");
        if mismatches > 0 {
            std::process::exit(1);
        }
        println!("host checksums match the simulator on both apps");
    }
}

// ----------------------------------------------------------------------
// Table 2: application suite.
// ----------------------------------------------------------------------

/// `workers`: run the simulation itself in conservative-parallel mode on
/// that many OS threads (requires the deterministic scheduler; see
/// DESIGN.md §14). The output is byte-identical to `workers = None`.
fn table2(quick: bool, hosts: usize, workers: Option<usize>) {
    header(&format!(
        "Table 2 — Application suite (measured on {hosts} hosts)"
    ));
    let mut rows = vec![vec![
        "app".into(),
        "input set".into(),
        "shared mem".into(),
        "views".into(),
        "granularity B".into(),
        "barriers".into(),
        "locks".into(),
    ]];
    for spec in app_specs_inner(quick, false, hosts) {
        let mut cfg = app_cfg(hosts);
        if let Some(w) = workers {
            // Parallel simulation needs the canonical deterministic
            // schedule (that is the contract it preserves).
            cfg.sched = SchedMode::deterministic();
            cfg.parallel = Some(ParallelConfig::workers(w));
        }
        let r = (spec.run)(cfg);
        let a = &r.report.alloc;
        rows.push(vec![
            spec.name.into(),
            spec.input.clone(),
            format!("{} KB", a.bytes_requested / 1024),
            a.views_used.to_string(),
            if a.min_granularity == a.max_granularity {
                format!("{}", a.min_granularity)
            } else {
                format!("{}-{}", a.min_granularity, a.max_granularity)
            },
            r.report.barriers.to_string(),
            r.report.lock_acquires.to_string(),
        ]);
        assert!(
            r.report.coherence_violations.is_empty(),
            "{}: {:?}",
            spec.name,
            r.report.coherence_violations
        );
    }
    print!("{}", render_table(&rows));
    println!("paper: SOR 8MB/16/256B/21/-; IS 2KB/8/256B/90/-; WATER");
    println!("336KB/6/672B/29/6720; LU 8MB/1/4KB/577/-; TSP 785KB/27/148B/3/681");
}

// ----------------------------------------------------------------------
// Figure 6: speedups and breakdown.
// ----------------------------------------------------------------------

fn fig6(quick: bool) {
    header("Figure 6 — Speedups (1..8 hosts) and 8-host time breakdown");
    let host_counts = [1usize, 2, 4, 8];
    let mut speedup_rows = vec![{
        let mut h = vec!["app".to_string()];
        h.extend(host_counts.iter().map(|h| format!("{h} hosts")));
        h
    }];
    let mut breakdown_rows = vec![vec![
        "app (8 hosts)".to_string(),
        "Comp %".into(),
        "Prefetch %".into(),
        "Read Fault %".into(),
        "Write Fault %".into(),
        "Synch %".into(),
    ]];
    for spec in app_specs(quick) {
        let mut t1: Ns = 0;
        let mut row = vec![spec.name.to_string()];
        let mut last: Option<AppRun> = None;
        for &h in &host_counts {
            let r = (spec.run)(app_cfg(h));
            assert!(
                r.report.coherence_violations.is_empty(),
                "{}: {:?}",
                spec.name,
                r.report.coherence_violations
            );
            if h == 1 {
                t1 = r.timed_ns;
            }
            row.push(format!("{:.2}", r.speedup(t1)));
            last = Some(r);
        }
        speedup_rows.push(row);
        let r8 = last.expect("ran at least one host count");
        let b = &r8.timed_breakdown;
        breakdown_rows.push(vec![
            spec.name.to_string(),
            format!("{:.1}", 100.0 * b.fraction(Category::Comp)),
            format!("{:.1}", 100.0 * b.fraction(Category::Prefetch)),
            format!("{:.1}", 100.0 * b.fraction(Category::ReadFault)),
            format!("{:.1}", 100.0 * b.fraction(Category::WriteFault)),
            format!("{:.1}", 100.0 * b.fraction(Category::Synch)),
        ]);
    }
    print!("{}", render_table(&speedup_rows));
    println!();
    print!("{}", render_table(&breakdown_rows));
    println!("paper: IS and SOR close to linear; LU relatively good (with");
    println!("prefetch); WATER comparable to relaxed-consistency systems");
    println!("(with chunking, see fig7); TSP moderate.");
}

// ----------------------------------------------------------------------
// Figure 7: chunking in WATER.
// ----------------------------------------------------------------------

fn fig7(quick: bool) {
    header("Figure 7 — The effect of chunking in WATER (4 and 8 hosts)");
    let p = if quick {
        water::WaterParams {
            molecules: 96,
            ..water::WaterParams::paper()
        }
    } else {
        water::WaterParams::paper()
    };
    let mut results: Vec<(String, [Option<AppRun>; 2])> = Vec::new();
    for level in 1..=6usize {
        let mut pair: [Option<AppRun>; 2] = [None, None];
        for (slot, hosts) in [(0usize, 4usize), (1, 8)] {
            let cfg = ClusterConfig {
                alloc_mode: AllocMode::FineGrain { chunking: level },
                ..app_cfg(hosts)
            };
            pair[slot] = Some(water::run_water(cfg, p));
        }
        results.push((level.to_string(), pair));
    }
    {
        let mut pair: [Option<AppRun>; 2] = [None, None];
        for (slot, hosts) in [(0usize, 4usize), (1, 8)] {
            let cfg = ClusterConfig {
                alloc_mode: AllocMode::PageGrain,
                ..app_cfg(hosts)
            };
            pair[slot] = Some(water::run_water(cfg, p));
        }
        results.push(("none".into(), pair));
    }
    // Efficiency is relative to the best level per host count (the paper
    // normalizes the same way).
    let times: Vec<[Ns; 2]> = results
        .iter()
        .map(|(_, pair)| {
            [
                pair[0].as_ref().expect("ran").timed_ns,
                pair[1].as_ref().expect("ran").timed_ns,
            ]
        })
        .collect();
    let best = [
        times.iter().map(|t| t[0]).min().expect("nonempty"),
        times.iter().map(|t| t[1]).min().expect("nonempty"),
    ];
    let mut rows = vec![vec![
        "chunking".to_string(),
        "compete req (4)".into(),
        "compete req (8)".into(),
        "R/W faults (4)".into(),
        "R/W faults (8)".into(),
        "efficiency (4)".into(),
        "efficiency (8)".into(),
    ]];
    for ((label, pair), t) in results.iter().zip(&times) {
        let r4 = pair[0].as_ref().expect("ran");
        let r8 = pair[1].as_ref().expect("ran");
        rows.push(vec![
            label.clone(),
            r4.report.competing_requests.to_string(),
            r8.report.competing_requests.to_string(),
            (r4.report.read_faults + r4.report.write_faults).to_string(),
            (r8.report.read_faults + r8.report.write_faults).to_string(),
            format!("{:.2}", best[0] as f64 / t[0] as f64),
            format!("{:.2}", best[1] as f64 / t[1] as f64),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("paper: competing requests rise with chunking (21 at level 1 up");
    println!("to 601 at none); faults fall; best efficiency at level 4 (4");
    println!("hosts) / 5 (8 hosts).");
}

// ----------------------------------------------------------------------
// Ablations / extensions.
// ----------------------------------------------------------------------

fn ablate(quick: bool) {
    header("Ablations — fast polling what-if; fine vs page granularity");
    let p = if quick {
        water::WaterParams {
            molecules: 96,
            ..water::WaterParams::paper()
        }
    } else {
        water::WaterParams::paper()
    };
    let mut rows = vec![vec![
        "configuration (WATER, 8 hosts)".to_string(),
        "virtual ms".into(),
        "faults".into(),
        "competing".into(),
    ]];
    // The S5 hypothesis: chunking + reduced consistency removes the
    // chunk-level false sharing that SW/MR pays for in competing requests.
    let configs: Vec<(&str, ClusterConfig)> = vec![
        (
            "fine grain, NT timers (paper)",
            ClusterConfig {
                alloc_mode: AllocMode::FINE,
                ..app_cfg(8)
            },
        ),
        (
            "fine grain, fast polling (S3.5 what-if)",
            ClusterConfig {
                alloc_mode: AllocMode::FINE,
                cost: CostModel::fast_polling(),
                ..app_cfg(8)
            },
        ),
        (
            "chunking 5, NT timers",
            ClusterConfig {
                alloc_mode: AllocMode::FineGrain { chunking: 5 },
                ..app_cfg(8)
            },
        ),
        (
            "page grain (no false-sharing control)",
            ClusterConfig {
                alloc_mode: AllocMode::PageGrain,
                ..app_cfg(8)
            },
        ),
        (
            "chunking 5, release consistency (S5 extension)",
            ClusterConfig {
                alloc_mode: AllocMode::FineGrain { chunking: 5 },
                consistency: Consistency::HomeEagerRc,
                ..app_cfg(8)
            },
        ),
        (
            "page grain, release consistency",
            ClusterConfig {
                alloc_mode: AllocMode::PageGrain,
                consistency: Consistency::HomeEagerRc,
                ..app_cfg(8)
            },
        ),
    ];
    let grouped = water::run_water(
        app_cfg(8),
        water::WaterParams {
            grouped_read: true,
            ..p
        },
    );
    assert!(grouped.report.coherence_violations.is_empty());
    for (name, cfg) in configs {
        let r = water::run_water(cfg, p);
        assert!(
            r.report.coherence_violations.is_empty(),
            "{name}: {:?}",
            r.report.coherence_violations
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", r.timed_ns as f64 / 1e6),
            (r.report.read_faults + r.report.write_faults).to_string(),
            r.report.competing_requests.to_string(),
        ]);
    }
    rows.push(vec![
        "fine grain + composed-view read phase (S5)".to_string(),
        format!("{:.2}", grouped.timed_ns as f64 / 1e6),
        (grouped.report.read_faults + grouped.report.write_faults).to_string(),
        grouped.report.competing_requests.to_string(),
    ]);
    print!("{}", render_table(&rows));
    println!("paper S4.3.1/S5: solving the polling/timer problems shrinks");
    println!("fault service times and lowers the optimal chunking level;");
    println!("composed views pipeline the read phase without chunking's");
    println!("false-sharing cost.");
}

// ----------------------------------------------------------------------
// §5 extension: distributed minipage management.
// ----------------------------------------------------------------------

/// The all-to-all hot-spot workload: every host allocates one hot cell at
/// runtime (so first-touch homes it locally), publishes its address
/// through a setup-allocated board, and then all hosts hammer all cells
/// with unsynchronized read-modify-writes. Under the centralized manager
/// every service window lives on host 0; the distributed policies split
/// them, which is exactly the §5 "distribute the minipage management
/// among several managers" fix this sweep quantifies.
fn manager_sweep(quick: bool) {
    header("Manager sweep — home policies vs the management hot spot (8 hosts)");
    let hosts = 8usize;
    let rounds: u64 = if quick { 40 } else { 200 };
    let mut rows = vec![vec![
        "policy".to_string(),
        "competing total".into(),
        "competing peak/shard".into(),
        "dir entries/shard".into(),
        "mean fault us".into(),
        "virtual ms".into(),
    ]];
    for policy in [
        HomePolicyKind::Centralized,
        HomePolicyKind::Interleaved,
        HomePolicyKind::FirstTouch,
    ] {
        let cfg = ClusterConfig {
            hosts,
            views: 16,
            pages: 128,
            home_policy: policy,
            seed: 41,
            ..ClusterConfig::default()
        };
        let report = run(
            cfg,
            |s| s.alloc_vec_init(&vec![0u64; hosts]),
            move |ctx, board| {
                // Runtime allocation: first-touch homes the cell here.
                let mine = ctx.alloc_cell::<u64>();
                let me = ctx.host().index();
                ctx.set(board, me, mine.addr().0);
                ctx.barrier();
                let cells: Vec<SharedCell<u64>> = (0..ctx.hosts())
                    .map(|h| {
                        let raw = ctx.get(board, h);
                        SharedCell::from_raw(millipage::VAddr(raw))
                    })
                    .collect();
                ctx.barrier();
                // The hammer: all hosts, all cells, no synchronization —
                // the service windows serialize the racing requests and
                // every queued one counts as competing (Figure 7's metric).
                for round in 0..rounds {
                    for (i, c) in cells.iter().enumerate() {
                        let v = ctx.cell_get(c);
                        ctx.cell_set(c, v + 1);
                        if (round as usize + i + me).is_multiple_of(3) {
                            ctx.compute(2_000);
                        }
                    }
                }
                ctx.barrier();
            },
        );
        assert!(
            report.coherence_violations.is_empty(),
            "{policy:?}: {:?}",
            report.coherence_violations
        );
        let faults = report.read_faults + report.write_faults;
        let fault_ns =
            report.breakdown.get(Category::ReadFault) + report.breakdown.get(Category::WriteFault);
        let entries: Vec<String> = report
            .shards
            .iter()
            .map(|s| s.directory_entries.to_string())
            .collect();
        rows.push(vec![
            report.policy.to_string(),
            report.competing_requests.to_string(),
            report.peak_shard_competing().to_string(),
            entries.join("/"),
            format!("{:.1}", fault_ns as f64 / faults.max(1) as f64 / 1000.0),
            format!("{:.2}", report.virtual_time as f64 / 1e6),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("paper S5: \"the manager may become a bottleneck ... this problem");
    println!("can be solved by distributing the minipage management among");
    println!("several managers.\" Interleaved/first-touch split the directory");
    println!("across shards, flattening the per-shard competing-request peak");
    println!("that the centralized manager concentrates on host 0.");
}

// ----------------------------------------------------------------------
// Observability: traced runs, invariant audit, Perfetto export.
// ----------------------------------------------------------------------

/// Per-recorder ring capacity for traced repro runs. 64Ki events per
/// simulated thread keeps even the full-size Table 2 runs complete
/// (`dropped == 0`) at the 4-host trace configuration.
const TRACE_RING_CAPACITY: usize = 1 << 16;

fn trace_cmd(scenario: &str, quick: bool, out_path: &str, json_path: Option<&str>) {
    header(&format!(
        "Trace — protocol events, latency histograms, invariant audit ({scenario}, 4 hosts)"
    ));
    let mut specs = app_specs(quick);
    if !scenario.eq_ignore_ascii_case("table2") && !scenario.eq_ignore_ascii_case("all") {
        specs.retain(|s| s.name.eq_ignore_ascii_case(scenario));
        if specs.is_empty() {
            eprintln!("unknown trace scenario {scenario:?}");
            eprintln!(
                "usage: repro trace [table2|sor|is|water|lu|tsp] [--quick] [--out f] [--json f]"
            );
            std::process::exit(2);
        }
    }
    let mut chrome = ChromeTrace::new();
    let mut total_violations = 0usize;
    let mut total_dropped = 0u64;
    let mut json_apps: Vec<String> = Vec::new();
    let mut rows = vec![vec![
        "app".to_string(),
        "events".into(),
        "dropped".into(),
        "violations".into(),
        "fault p50".into(),
        "fault p95".into(),
        "fault p99".into(),
        "queue p95".into(),
        "inv-rt p95".into(),
    ]];
    let q = |v: Option<Ns>| v.map(us).unwrap_or_else(|| "-".into());
    for (i, spec) in specs.iter().enumerate() {
        let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
        let cfg = ClusterConfig {
            tracer: tracer.clone(),
            ..app_cfg(4)
        };
        let r = (spec.run)(cfg);
        let log = tracer.drain();
        // The Table 2 apps run under sequential consistency, so the
        // replay checks the Single-Writer/Multiple-Readers invariants.
        let violations = audit(&log.events, AuditMode::SwMr);
        for v in violations.iter().take(5) {
            eprintln!("  {}: VIOLATION {v}", spec.name);
        }
        if violations.len() > 5 {
            eprintln!("  {}: ... and {} more", spec.name, violations.len() - 5);
        }
        total_violations += violations.len();
        total_dropped += log.dropped;
        rows.push(vec![
            spec.name.to_string(),
            log.events.len().to_string(),
            log.dropped.to_string(),
            violations.len().to_string(),
            q(r.report.fault_latency_p50()),
            q(r.report.fault_latency_p95()),
            q(r.report.fault_latency_p99()),
            q(r.report.server_queue_delay.quantile(0.95)),
            q(r.report.inv_round_trip.quantile(0.95)),
        ]);
        // One Chrome "process" block of 64 pids per app keeps the runs
        // visually separate in the Perfetto UI.
        chrome.add_run(spec.name, (i as u32) * 64, &log.events);
        if json_path.is_some() {
            json_apps.push(format!(
                "{{\"app\":\"{}\",\"report\":{}}}",
                spec.name,
                r.report.to_json()
            ));
        }
    }
    print!("{}", render_table(&rows));
    if let Err(e) = std::fs::write(out_path, chrome.finish()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote Chrome/Perfetto trace to {out_path} (open at ui.perfetto.dev)");
    if let Some(p) = json_path {
        let body = format!("[{}]\n", json_apps.join(","));
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("failed to write {p}: {e}");
            std::process::exit(1);
        }
        println!("wrote per-app RunReport JSON to {p}");
    }
    if total_violations > 0 {
        eprintln!("audit FAILED: {total_violations} invariant violation(s)");
        std::process::exit(1);
    }
    if total_dropped > 0 {
        // A full ring silently truncates the event stream: the audit and
        // the export above ran on incomplete data, so the run cannot be
        // trusted as a golden.
        eprintln!(
            "trace FAILED: {total_dropped} event(s) dropped from full rings — \
             raise TRACE_RING_CAPACITY"
        );
        std::process::exit(1);
    }
    println!(
        "audit passed: 0 invariant violations, 0 dropped events across {} app(s)",
        specs.len()
    );
}

// ----------------------------------------------------------------------
// Sharing diagnostics: `repro diagnose`.
// ----------------------------------------------------------------------

/// Output files of `repro diagnose` (see the module docs).
const DIAG_HEATMAP_PATH: &str = "diagnose-heatmap.csv";
const DIAG_TRACE_PATH: &str = "diagnose-trace.json";

/// How many findings per detector the console table shows.
const DIAG_TOP_N: usize = 5;

/// Per-host cumulative fault counts as Perfetto counter points, sampled
/// down to ~256 points per host (the final cumulative value always kept).
fn fault_counter_points(events: &[millipage::TraceEvent], host: u16) -> Vec<(Ns, u64)> {
    let mut vts: Vec<Ns> = events
        .iter()
        .filter(|e| {
            e.host == host
                && matches!(
                    e.kind,
                    TraceKind::ReadFaultBegin | TraceKind::WriteFaultBegin
                )
        })
        .map(|e| e.vt)
        .collect();
    vts.sort_unstable();
    let n = vts.len();
    let stride = (n / 256).max(1);
    vts.iter()
        .enumerate()
        .filter(|(j, _)| j % stride == 0 || j + 1 == n)
        .map(|(j, &vt)| (vt, j as u64 + 1))
        .collect()
}

fn diagnose_cmd(scenario: &str, quick: bool, backend: &str, json_path: Option<&str>) {
    match backend {
        "sim" => {}
        "host" => {
            diagnose_host(quick);
            return;
        }
        other => {
            eprintln!("unknown backend {other:?} (expected sim or host)");
            std::process::exit(2);
        }
    }
    header(&format!(
        "Diagnose — per-minipage sharing stats + detectors ({scenario}, 4 hosts, deterministic)"
    ));
    let mut specs = app_specs(quick);
    if !scenario.eq_ignore_ascii_case("table2") && !scenario.eq_ignore_ascii_case("all") {
        specs.retain(|s| s.name.eq_ignore_ascii_case(scenario));
        if specs.is_empty() {
            eprintln!("unknown diagnose scenario {scenario:?}");
            eprintln!(
                "usage: repro diagnose [table2|sor|is|water|lu|tsp] [--quick] \
                 [--backend sim|host] [--json f]"
            );
            std::process::exit(2);
        }
    }
    let mut chrome = ChromeTrace::with_os_names();
    let mut heatmap = String::from("app,mp,vpage,host,read_faults,write_faults\n");
    let mut json_apps: Vec<String> = Vec::new();
    let mut failures = 0usize;
    let mut rows = vec![vec![
        "app".to_string(),
        "active mp".into(),
        "faults".into(),
        "inv recv".into(),
        "ping-pong".into(),
        "false-sharing".into(),
        "hot-home".into(),
        "dropped".into(),
    ]];
    let mut findings_out = String::new();
    for (i, spec) in specs.iter().enumerate() {
        // Traced run: stats table + full protocol trace, deterministic
        // schedule so the stats-only run below replays the same execution.
        let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
        let traced = (spec.run)(ClusterConfig {
            tracer: tracer.clone(),
            diag: true,
            sched: SchedMode::deterministic(),
            ..app_cfg(4)
        });
        let log = tracer.drain();
        // Stats-only run: same schedule, tracer off — the production
        // configuration of the diagnostics plane.
        let stats = (spec.run)(ClusterConfig {
            diag: true,
            sched: SchedMode::deterministic(),
            ..app_cfg(4)
        });
        let (Some(diag), Some(diag2)) = (traced.report.diag.as_ref(), stats.report.diag.as_ref())
        else {
            eprintln!("  {}: run produced no diagnostics", spec.name);
            failures += 1;
            continue;
        };
        // Self-check 1: the lock-free stats table must agree with the
        // counts re-derived from the full trace stream.
        let from_trace = trace_counts(&log.events);
        let from_table = diag.counts();
        if from_trace != from_table {
            eprintln!(
                "  {}: COUNTER MISMATCH between the stats table and the trace",
                spec.name
            );
            let keys: std::collections::BTreeSet<_> =
                from_trace.keys().chain(from_table.keys()).collect();
            for &&(mp, h) in keys
                .iter()
                .filter(|k| from_trace.get(k) != from_table.get(k))
                .take(5)
            {
                eprintln!(
                    "    mp{mp} h{h}: trace {:?} vs table {:?}",
                    from_trace.get(&(mp, h)),
                    from_table.get(&(mp, h))
                );
            }
            failures += 1;
        }
        // Self-check 2: detector output must not depend on whether the
        // tracer ran alongside the stats table.
        if diag.findings_fingerprint() != diag2.findings_fingerprint() {
            eprintln!(
                "  {}: DETECTOR MISMATCH between traced and stats-only runs",
                spec.name
            );
            failures += 1;
        }
        // A full trace ring would invalidate both checks.
        if log.dropped > 0 || !traced.report.trace_dropped.is_empty() {
            eprintln!(
                "  {}: {} trace event(s) dropped — raise TRACE_RING_CAPACITY",
                spec.name, log.dropped
            );
            failures += 1;
        }
        let faults: u64 = from_table.values().map(|c| c[0] + c[1]).sum();
        let inv: u64 = from_table.values().map(|c| c[2]).sum();
        rows.push(vec![
            spec.name.to_string(),
            diag.minipages.len().to_string(),
            faults.to_string(),
            inv.to_string(),
            diag.ping_pong.len().to_string(),
            diag.false_sharing.len().to_string(),
            diag.hot_home.len().to_string(),
            log.dropped.to_string(),
        ]);
        {
            use std::fmt::Write as _;
            let mut push = |title: &str, fs: &[Finding]| {
                for f in fs.iter().take(DIAG_TOP_N) {
                    let _ = writeln!(
                        findings_out,
                        "  {} [{title}] mp{} h{} score={}: {}",
                        spec.name, f.mp, f.host, f.score, f.evidence
                    );
                }
                if fs.len() > DIAG_TOP_N {
                    let _ = writeln!(
                        findings_out,
                        "  {} [{title}] ... and {} more",
                        spec.name,
                        fs.len() - DIAG_TOP_N
                    );
                }
            };
            push("ping-pong", &diag.ping_pong);
            push("false-sharing", &diag.false_sharing);
            push("hot-home", &diag.hot_home);
            let wire: u64 = diag.links.iter().map(|l| l.bytes).sum();
            let busiest = diag.links.iter().max_by_key(|l| l.bytes);
            if let Some(l) = busiest {
                let _ = writeln!(
                    findings_out,
                    "  {} [wire] {} links, {wire} payload bytes; busiest h{}->h{} \
                     ({} msgs, {} bytes)",
                    spec.name,
                    diag.links.len(),
                    l.from,
                    l.to,
                    l.messages,
                    l.bytes
                );
            }
        }
        diag.heatmap_csv(spec.name, &mut heatmap);
        // One Chrome "process" block of 64 pids per app, as `repro trace`
        // lays runs out, plus one cumulative-fault counter track per host.
        chrome.add_run(spec.name, (i as u32) * 64, &log.events);
        for h in 0..4u16 {
            let points = fault_counter_points(&log.events, h);
            if !points.is_empty() {
                chrome.add_counter(
                    &format!("{} h{h} faults", spec.name),
                    (i as u32) * 64 + h as u32,
                    &points,
                );
            }
        }
        if json_path.is_some() {
            json_apps.push(format!(
                "{{\"app\":\"{}\",\"diag\":{}}}",
                spec.name,
                diag.to_json()
            ));
        }
    }
    print!("{}", render_table(&rows));
    print!("{findings_out}");
    if let Err(e) = std::fs::write(DIAG_HEATMAP_PATH, &heatmap) {
        eprintln!("failed to write {DIAG_HEATMAP_PATH}: {e}");
        std::process::exit(1);
    }
    println!("wrote vpage x host fault heatmap to {DIAG_HEATMAP_PATH}");
    if let Err(e) = std::fs::write(DIAG_TRACE_PATH, chrome.finish()) {
        eprintln!("failed to write {DIAG_TRACE_PATH}: {e}");
        std::process::exit(1);
    }
    println!("wrote Perfetto trace + counter tracks to {DIAG_TRACE_PATH}");
    if let Some(p) = json_path {
        let body = format!("[{}]\n", json_apps.join(","));
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("failed to write {p}: {e}");
            std::process::exit(1);
        }
        println!("wrote per-app diagnostics JSON to {p}");
    }
    if failures > 0 {
        eprintln!("diagnose FAILED: {failures} self-check failure(s)");
        std::process::exit(1);
    }
    println!(
        "diagnose passed: stats table matches the trace and detectors agree \
         across {} app(s)",
        specs.len()
    );
}

/// `repro diagnose --backend host`: SOR and IS on the real-memory backend
/// with the diagnostics table recorded on the SIGSEGV path, cross-checked
/// per minipage against the simulator's trace-derived counts. The two
/// backends share the protocol core and the barrier-phased apps make the
/// fault pattern structural, so the counters must match *exactly*.
fn diagnose_host(quick: bool) {
    #[cfg(not(target_os = "linux"))]
    {
        let _ = quick;
        host_unsupported();
    }
    #[cfg(target_os = "linux")]
    {
        let hosts = 4usize;
        header(&format!(
            "Diagnose (host backend) — per-minipage counter parity vs sim ({hosts} hosts)"
        ));
        let mut failures = 0usize;
        let sp = sor_cmp_params(quick);
        let h = sor::run_sor_host_diag(hosts, sp).unwrap_or_else(|e| {
            eprintln!("SOR host run failed: {e}");
            std::process::exit(1);
        });
        // views/pages 1 are maxed up to the same geometry formulas the
        // host runner uses, so minipage ids align across the backends.
        let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
        let sim = sor::run_sor(
            ClusterConfig {
                hosts,
                views: 1,
                pages: 1,
                alloc_mode: AllocMode::FINE,
                diag: true,
                tracer: tracer.clone(),
                sched: SchedMode::deterministic(),
                ..ClusterConfig::default()
            },
            sp,
        );
        failures += host_parity("SOR", &h, &sim, &tracer.drain().events);

        let ip = is_cmp_params(quick);
        let h = is::run_is_host_diag(hosts, ip).unwrap_or_else(|e| {
            eprintln!("IS host run failed: {e}");
            std::process::exit(1);
        });
        let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
        let sim = is::run_is(
            ClusterConfig {
                hosts,
                views: 1,
                pages: 64,
                diag: true,
                tracer: tracer.clone(),
                sched: SchedMode::deterministic(),
                ..ClusterConfig::default()
            },
            ip,
        );
        failures += host_parity("IS", &h, &sim, &tracer.drain().events);
        if failures > 0 {
            eprintln!("diagnose FAILED: {failures} parity failure(s)");
            std::process::exit(1);
        }
        println!("host/sim per-minipage counters and checksums match on SOR and IS");
    }
}

/// Compares the host backend's per-`(minipage, host)` counters against the
/// sim's stats table and the sim's trace-derived counts; returns the
/// number of failed comparisons.
#[cfg(target_os = "linux")]
fn host_parity(
    name: &str,
    h: &millipage_apps::HostAppRun,
    sim: &AppRun,
    events: &[millipage::TraceEvent],
) -> usize {
    let mut failures = 0usize;
    if !close(sim.checksum, h.checksum, 1e-9) {
        eprintln!(
            "{name}: CHECKSUM MISMATCH sim {} vs host {}",
            sim.checksum, h.checksum
        );
        failures += 1;
    }
    let (Some(hd), Some(sd)) = (h.report.diag.as_ref(), sim.report.diag.as_ref()) else {
        eprintln!("{name}: a backend produced no diagnostics");
        return failures + 1;
    };
    let host_counts = hd.counts();
    let sim_trace = trace_counts(events);
    let sim_table = sd.counts();
    for (label, lhs, rhs) in [
        ("host table vs sim trace", &host_counts, &sim_trace),
        ("sim table vs sim trace", &sim_table, &sim_trace),
    ] {
        if lhs == rhs {
            continue;
        }
        eprintln!("{name}: COUNTER MISMATCH {label}");
        let keys: std::collections::BTreeSet<_> = lhs.keys().chain(rhs.keys()).collect();
        for &&(mp, hh) in keys.iter().filter(|k| lhs.get(k) != rhs.get(k)).take(8) {
            eprintln!(
                "  mp{mp} h{hh}: {:?} vs {:?}",
                lhs.get(&(mp, hh)),
                rhs.get(&(mp, hh))
            );
        }
        failures += 1;
    }
    if failures == 0 {
        let faults: u64 = host_counts.values().map(|c| c[0] + c[1]).sum();
        let inv: u64 = host_counts.values().map(|c| c[2]).sum();
        println!(
            "{name}: {} active minipages, {faults} real faults, {inv} invalidations \
             received — per-minipage counters match the sim exactly",
            hd.minipages.len()
        );
    }
    failures
}

// ----------------------------------------------------------------------
// Online adaptation: `repro adapt`.
// ----------------------------------------------------------------------

/// Baseline config for the planted adaptation workloads (mirrors
/// tests/adapt.rs): small geometry, diagnostics on, deterministic
/// scheduler so static and adapted runs are directly comparable.
fn adapt_base(hosts: usize, adapt: bool) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 16,
        pages: 64,
        diag: true,
        sched: SchedMode::deterministic(),
        adapt: if adapt {
            AdaptConfig::enabled()
        } else {
            AdaptConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// Two hosts write pairwise-disjoint halves of one minipage — the
/// canonical false-sharing pair the engine must split.
fn adapt_false_sharing(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| s.alloc_vec_init(&[0u32; 16]),
        |ctx, v| {
            let me = ctx.host().index();
            for round in 0..16u32 {
                ctx.write_range(v, me * 8, &[round; 8]);
                ctx.barrier();
            }
        },
    )
}

/// Two physically adjacent minipages always written together by the
/// round-holding host — a ping-ponging pair the engine must merge.
fn adapt_ping_pong(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| (s.alloc_vec_init(&[0u32]), s.alloc_vec_init(&[0u32])),
        |ctx, (a, b)| {
            let me = ctx.host().index();
            for round in 0..16u32 {
                if round as usize % 2 == me {
                    ctx.write_range(a, 0, &[round]);
                    ctx.write_range(b, 0, &[round]);
                }
                ctx.barrier();
            }
        },
    )
}

/// Host 1 hammers one remotely homed minipage under HLRC while the rest
/// of the heap sees one cold touch per host — the home must migrate to
/// the writer.
fn adapt_skewed_home(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| {
            let hot = s.alloc_vec_init(&[0u32; 8]);
            let cold: Vec<_> = (0..6).map(|_| s.alloc_vec_init(&[0u32])).collect();
            (hot, cold)
        },
        |ctx, (hot, cold)| {
            let me = ctx.host().index();
            let _ = ctx.read_range(&cold[me % cold.len()], 0..1);
            ctx.barrier();
            for round in 0..24u32 {
                if me == 1 {
                    ctx.write_range(hot, 0, &[round; 8]);
                }
                ctx.barrier();
            }
        },
    )
}

fn faults_plus_inv(r: &RunReport) -> u64 {
    r.read_faults + r.write_faults + r.invalidations
}

/// Payload bytes that actually crossed the network. Loopback delivery to
/// a host's own shard is a local handler call either way, so it is
/// excluded — migration's win is exactly this number.
fn cross_host_bytes(r: &RunReport) -> u64 {
    r.diag
        .as_ref()
        .map(|d| {
            d.links
                .iter()
                .filter(|l| l.from != l.to)
                .map(|l| l.bytes)
                .sum()
        })
        .unwrap_or(0)
}

fn run_is_clean(r: &RunReport, what: &str) -> usize {
    let mut failures = 0;
    if !r.coherence_violations.is_empty() {
        eprintln!(
            "  {what}: coherence violations: {:?}",
            r.coherence_violations
        );
        failures += 1;
    }
    if !r.protocol_errors.is_empty() {
        eprintln!("  {what}: protocol errors: {:?}", r.protocol_errors);
        failures += 1;
    }
    failures
}

/// One planted pathology: the workload, the action that must answer it,
/// and the check that its triggering finding cleared.
struct PlantedAdapt {
    name: &'static str,
    action: &'static str,
    hosts: usize,
    /// The migration workload runs under HLRC (home-based diffs make the
    /// skew visible on the wire); the granularity pair runs under SW/MR.
    hlrc: bool,
    audit_mode: AuditMode,
    run: fn(ClusterConfig) -> RunReport,
    applied: fn(&AdaptReport) -> u64,
    cleared: fn(&DiagReport) -> Result<(), String>,
}

fn planted_adapt_specs() -> Vec<PlantedAdapt> {
    vec![
        PlantedAdapt {
            name: "false-sharing pair",
            action: "split",
            hosts: 2,
            hlrc: false,
            audit_mode: AuditMode::SwMr,
            run: adapt_false_sharing,
            applied: |a| a.splits,
            cleared: |d| {
                if d.false_sharing.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "{} false-sharing finding(s) survive the split",
                        d.false_sharing.len()
                    ))
                }
            },
        },
        PlantedAdapt {
            name: "ping-pong pair",
            action: "merge",
            hosts: 2,
            hlrc: false,
            audit_mode: AuditMode::SwMr,
            run: adapt_ping_pong,
            applied: |a| a.merges,
            cleared: |d| {
                // The merged unit still ping-pongs by design (one fault
                // per handoff instead of two); the retired siblings must
                // not be flagged.
                if d.ping_pong.iter().any(|f| f.mp <= 1) {
                    Err("retired siblings still flagged as ping-pong".into())
                } else {
                    Ok(())
                }
            },
        },
        PlantedAdapt {
            name: "skewed-home hammer",
            action: "migrate",
            hosts: 4,
            hlrc: true,
            audit_mode: AuditMode::Hlrc,
            run: adapt_skewed_home,
            applied: |a| a.migrations,
            cleared: |d| {
                if d.hot_home.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "{} hot-home finding(s) survive the migration",
                        d.hot_home.len()
                    ))
                }
            },
        },
    ]
}

fn adapt_cmd(scenario: &str, quick: bool, backend: &str, json_path: Option<&str>) {
    match backend {
        "sim" => {}
        "host" => {
            adapt_host(quick);
            return;
        }
        other => {
            eprintln!("unknown backend {other:?} (expected sim or host)");
            std::process::exit(2);
        }
    }
    header("Adapt — online split/merge/home-migration vs static (deterministic)");
    let mut failures = 0usize;
    let mut json_out: Vec<String> = Vec::new();
    let mut rows = vec![vec![
        "workload".to_string(),
        "action".into(),
        "applied".into(),
        "faults+inv".into(),
        "adapted".into(),
        "x-host B".into(),
        "adapted".into(),
        "finding".into(),
    ]];
    let (mut total_before, mut total_after) = (0u64, 0u64);
    for spec in planted_adapt_specs() {
        let base = |adapt: bool| {
            let mut c = adapt_base(spec.hosts, adapt);
            if spec.hlrc {
                c.consistency = Consistency::HomeEagerRc;
                c.home_policy = HomePolicyKind::Centralized;
            }
            c
        };
        let stat = (spec.run)(base(false));
        // Adapted twice: once traced (for the audit), once stats-only —
        // the pair must agree byte-for-byte, proving the engine neither
        // depends on the tracer nor on wall-clock state.
        let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
        let adapted = (spec.run)(ClusterConfig {
            tracer: tracer.clone(),
            ..base(true)
        });
        let replay = (spec.run)(base(true));
        failures += run_is_clean(&stat, &format!("{} static", spec.name));
        failures += run_is_clean(&adapted, &format!("{} adapted", spec.name));
        let log = tracer.drain();
        if log.dropped > 0 {
            eprintln!(
                "  {}: {} trace event(s) dropped — raise TRACE_RING_CAPACITY",
                spec.name, log.dropped
            );
            failures += 1;
        }
        let violations = audit(&log.events, spec.audit_mode);
        if !violations.is_empty() {
            eprintln!("  {}: audit violations: {violations:?}", spec.name);
            failures += 1;
        }
        let (Some(a), Some(a2)) = (adapted.adapt.as_ref(), replay.adapt.as_ref()) else {
            eprintln!("  {}: adapted run produced no adapt report", spec.name);
            failures += 1;
            continue;
        };
        let (Some(diag), Some(diag2)) = (adapted.diag.as_ref(), replay.diag.as_ref()) else {
            eprintln!("  {}: adapted run produced no diagnostics", spec.name);
            failures += 1;
            continue;
        };
        if (
            a.fingerprint(),
            diag.findings_fingerprint(),
            faults_plus_inv(&adapted),
        ) != (
            a2.fingerprint(),
            diag2.findings_fingerprint(),
            faults_plus_inv(&replay),
        ) {
            eprintln!(
                "  {}: NONDETERMINISTIC adaptation between replays",
                spec.name
            );
            failures += 1;
        }
        let applied = (spec.applied)(a);
        if applied == 0 {
            eprintln!(
                "  {}: no {} applied; actions: {:?}",
                spec.name, spec.action, a.actions
            );
            failures += 1;
        }
        let finding = match (spec.cleared)(diag) {
            Ok(()) => "cleared".to_string(),
            Err(e) => {
                eprintln!("  {}: {e}", spec.name);
                failures += 1;
                "SURVIVES".into()
            }
        };
        let (fi_before, fi_after) = (faults_plus_inv(&stat), faults_plus_inv(&adapted));
        let (wb, wa) = (cross_host_bytes(&stat), cross_host_bytes(&adapted));
        total_before += fi_before;
        total_after += fi_after;
        // Migration leaves fault counts alone (they are placement
        // independent) but must cut the wire; the granularity actions
        // must cut faults+invalidations outright.
        if spec.action == "migrate" {
            if wa * 4 > wb * 3 {
                eprintln!(
                    "  {}: migration saved too little wire traffic: {wb} -> {wa} cross-host bytes",
                    spec.name
                );
                failures += 1;
            }
            if fi_after > fi_before + fi_before / 20 {
                eprintln!(
                    "  {}: migration regressed faults: {fi_before} -> {fi_after}",
                    spec.name
                );
                failures += 1;
            }
        } else if fi_after * 4 > fi_before * 3 {
            eprintln!(
                "  {}: {} saved too little: {fi_before} -> {fi_after} faults+invalidations",
                spec.name, spec.action
            );
            failures += 1;
        }
        rows.push(vec![
            spec.name.to_string(),
            spec.action.into(),
            applied.to_string(),
            fi_before.to_string(),
            fi_after.to_string(),
            wb.to_string(),
            wa.to_string(),
            finding,
        ]);
        if json_path.is_some() {
            json_out.push(format!(
                "{{\"kind\":\"planted\",\"name\":\"{}\",\"static\":{{\"faults_plus_inv\":{fi_before},\"cross_host_bytes\":{wb}}},\"adapted\":{{\"faults_plus_inv\":{fi_after},\"cross_host_bytes\":{wa}}},\"adapt\":{}}}",
                spec.name,
                a.to_json()
            ));
        }
    }
    print!("{}", render_table(&rows));
    if total_after * 4 > total_before * 3 {
        eprintln!(
            "planted workloads reduced faults+invalidations by < 25%: {total_before} -> {total_after}"
        );
        failures += 1;
    } else {
        println!(
            "planted total faults+invalidations: {total_before} -> {total_after} \
             (-{}%)",
            (total_before - total_after) * 100 / total_before.max(1)
        );
    }

    // The real applications, static vs adapted: the engine may or may not
    // find something to do, but it must never change a checksum or
    // surface a violation.
    let mut specs = app_specs(quick);
    if !scenario.eq_ignore_ascii_case("table2") && !scenario.eq_ignore_ascii_case("all") {
        specs.retain(|s| s.name.eq_ignore_ascii_case(scenario));
        if specs.is_empty() {
            eprintln!("unknown adapt scenario {scenario:?}");
            eprintln!(
                "usage: repro adapt [table2|sor|is|water|lu|tsp] [--quick] \
                 [--backend sim|host] [--json f]"
            );
            std::process::exit(2);
        }
    }
    let mut rows = vec![vec![
        "app".to_string(),
        "split/merge/migrate".into(),
        "deferred".into(),
        "faults+inv".into(),
        "adapted".into(),
        "x-host B".into(),
        "adapted".into(),
        "checksum".into(),
    ]];
    for spec in &specs {
        let stat = (spec.run)(ClusterConfig {
            diag: true,
            sched: SchedMode::deterministic(),
            ..app_cfg(4)
        });
        let adapted = (spec.run)(ClusterConfig {
            diag: true,
            sched: SchedMode::deterministic(),
            adapt: AdaptConfig::enabled(),
            ..app_cfg(4)
        });
        failures += run_is_clean(&stat.report, &format!("{} static", spec.name));
        failures += run_is_clean(&adapted.report, &format!("{} adapted", spec.name));
        let checksum = if close(stat.checksum, adapted.checksum, 1e-9) {
            "ok".to_string()
        } else {
            eprintln!(
                "  {}: CHECKSUM CHANGED under adaptation: {} vs {}",
                spec.name, stat.checksum, adapted.checksum
            );
            failures += 1;
            "MISMATCH".into()
        };
        let Some(a) = adapted.report.adapt.as_ref() else {
            eprintln!("  {}: adapted run produced no adapt report", spec.name);
            failures += 1;
            continue;
        };
        let (fi_before, fi_after) = (
            faults_plus_inv(&stat.report),
            faults_plus_inv(&adapted.report),
        );
        let (wb, wa) = (
            cross_host_bytes(&stat.report),
            cross_host_bytes(&adapted.report),
        );
        rows.push(vec![
            spec.name.to_string(),
            format!("{}/{}/{}", a.splits, a.merges, a.migrations),
            a.deferred.to_string(),
            fi_before.to_string(),
            fi_after.to_string(),
            wb.to_string(),
            wa.to_string(),
            checksum,
        ]);
        if json_path.is_some() {
            json_out.push(format!(
                "{{\"kind\":\"app\",\"name\":\"{}\",\"static\":{{\"faults_plus_inv\":{fi_before},\"cross_host_bytes\":{wb}}},\"adapted\":{{\"faults_plus_inv\":{fi_after},\"cross_host_bytes\":{wa}}},\"adapt\":{}}}",
                spec.name,
                a.to_json()
            ));
        }
    }
    print!("{}", render_table(&rows));
    if let Some(p) = json_path {
        let body = format!("[{}]\n", json_out.join(","));
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("failed to write {p}: {e}");
            std::process::exit(1);
        }
        println!("wrote adaptation report JSON to {p}");
    }
    if failures > 0 {
        eprintln!("adapt FAILED: {failures} check failure(s)");
        std::process::exit(1);
    }
    println!(
        "adapt passed: planted pathologies answered and cleared, {} app(s) \
         unchanged under the engine",
        specs.len()
    );
}

/// Shared-handle shape of the planted host-backend migration workload.
#[cfg(target_os = "linux")]
type RemoteHammerShared = (millipage::SharedVec<u32>, Vec<millipage::SharedVec<u32>>);

/// A hot minipage homed at the manager (host 0), written by host 1 on
/// even rounds and read by host 2 on odd rounds: under SW/MR every round
/// takes exactly one remote fault at the home, so the engine must move
/// the home to the dominant writer. Runs unchanged on both backends.
#[cfg(target_os = "linux")]
fn remote_hammer_setup(s: &mut millipage::SetupCtx) -> RemoteHammerShared {
    let hot = s.alloc_vec_init(&[0u32; 8]);
    let cold = (0..6).map(|_| s.alloc_vec_init(&[0u32])).collect();
    (hot, cold)
}

#[cfg(target_os = "linux")]
fn remote_hammer_worker<D: millipage::Dsm>(ctx: &mut D, sh: &RemoteHammerShared) {
    let (hot, cold) = sh;
    let me = ctx.host().index();
    let _ = ctx.read_range(&cold[me % cold.len()], 0..1);
    ctx.barrier();
    for round in 0..24u32 {
        if round % 2 == 0 && me == 1 {
            ctx.write_range(hot, 0, &[round; 8]);
        }
        if round % 2 == 1 && me == 2 {
            let _ = ctx.read_range(hot, 0..8);
        }
        ctx.barrier();
    }
}

/// `repro adapt --backend host`: the planted remote hammer and SOR with
/// the engine armed on real memory. The host backend only migrates
/// (granularity rewrites are sim-only on raw application memory), so the
/// sim mirror runs with split/merge disabled and the two action logs
/// must fingerprint identically — same actions, same barriers, same
/// targets — while SOR's checksum must survive the armed engine.
fn adapt_host(quick: bool) {
    #[cfg(not(target_os = "linux"))]
    {
        let _ = quick;
        host_unsupported();
    }
    #[cfg(target_os = "linux")]
    {
        let hosts = 4usize;
        header(&format!(
            "Adapt (host backend) — home migration on real memory, action parity vs sim ({hosts} hosts)"
        ));
        let mut failures = 0usize;
        let migrate_only = AdaptConfig {
            allow_split: false,
            allow_merge: false,
            ..AdaptConfig::enabled()
        };
        let host_cfg = millipage::HostRunConfig {
            hosts,
            views: 16,
            pages: 64,
            diag: true,
            adapt: AdaptConfig::enabled(), // the runner masks split/merge itself
        };
        let hammer = millipage::run_host(host_cfg, remote_hammer_setup, remote_hammer_worker)
            .unwrap_or_else(|e| {
                eprintln!("remote-hammer host run failed: {e}");
                std::process::exit(1);
            });
        if !hammer.errors.is_empty() {
            eprintln!("remote hammer: host errors: {:?}", hammer.errors);
            failures += 1;
        }
        let sim = run(
            ClusterConfig {
                hosts,
                views: 16,
                pages: 64,
                diag: true,
                sched: SchedMode::deterministic(),
                adapt: migrate_only.clone(),
                ..ClusterConfig::default()
            },
            remote_hammer_setup,
            remote_hammer_worker,
        );
        failures += run_is_clean(&sim, "remote hammer (sim)");
        match (hammer.adapt.as_ref(), sim.adapt.as_ref()) {
            (Some(h), Some(s)) => {
                if h.migrations < 1 {
                    eprintln!(
                        "remote hammer: host engine applied no migration: {:?}",
                        h.actions
                    );
                    failures += 1;
                }
                if h.fingerprint() != s.fingerprint() {
                    eprintln!(
                        "remote hammer: ACTION MISMATCH\n  host {:?}\n  sim  {:?}",
                        h.fingerprint(),
                        s.fingerprint()
                    );
                    failures += 1;
                } else {
                    println!(
                        "remote hammer: {} migration(s), host/sim action logs identical",
                        h.migrations
                    );
                }
            }
            _ => {
                eprintln!("remote hammer: a backend produced no adapt report");
                failures += 1;
            }
        }

        let sp = sor_cmp_params(quick);
        let h = sor::run_sor_host_adapt(hosts, sp, AdaptConfig::enabled()).unwrap_or_else(|e| {
            eprintln!("SOR host run failed: {e}");
            std::process::exit(1);
        });
        let s = sor::run_sor(
            ClusterConfig {
                hosts,
                views: 1,
                pages: 1,
                alloc_mode: AllocMode::FINE,
                diag: true,
                sched: SchedMode::deterministic(),
                adapt: migrate_only,
                ..ClusterConfig::default()
            },
            sp,
        );
        failures += run_is_clean(&s.report, "SOR (sim, adapted)");
        if !close(s.checksum, h.checksum, 1e-9) {
            eprintln!(
                "SOR: CHECKSUM MISMATCH under adaptation: sim {} vs host {}",
                s.checksum, h.checksum
            );
            failures += 1;
        }
        match (h.report.adapt.as_ref(), s.report.adapt.as_ref()) {
            (Some(ha), Some(sa)) => {
                if ha.fingerprint() != sa.fingerprint() {
                    eprintln!(
                        "SOR: ACTION MISMATCH\n  host {:?}\n  sim  {:?}",
                        ha.fingerprint(),
                        sa.fingerprint()
                    );
                    failures += 1;
                } else {
                    println!(
                        "SOR: checksum matches; host/sim action logs identical \
                         ({} migration(s))",
                        ha.migrations
                    );
                }
            }
            _ => {
                eprintln!("SOR: a backend produced no adapt report");
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("adapt FAILED: {failures} parity failure(s)");
            std::process::exit(1);
        }
        println!("host/sim adaptation actions and checksums match");
    }
}

// ----------------------------------------------------------------------
// Schedule exploration under the deterministic scheduler.
// ----------------------------------------------------------------------

/// Per-recorder ring capacity for explored runs: the race workload is
/// tiny, so a 32Ki ring keeps every schedule's trace complete.
const EXPLORE_RING_CAPACITY: usize = 1 << 15;

fn explore_cmd(
    schedules: usize,
    seed: u64,
    out_path: &str,
    inject: Option<&str>,
    replay_path: Option<&str>,
) {
    let mut cfg = race_config();
    match inject {
        None => {}
        Some("stale-reinstall") => cfg.bug_stale_reinstall = true,
        Some(other) => {
            eprintln!("unknown --inject {other:?} (known: stale-reinstall)");
            std::process::exit(2);
        }
    }

    if let Some(path) = replay_path {
        header(&format!("Explore — replay reproducer {path}"));
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(2);
        });
        let repro = MinimizedRepro::from_json(&body).unwrap_or_else(|| {
            eprintln!("{path} is not a schedule reproducer");
            std::process::exit(2);
        });
        println!(
            "schedule {} of seed {} ({}), {} choice(s)",
            repro.schedule_index,
            repro.seed,
            repro.policy,
            repro.choices.len()
        );
        let violations = replay_repro(&cfg, race_workload, &repro, EXPLORE_RING_CAPACITY);
        if violations.is_empty() {
            println!("replay is clean: the recorded schedule no longer violates");
            return;
        }
        eprintln!("replay reproduces {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }

    header(&format!(
        "Explore — {schedules} schedule(s), seed {seed}, race workload ({} hosts{})",
        cfg.hosts,
        if cfg.bug_stale_reinstall {
            ", stale-reinstall injected"
        } else {
            ""
        }
    ));
    let opts = ExploreOpts {
        schedules,
        seed,
        trace_capacity: EXPLORE_RING_CAPACITY,
        ..ExploreOpts::default()
    };
    let outcome = explore(&cfg, race_workload, &opts);
    match outcome.finding {
        None => {
            println!(
                "sweep clean: {} schedule(s) ran, audited, 0 violations",
                outcome.schedules_run
            );
        }
        Some(repro) => {
            eprintln!(
                "schedule {} (policy {}) violated; shrunk to {} choice(s) in {} replay(s):",
                repro.schedule_index,
                repro.policy,
                repro.choices.len(),
                repro.replays_used
            );
            for v in &repro.violations {
                eprintln!("  {v}");
            }
            if let Err(e) = std::fs::write(out_path, repro.to_json()) {
                eprintln!("failed to write {out_path}: {e}");
            } else {
                eprintln!(
                    "wrote reproducer to {out_path} (replay: repro explore --replay {out_path})"
                );
            }
            std::process::exit(1);
        }
    }
}

// ----------------------------------------------------------------------
// Fault injection: loss sweep under the reliable channel.
// ----------------------------------------------------------------------

/// Drop probabilities swept by `repro faults`. Duplicates run at half the
/// drop rate and reorders at twice it, so the 1% point exercises the
/// acceptance mix (1% drop + 0.5% dup + 2% reorder).
const LOSS_SWEEP_FULL: &[f64] = &[0.0, 0.001, 0.01, 0.05];
const LOSS_SWEEP_QUICK: &[f64] = &[0.0, 0.01];

fn faults_cmd(scenario: &str, quick: bool, seed: u64, out_path: &str) {
    header(&format!(
        "Faults — loss sweep under the reliable channel ({scenario}, 4 hosts, seed {seed})"
    ));
    let mut specs = app_specs(quick);
    if !scenario.eq_ignore_ascii_case("table2") && !scenario.eq_ignore_ascii_case("all") {
        specs.retain(|s| s.name.eq_ignore_ascii_case(scenario));
        if specs.is_empty() {
            eprintln!("unknown faults scenario {scenario:?}");
            eprintln!(
                "usage: repro faults [table2|sor|is|water|lu|tsp] [--quick] [--seed N] [--out f]"
            );
            std::process::exit(2);
        }
    }
    let losses = if quick {
        LOSS_SWEEP_QUICK
    } else {
        LOSS_SWEEP_FULL
    };
    let policies = [
        HomePolicyKind::Centralized,
        HomePolicyKind::Interleaved,
        HomePolicyKind::FirstTouch,
    ];
    let mut chrome = ChromeTrace::new();
    let mut chrome_runs = 0u32;
    let mut total_violations = 0usize;
    let mut total_expired = 0u64;
    let mut total_errors = 0usize;
    let mut rows = vec![vec![
        "app".to_string(),
        "policy".into(),
        "drop %".into(),
        "drops".into(),
        "retx".into(),
        "dup-sup".into(),
        "reorder".into(),
        "expired".into(),
        "fault-delay p95".into(),
        "errors".into(),
        "violations".into(),
    ]];
    for spec in &specs {
        for policy in policies {
            for &loss in losses {
                let tracer = Tracer::enabled(TRACE_RING_CAPACITY);
                let cfg = ClusterConfig {
                    tracer: tracer.clone(),
                    home_policy: policy,
                    faults: WireFaults::lossy(seed, loss, loss / 2.0, loss * 2.0),
                    ..app_cfg(4)
                };
                let r = (spec.run)(cfg);
                let log = tracer.drain();
                // SW/MR invariants plus the transport's exactly-once FIFO
                // check (the Table 2 apps run under SC).
                let violations = audit(&log.events, AuditMode::SwMr);
                for v in violations.iter().take(5) {
                    eprintln!("  {} {policy:?} {loss}: VIOLATION {v}", spec.name);
                }
                if violations.len() > 5 {
                    eprintln!("  ... and {} more", violations.len() - 5);
                }
                total_violations += violations.len();
                total_errors += r.report.protocol_errors.len();
                for e in r.report.protocol_errors.iter().take(5) {
                    eprintln!("  {} {policy:?} {loss}: protocol error: {e}", spec.name);
                }
                assert!(
                    r.report.coherence_violations.is_empty(),
                    "{} {policy:?} {loss}: {:?}",
                    spec.name,
                    r.report.coherence_violations
                );
                let nf = r.report.net_faults.as_ref();
                total_expired += nf.map_or(0, |n| n.expired);
                rows.push(vec![
                    spec.name.to_string(),
                    format!("{policy:?}"),
                    format!("{:.1}", loss * 100.0),
                    nf.map_or("-".into(), |n| n.drops.to_string()),
                    nf.map_or("-".into(), |n| n.retransmits.to_string()),
                    nf.map_or("-".into(), |n| n.dups_suppressed.to_string()),
                    nf.map_or("-".into(), |n| n.reorders.to_string()),
                    nf.map_or("-".into(), |n| n.expired.to_string()),
                    nf.and_then(|n| n.delay.quantile(0.95))
                        .map(us)
                        .unwrap_or_else(|| "-".into()),
                    r.report.protocol_errors.len().to_string(),
                    violations.len().to_string(),
                ]);
                // Export the acceptance-mix runs (1% loss, Centralized)
                // so the retransmit/timeout events are inspectable in
                // Perfetto next to the protocol events they delayed.
                if policy == HomePolicyKind::Centralized && loss == 0.01 {
                    chrome.add_run(&format!("{} @1%", spec.name), chrome_runs * 64, &log.events);
                    chrome_runs += 1;
                }
            }
        }
    }
    print!("{}", render_table(&rows));
    if let Err(e) = std::fs::write(out_path, chrome.finish()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote Chrome/Perfetto trace of the 1% Centralized runs to {out_path}");
    let failed = total_violations > 0 || total_expired > 0 || total_errors > 0;
    if failed {
        eprintln!(
            "faults sweep FAILED: {total_violations} audit violation(s), \
             {total_expired} unacked retransmit(s), {total_errors} protocol error(s)"
        );
        std::process::exit(1);
    }
    println!(
        "faults sweep passed: 0 violations, 0 unacked retransmits, 0 protocol \
         errors across {} run(s)",
        (rows.len() - 1)
    );
}

// ----------------------------------------------------------------------
// Wall-clock benchmarks: `repro bench`.
// ----------------------------------------------------------------------

/// Runs the wall-clock benchmark suite (diff micro-benchmarks, per-access
/// fast path, end-to-end Table 2 apps at 4 hosts, sim-throughput rows at
/// 64 hosts sequential vs parallel). `--json` writes the results; with
/// `--baseline FILE` the output is a before/after comparison (the
/// committed `BENCH_5.json`/`BENCH_10.json` shape). `--check [FILE]`
/// exits nonzero if any benchmark regressed > 20% vs. the baseline, or if
/// the run produced benchmark names the baseline does not gate
/// (`--allow-new` downgrades the latter to a loud warning).
fn bench_cmd(
    quick: bool,
    json: Option<&str>,
    baseline: Option<&str>,
    check: Option<&str>,
    allow_new: bool,
) {
    header("Wall-clock benchmarks (simulator hot paths)");
    let mut results = wall::diff_results(quick);
    results.extend(wall::fastpath_results(quick));
    let reps = if quick { 1 } else { 2 };
    for spec in app_specs(quick) {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = std::time::Instant::now();
            let r = (spec.run)(app_cfg(4));
            let el = t.elapsed().as_nanos() as f64;
            assert!(
                r.report.coherence_violations.is_empty(),
                "{}: {:?}",
                spec.name,
                r.report.coherence_violations
            );
            best = best.min(el);
        }
        results.push(wall::BenchResult {
            name: format!("e2e/{}@4hosts", spec.name),
            ns_per_op: best,
            bytes_per_op: 0,
        });
    }
    results.extend(simthru::sim_throughput_results(quick));
    let mut rows = vec![vec!["benchmark".to_string(), "ns/op".into(), "MB/s".into()]];
    for r in &results {
        rows.push(vec![
            r.name.clone(),
            if r.ns_per_op >= 1e6 {
                format!("{:.0}", r.ns_per_op)
            } else {
                format!("{:.1}", r.ns_per_op)
            },
            if r.bytes_per_op > 0 {
                format!("{:.0}", r.mb_per_sec())
            } else {
                "-".into()
            },
        ]);
    }
    print!("{}", render_table(&rows));
    if let Some(path) = json {
        let body = match baseline {
            Some(bpath) => {
                let text = std::fs::read_to_string(bpath)
                    .unwrap_or_else(|e| panic!("failed to read baseline {bpath}: {e}"));
                let before: Vec<wall::BenchResult> = wall::parse_baseline(&text)
                    .into_iter()
                    .map(|(name, ns)| {
                        let bytes = results
                            .iter()
                            .find(|r| r.name == name)
                            .map_or(0, |r| r.bytes_per_op);
                        wall::BenchResult {
                            name,
                            ns_per_op: ns,
                            bytes_per_op: bytes,
                        }
                    })
                    .collect();
                wall::to_compare_json(&before, &results, quick)
            }
            None => wall::to_json(&results, quick),
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if let Some(cpath) = check {
        let text = std::fs::read_to_string(cpath)
            .unwrap_or_else(|e| panic!("failed to read --check baseline {cpath}: {e}"));
        let base = wall::parse_baseline(&text);
        if base.is_empty() {
            eprintln!("--check: no results found in {cpath}");
            std::process::exit(1);
        }
        let bad = wall::regressions(&results, &base, 0.2);
        for (name, base_ns, now_ns) in &bad {
            eprintln!(
                "REGRESSION {name}: {base_ns:.1} ns/op -> {now_ns:.1} ns/op \
                 ({:+.0}%)",
                (now_ns / base_ns - 1.0) * 100.0
            );
        }
        // A name the baseline has never seen is ungated: without this,
        // a new benchmark (say the sim/ rows) rides along unchecked until
        // someone remembers to re-record.
        let missing = wall::missing_from_baseline(&results, &base);
        for name in &missing {
            eprintln!("NEW BENCHMARK not in baseline {cpath}: {name}");
        }
        if !missing.is_empty() && allow_new {
            eprintln!(
                "--allow-new: {} ungated benchmark(s); re-record {cpath} to gate them",
                missing.len()
            );
        }
        let fail_new = !missing.is_empty() && !allow_new;
        if bad.is_empty() && !fail_new {
            println!(
                "check passed: no benchmark regressed > 20% vs {cpath} \
                 ({} compared)",
                results
                    .iter()
                    .filter(|r| base.iter().any(|(n, _)| *n == r.name))
                    .count()
            );
        } else {
            if !bad.is_empty() {
                eprintln!(
                    "check FAILED: {} benchmark(s) regressed > 20% vs {cpath}",
                    bad.len()
                );
            }
            if fail_new {
                eprintln!(
                    "check FAILED: {} benchmark name(s) absent from {cpath} \
                     (re-record the baseline, or pass --allow-new to warn only)",
                    missing.len()
                );
            }
            std::process::exit(1);
        }
    }
}
