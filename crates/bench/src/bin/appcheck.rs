//! Scratch scale-check binary: paper-scale single-app speedup probes.
use millipage::ClusterConfig;
use millipage_apps::{tsp, water};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tsp".into());
    match which.as_str() {
        "tsp" => {
            let p = tsp::TspParams::paper();
            let mut t1 = 0;
            for hosts in [1usize, 4, 8] {
                let t0 = std::time::Instant::now();
                let r = tsp::run_tsp(
                    ClusterConfig {
                        hosts,
                        ..Default::default()
                    },
                    p,
                );
                if hosts == 1 {
                    t1 = r.timed_ns;
                }
                println!(
                    "tsp hosts={hosts}: timed={:.1}ms speedup={:.2} locks={} pushes={} opt={} real={:?}",
                    r.timed_ns as f64 / 1e6, r.speedup(t1),
                    r.report.lock_acquires, r.report.pushes, r.checksum, t0.elapsed()
                );
            }
        }
        "water" => {
            let p = water::WaterParams::paper();
            let mut t1 = 0;
            for hosts in [1usize, 4, 8] {
                let r = water::run_water(
                    ClusterConfig {
                        hosts,
                        ..Default::default()
                    },
                    p,
                );
                if hosts == 1 {
                    t1 = r.timed_ns;
                }
                println!(
                    "water hosts={hosts}: timed={:.1}ms speedup={:.2} faults={} competing={} locks={}",
                    r.timed_ns as f64 / 1e6, r.speedup(t1),
                    r.report.read_faults + r.report.write_faults,
                    r.report.competing_requests, r.report.lock_acquires
                );
            }
        }
        _ => eprintln!("tsp|water"),
    }
}
