//! Real-time throughput of the Figure 5 cache/TLB model.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_cache::fig5::{point, Fig5Config};
use sim_cache::{Cache, CacheConfig, Insertion, Tlb, TlbConfig};
use std::hint::black_box;

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("l2_access", |b| {
        let mut l2 = Cache::new(CacheConfig::pentium_ii_l2());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(4096 + 32);
            black_box(l2.access(a % (1 << 24), Insertion::Mru))
        })
    });
}

fn bench_tlb_access(c: &mut Criterion) {
    c.bench_function("tlb_access", |b| {
        let mut tlb = Tlb::new(TlbConfig::pentium_ii_data());
        let mut v = 0u64;
        b.iter(|| {
            v += 7;
            black_box(tlb.access(v % 4096))
        })
    });
}

fn bench_fig5_point(c: &mut Criterion) {
    let cfg = Fig5Config::default();
    c.bench_function("fig5_point_1MB_64views", |b| {
        b.iter(|| black_box(point(&cfg, 1 << 20, 64).slowdown))
    });
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_tlb_access,
    bench_fig5_point
);
criterion_main!(benches);
