//! Real-time cost of whole protocol interactions (one fault round trip,
//! one barrier) — the simulator's own efficiency, relevant for large runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use millipage::{run, AllocMode, ClusterConfig, CostModel, HostId};
use std::hint::black_box;

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        seed: 3,
        ..ClusterConfig::default()
    }
}

fn bench_read_fault_roundtrip(c: &mut Criterion) {
    c.bench_function("cluster_read_fault_roundtrip", |b| {
        b.iter_batched(
            || (),
            |()| {
                let r = run(
                    cfg(2),
                    |s| s.alloc_vec_init::<u32>(&[1, 2, 3, 4]),
                    |ctx, sv| {
                        if ctx.host() == HostId(1) {
                            black_box(ctx.get(sv, 0));
                        }
                    },
                );
                black_box(r.virtual_time)
            },
            BatchSize::PerIteration,
        )
    });
}

fn bench_barrier_storm(c: &mut Criterion) {
    c.bench_function("cluster_100_barriers_4_hosts", |b| {
        b.iter_batched(
            || (),
            |()| {
                let r = run(
                    cfg(4),
                    |_| (),
                    |ctx, ()| {
                        for _ in 0..100 {
                            ctx.barrier();
                        }
                    },
                );
                black_box(r.barriers)
            },
            BatchSize::PerIteration,
        )
    });
}

criterion_group!(benches, bench_read_fault_roundtrip, bench_barrier_storm);
criterion_main!(benches);
