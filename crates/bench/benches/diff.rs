//! Real-time cost of run-length diffs (the §4.2 comparison point: the
//! machinery Millipage's thin protocol avoids needing).

use criterion::{criterion_group, criterion_main, Criterion};
use millipage::diff::{Diff, Twin};
use std::hint::black_box;

fn page_with_changes(len: usize, changes: usize) -> (Vec<u8>, Vec<u8>) {
    let twin: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    let mut cur = twin.clone();
    for k in 0..changes {
        let at = (k * 97) % len;
        cur[at] = cur[at].wrapping_add(1);
    }
    (twin, cur)
}

fn bench_diff_create(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff_create");
    for len in [512usize, 1024, 4096] {
        let (twin, cur) = page_with_changes(len, len / 64);
        g.bench_function(format!("{len}B"), |b| {
            b.iter(|| black_box(Diff::compute(&twin, &cur).runs()))
        });
    }
    g.finish();
}

fn bench_diff_apply(c: &mut Criterion) {
    let (twin, cur) = page_with_changes(4096, 64);
    let d = Diff::compute(&twin, &cur);
    c.bench_function("diff_apply_4KB", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut t| {
                d.apply(&mut t);
                black_box(t[0])
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_twin_capture(c: &mut Criterion) {
    let page = vec![7u8; 4096];
    c.bench_function("twin_capture_4KB", |b| {
        b.iter(|| black_box(Twin::capture(&page).len()))
    });
}

criterion_group!(
    benches,
    bench_diff_create,
    bench_diff_apply,
    bench_twin_capture
);
criterion_main!(benches);
