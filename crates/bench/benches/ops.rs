//! Real-time microbenchmarks of the primitives backing Table 1: MPT
//! lookup, protection changes, allocation, message passing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use millipage::CostModel;
use multiview::{AllocMode, Allocator};
use sim_core::HostId;
use sim_mem::{Access, AddressSpace, Geometry, Prot};
use sim_net::Network;
use std::hint::black_box;

fn bench_mpt_lookup(c: &mut Criterion) {
    let geo = Geometry::new(2048, 32);
    let mut alloc = Allocator::new(geo.clone(), AllocMode::FINE);
    let addrs: Vec<_> = (0..4096).map(|_| alloc.alloc(148).unwrap()).collect();
    let mpt = alloc.mpt();
    c.bench_function("mpt_translate", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = addrs[i % addrs.len()];
            i += 1;
            black_box(mpt.translate(&geo, a).unwrap().len)
        })
    });
}

fn bench_protection(c: &mut Criterion) {
    let geo = Geometry::new(512, 8);
    let space = AddressSpace::new(geo.clone());
    c.bench_function("set_protection", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let vp = i % 512;
            i += 1;
            space
                .set_prot(
                    vp,
                    if i.is_multiple_of(2) {
                        Prot::ReadOnly
                    } else {
                        Prot::ReadWrite
                    },
                )
                .unwrap();
        })
    });
    c.bench_function("check_access", |b| {
        let a = geo.addr_of(0, 3, 64);
        space
            .set_prot(geo.vpage_index(0, 3), Prot::ReadOnly)
            .unwrap();
        b.iter(|| black_box(space.check(a, 128, Access::Read).is_ok()))
    });
}

fn bench_alloc(c: &mut Criterion) {
    c.bench_function("alloc_fine_148B", |b| {
        b.iter_batched(
            || Allocator::new(Geometry::new(4096, 32), AllocMode::FINE),
            |mut a| {
                for _ in 0..1000 {
                    black_box(a.alloc(148).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_messaging(c: &mut Criterion) {
    c.bench_function("net_send_recv_header", |b| {
        let (_net, eps) = Network::<u64>::new(2, CostModel::default());
        let mut t = 0u64;
        b.iter(|| {
            eps[0].send(HostId(1), 42, 0, t);
            t += 1;
            black_box(eps[1].recv().unwrap().arrival_vt)
        })
    });
}

criterion_group!(
    benches,
    bench_mpt_lookup,
    bench_protection,
    bench_alloc,
    bench_messaging
);
criterion_main!(benches);
