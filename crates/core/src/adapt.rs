//! Online adaptation: act on the sharing diagnostics during a run.
//!
//! The diagnostics plane (`core::diag`) ranks what is wrong — false
//! sharing, a ping-ponging transfer unit, a hot home. This module closes
//! the loop at run time with the three remedies MultiView makes cheap
//! (§2.2: minipages are an MPT artifact, so granularity is a table
//! rewrite, not a data move):
//!
//! * **Split** a falsely shared minipage into per-writer-extent
//!   minipages. Each child is the same physical bytes viewed through a
//!   fresh view, so no data moves; only protections and the MPT change.
//! * **Merge** ping-ponging physically adjacent minipages with the same
//!   writer set back into one transfer unit, halving fault round-trips
//!   when the halves are always accessed together.
//! * **Migrate** a minipage's home to its dominant writer, turning
//!   remote write faults and invalidation round-trips into local ones.
//!
//! Actions run at *barrier quiesce points*: every application thread is
//! parked in `BarrierEnter`, no service window is open and no
//! invalidation round is in flight, so the owning shard may rewrite the
//! MPT, the directory and page protections without racing the protocol.
//! The [`AdaptEngine`] plans from a fresh diagnostics snapshot; the
//! manager applies locally homed actions directly and ships remotely
//! homed ones as `AdaptApply` messages, holding the barrier release
//! until every `AdaptAck` arrives.
//!
//! Anti-oscillation: a merge result is never split again, a minipage is
//! migrated at most once, and the total number of planned actions is
//! capped by [`AdaptConfig::max_actions`].

use crate::diag::{DiagReport, MinipageDiag};
use multiview::{Minipage, MinipageId};
use serde::Serialize;
use sim_core::HostId;
use std::collections::{HashMap, HashSet};

/// Configuration of the online adaptation engine.
#[derive(Clone, Debug)]
pub struct AdaptConfig {
    /// Master switch. Disabled by default: the protocol is byte-for-byte
    /// the static one unless a run opts in.
    pub enabled: bool,
    /// First barrier (1-based) at which the planner runs; earlier
    /// barriers only accumulate statistics.
    pub start_barrier: u64,
    /// Allow splitting falsely shared minipages (sim backend, SW/MR).
    pub allow_split: bool,
    /// Allow merging ping-ponging adjacent minipages (sim backend, SW/MR).
    pub allow_merge: bool,
    /// Allow home migration (both backends, both consistencies).
    pub allow_migrate: bool,
    /// Upper bound on planned actions over the whole run.
    pub max_actions: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            start_barrier: 2,
            allow_split: true,
            allow_merge: true,
            allow_migrate: true,
            max_actions: 16,
        }
    }
}

impl AdaptConfig {
    /// An enabled configuration with the default knobs.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One planned adaptation action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdaptAction {
    /// Split `mp` at ascending interior byte offsets `cuts` into
    /// `cuts.len() + 1` children.
    Split {
        /// The falsely shared minipage.
        mp: MinipageId,
        /// Interior cut offsets, strictly ascending, `0 < cut < len`.
        cuts: Vec<u32>,
    },
    /// Merge physically contiguous minipages (any order; the applier
    /// sorts by physical address) into one.
    Merge {
        /// The sibling group.
        group: Vec<MinipageId>,
    },
    /// Move `mp`'s home (directory entry + master copy) to `to`.
    Migrate {
        /// The minipage to re-home.
        mp: MinipageId,
        /// The dominant writer it moves to.
        to: HostId,
    },
}

impl AdaptAction {
    /// The minipage whose home shard must apply this action.
    pub fn target(&self) -> MinipageId {
        match self {
            AdaptAction::Split { mp, .. } | AdaptAction::Migrate { mp, .. } => *mp,
            AdaptAction::Merge { group } => group[0],
        }
    }

    /// Short action name for reports and traces.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AdaptAction::Split { .. } => "split",
            AdaptAction::Merge { .. } => "merge",
            AdaptAction::Migrate { .. } => "migrate",
        }
    }

    /// Wire encoding for `AdaptApply` (little-endian, self-delimiting).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            AdaptAction::Split { mp, cuts } => {
                out.push(1);
                out.extend_from_slice(&mp.0.to_le_bytes());
                out.extend_from_slice(&(cuts.len() as u16).to_le_bytes());
                for c in cuts {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            AdaptAction::Merge { group } => {
                out.push(2);
                out.extend_from_slice(&(group.len() as u16).to_le_bytes());
                for id in group {
                    out.extend_from_slice(&id.0.to_le_bytes());
                }
            }
            AdaptAction::Migrate { mp, to } => {
                out.push(3);
                out.extend_from_slice(&mp.0.to_le_bytes());
                out.extend_from_slice(&to.0.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an [`encode`](Self::encode)d action; `None` on any
    /// malformed input.
    pub fn decode(b: &[u8]) -> Option<AdaptAction> {
        let u16_at = |at: usize| Some(u16::from_le_bytes(b.get(at..at + 2)?.try_into().ok()?));
        let u32_at = |at: usize| Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?));
        match *b.first()? {
            1 => {
                let mp = MinipageId(u32_at(1)?);
                let n = u16_at(5)? as usize;
                let mut cuts = Vec::with_capacity(n);
                for k in 0..n {
                    cuts.push(u32_at(7 + 4 * k)?);
                }
                (b.len() == 7 + 4 * n).then_some(AdaptAction::Split { mp, cuts })
            }
            2 => {
                let n = u16_at(1)? as usize;
                let mut group = Vec::with_capacity(n);
                for k in 0..n {
                    group.push(MinipageId(u32_at(3 + 4 * k)?));
                }
                (b.len() == 3 + 4 * n && n >= 2).then_some(AdaptAction::Merge { group })
            }
            3 => {
                let mp = MinipageId(u32_at(1)?);
                let to = HostId(u16_at(5)?);
                (b.len() == 7).then_some(AdaptAction::Migrate { mp, to })
            }
            _ => None,
        }
    }
}

/// One applied action, as recorded in the run report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct AdaptEvent {
    /// The barrier (1-based) at whose quiesce point the action applied.
    pub barrier: u64,
    /// `"split"`, `"merge"` or `"migrate"`.
    pub kind: String,
    /// The acted-on minipage (split parent, first merge sibling,
    /// migrated minipage).
    pub mp: u32,
    /// Deterministic human-readable detail (cut offsets, sibling ids,
    /// destination host).
    pub detail: String,
}

/// What the adaptation engine did over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AdaptReport {
    /// Applied actions in application order.
    pub actions: Vec<AdaptEvent>,
    /// Splits applied.
    pub splits: u64,
    /// Merges applied.
    pub merges: u64,
    /// Migrations applied.
    pub migrations: u64,
    /// Actions planned but skipped (busy directory entry, exhausted
    /// views, stale target).
    pub deferred: u64,
}

impl AdaptReport {
    /// Deterministic one-line fingerprint of the applied actions, for
    /// reproducibility checks across runs and backends.
    pub fn fingerprint(&self) -> String {
        let parts: Vec<String> = self
            .actions
            .iter()
            .map(|a| format!("b{}:{}:mp{}:{}", a.barrier, a.kind, a.mp, a.detail))
            .collect();
        format!("{}|deferred={}", parts.join(";"), self.deferred)
    }

    /// Folds another shard's report into this one (actions sorted by
    /// barrier, then kind, then minipage, for a deterministic merge).
    pub fn absorb(&mut self, other: AdaptReport) {
        self.actions.extend(other.actions);
        self.actions
            .sort_by(|a, b| (a.barrier, &a.kind, a.mp).cmp(&(b.barrier, &b.kind, b.mp)));
        self.splits += other.splits;
        self.merges += other.merges;
        self.migrations += other.migrations;
        self.deferred += other.deferred;
    }

    /// True if any action applied or was deferred.
    pub fn any_activity(&self) -> bool {
        !self.actions.is_empty() || self.deferred > 0
    }

    /// The report as a JSON fragment (embedded in the run report).
    pub fn to_json(&self) -> String {
        let actions: Vec<String> = self
            .actions
            .iter()
            .map(|a| {
                format!(
                    "{{\"barrier\":{},\"kind\":\"{}\",\"mp\":{},\"detail\":\"{}\"}}",
                    a.barrier,
                    a.kind,
                    a.mp,
                    sim_core::trace::esc(&a.detail)
                )
            })
            .collect();
        format!(
            "{{\"actions\":[{}],\"splits\":{},\"merges\":{},\"migrations\":{},\"deferred\":{}}}",
            actions.join(","),
            self.splits,
            self.merges,
            self.migrations,
            self.deferred
        )
    }
}

/// Hosts that wrote a minipage, per its diagnostics lanes.
fn writer_set(d: &MinipageDiag) -> Vec<u16> {
    d.per_host
        .iter()
        .filter(|l| l.write_faults > 0 || !l.write_extents.is_empty())
        .map(|l| l.host)
        .collect()
}

/// Planner + applied-action bookkeeping. One engine lives in every
/// manager shard; only the shard receiving barriers (the manager host)
/// ever plans, but every shard records the actions it applies.
pub(crate) struct AdaptEngine {
    cfg: AdaptConfig,
    /// Barriers completed at this shard (1-based after `note_barrier`).
    barriers: u64,
    /// Actions planned so far (counts against `max_actions`).
    planned: usize,
    /// Minipages never to split again (merge results, past split
    /// parents) — the anti-oscillation set.
    never_split: HashSet<u32>,
    /// Minipages already migrated once.
    migrated: HashSet<u32>,
    /// Rendezvous event ids for remote `AdaptApply` round-trips; high
    /// bit keeps them disjoint from application thread events.
    next_event: u64,
    report: AdaptReport,
}

impl AdaptEngine {
    pub(crate) fn new(cfg: AdaptConfig) -> Self {
        Self {
            cfg,
            barriers: 0,
            planned: 0,
            never_split: HashSet::new(),
            migrated: HashSet::new(),
            next_event: 1 << 62,
            report: AdaptReport::default(),
        }
    }

    /// Counts a completed barrier; returns its 1-based index.
    pub(crate) fn note_barrier(&mut self) -> u64 {
        self.barriers += 1;
        self.barriers
    }

    /// Whether the planner should run at this barrier.
    pub(crate) fn should_act(&self, barrier: u64) -> bool {
        self.cfg.enabled && barrier >= self.cfg.start_barrier && self.planned < self.cfg.max_actions
    }

    /// A fresh rendezvous event id for a remote apply.
    pub(crate) fn next_event(&mut self) -> u64 {
        self.next_event += 1;
        self.next_event
    }

    /// Marks a minipage as never-to-split (merge results).
    pub(crate) fn forbid_split(&mut self, mp: u32) {
        self.never_split.insert(mp);
    }

    pub(crate) fn record_deferred(&mut self) {
        self.report.deferred += 1;
    }

    pub(crate) fn record_split(&mut self, barrier: u64, mp: u32, cuts: &[u32]) {
        self.report.splits += 1;
        let cuts: Vec<String> = cuts.iter().map(|c| c.to_string()).collect();
        self.report.actions.push(AdaptEvent {
            barrier,
            kind: "split".into(),
            mp,
            detail: format!("cuts=[{}]", cuts.join(",")),
        });
    }

    pub(crate) fn record_merge(&mut self, barrier: u64, group: &[MinipageId], merged: u32) {
        self.report.merges += 1;
        let ids: Vec<String> = group.iter().map(|id| id.0.to_string()).collect();
        self.report.actions.push(AdaptEvent {
            barrier,
            kind: "merge".into(),
            mp: group[0].0,
            detail: format!("group=[{}]->mp{}", ids.join(","), merged),
        });
    }

    pub(crate) fn record_migrate(&mut self, barrier: u64, mp: u32, to: u16) {
        self.report.migrations += 1;
        self.report.actions.push(AdaptEvent {
            barrier,
            kind: "migrate".into(),
            mp,
            detail: format!("to=h{to}"),
        });
    }

    pub(crate) fn report(&self) -> &AdaptReport {
        &self.report
    }

    /// Plans actions from a diagnostics snapshot. Pure with respect to
    /// protocol state: the caller applies (or ships) what it gets back.
    /// Consumes planning budget; each returned action counts against
    /// `max_actions` whether or not it later applies.
    pub(crate) fn plan(
        &mut self,
        report: &DiagReport,
        active: &[Minipage],
        page_size: usize,
    ) -> Vec<AdaptAction> {
        let by_id: HashMap<u32, &Minipage> = active.iter().map(|m| (m.id.0, m)).collect();
        let diag_of = |mp: u32| report.minipages.iter().find(|d| d.mp == mp);
        let mut taken: HashSet<u32> = HashSet::new();
        let mut out = Vec::new();
        let mut budget = self.cfg.max_actions.saturating_sub(self.planned);

        // Splits: a false-sharing finding whose writers have pairwise
        // disjoint write hulls becomes one child per writer, cut at each
        // later writer's hull start.
        if self.cfg.allow_split {
            for f in &report.false_sharing {
                if budget == 0 {
                    break;
                }
                if self.never_split.contains(&f.mp)
                    || taken.contains(&f.mp)
                    || !by_id.contains_key(&f.mp)
                {
                    continue;
                }
                let Some(d) = diag_of(f.mp) else { continue };
                let mut hulls: Vec<(u64, u64)> =
                    d.per_host.iter().filter_map(|l| l.write_hull()).collect();
                hulls.sort_unstable();
                if hulls.len() < 2 || hulls.windows(2).any(|w| w[0].1 > w[1].0) {
                    continue; // Overlapping writers: a split cannot help.
                }
                let cuts: Vec<u32> = hulls[1..]
                    .iter()
                    .map(|h| h.0 as u32)
                    .filter(|&c| c > 0 && (c as usize) < d.len)
                    .collect();
                if cuts.is_empty() {
                    continue;
                }
                taken.insert(f.mp);
                self.never_split.insert(f.mp);
                budget -= 1;
                out.push(AdaptAction::Split {
                    mp: MinipageId(f.mp),
                    cuts,
                });
            }
        }

        // Merges: chains of physically adjacent ping-ponging minipages
        // with the same home and the same writer set collapse into one.
        if self.cfg.allow_merge {
            let mut cands: Vec<&Minipage> = report
                .ping_pong
                .iter()
                .filter_map(|f| by_id.get(&f.mp).copied())
                .filter(|m| !taken.contains(&m.id.0) && !self.never_split.contains(&m.id.0))
                .collect();
            cands.sort_by_key(|m| m.phys_range(page_size).start);
            cands.dedup_by_key(|m| m.id);
            let mergeable = |a: &Minipage, b: &Minipage| {
                let (da, db) = match (diag_of(a.id.0), diag_of(b.id.0)) {
                    (Some(da), Some(db)) => (da, db),
                    _ => return false,
                };
                a.phys_range(page_size).end == b.phys_range(page_size).start
                    && da.home == db.home
                    && writer_set(da) == writer_set(db)
            };
            let mut i = 0;
            while i < cands.len() && budget > 0 {
                let mut j = i + 1;
                while j < cands.len() && mergeable(cands[j - 1], cands[j]) {
                    j += 1;
                }
                if j - i >= 2 {
                    let group: Vec<MinipageId> = cands[i..j].iter().map(|m| m.id).collect();
                    for id in &group {
                        taken.insert(id.0);
                    }
                    budget -= 1;
                    out.push(AdaptAction::Merge { group });
                }
                i = j.max(i + 1);
            }
        }

        // Migrations: every minipage homed at a hot host whose writes
        // come (in the majority) from one other host moves there.
        if self.cfg.allow_migrate {
            for f in &report.hot_home {
                let hot = f.host;
                for d in &report.minipages {
                    if budget == 0 {
                        break;
                    }
                    if d.home != hot
                        || taken.contains(&d.mp)
                        || self.migrated.contains(&d.mp)
                        || !by_id.contains_key(&d.mp)
                    {
                        continue;
                    }
                    let total: u64 = d.per_host.iter().map(|l| l.write_faults).sum();
                    let Some(top) = d.per_host.iter().max_by_key(|l| l.write_faults) else {
                        continue;
                    };
                    // A strict majority writer, and not already the home.
                    if top.write_faults == 0 || top.host == hot || top.write_faults * 2 < total {
                        continue;
                    }
                    taken.insert(d.mp);
                    self.migrated.insert(d.mp);
                    budget -= 1;
                    out.push(AdaptAction::Migrate {
                        mp: MinipageId(d.mp),
                        to: HostId(top.host),
                    });
                }
            }
        }

        self.planned += out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Finding, HostLane};
    use sim_mem::Geometry;

    fn lane(host: u16, rf: u64, wf: u64, extents: &[(u64, u64)]) -> HostLane {
        HostLane {
            host,
            read_faults: rf,
            write_faults: wf,
            inv_recv: 0,
            write_extents: extents.to_vec(),
        }
    }

    fn mp_diag(mp: u32, len: usize, home: u16, lanes: Vec<HostLane>) -> MinipageDiag {
        MinipageDiag {
            mp,
            len,
            home,
            first_vpage: 0,
            vpages: 1,
            inv_sent: 0,
            diff_bytes: 0,
            alternations: 0,
            last_writer: None,
            per_host: lanes,
        }
    }

    fn finding(detector: &'static str, mp: u32, host: u16) -> Finding {
        Finding {
            detector,
            mp,
            host,
            score: 10,
            evidence: String::new(),
        }
    }

    fn desc(id: u32, first_page: usize, offset: usize, len: usize) -> Minipage {
        let geo = Geometry::new(8, 4);
        Minipage {
            id: MinipageId(id),
            base: geo.addr_of(0, first_page, offset),
            len,
            view: 0,
            first_page,
            offset,
        }
    }

    fn empty_report() -> DiagReport {
        DiagReport {
            minipages: Vec::new(),
            ping_pong: Vec::new(),
            false_sharing: Vec::new(),
            hot_home: Vec::new(),
            links: Vec::new(),
            overflow: 0,
        }
    }

    #[test]
    fn actions_encode_and_decode() {
        let actions = [
            AdaptAction::Split {
                mp: MinipageId(7),
                cuts: vec![16, 48],
            },
            AdaptAction::Merge {
                group: vec![MinipageId(2), MinipageId(3)],
            },
            AdaptAction::Migrate {
                mp: MinipageId(9),
                to: HostId(3),
            },
        ];
        for a in actions {
            assert_eq!(AdaptAction::decode(&a.encode()), Some(a));
        }
        assert_eq!(AdaptAction::decode(&[]), None);
        assert_eq!(AdaptAction::decode(&[9, 0, 0]), None);
        // A merge of fewer than two siblings is malformed.
        let short = AdaptAction::Merge {
            group: vec![MinipageId(1)],
        };
        assert_eq!(AdaptAction::decode(&short.encode()), None);
    }

    #[test]
    fn disjoint_writer_hulls_split_at_hull_starts() {
        let mut report = empty_report();
        report.minipages = vec![mp_diag(
            0,
            64,
            0,
            vec![lane(0, 0, 5, &[(0, 16)]), lane(1, 0, 5, &[(32, 64)])],
        )];
        report.false_sharing = vec![finding("false-sharing", 0, 1)];
        let active = [desc(0, 0, 0, 64)];
        let mut eng = AdaptEngine::new(AdaptConfig::enabled());
        let plan = eng.plan(&report, &active, 4096);
        assert_eq!(
            plan,
            vec![AdaptAction::Split {
                mp: MinipageId(0),
                cuts: vec![32],
            }]
        );
        // The parent enters the never-split set: planning again from the
        // same (stale) report is a no-op.
        assert!(eng.plan(&report, &active, 4096).is_empty());
    }

    #[test]
    fn overlapping_writer_hulls_do_not_split() {
        let mut report = empty_report();
        report.minipages = vec![mp_diag(
            0,
            64,
            0,
            vec![lane(0, 0, 5, &[(0, 40)]), lane(1, 0, 5, &[(32, 64)])],
        )];
        report.false_sharing = vec![finding("false-sharing", 0, 1)];
        let active = [desc(0, 0, 0, 64)];
        let mut eng = AdaptEngine::new(AdaptConfig::enabled());
        assert!(eng.plan(&report, &active, 4096).is_empty());
    }

    #[test]
    fn adjacent_ping_pong_pair_merges_distant_pair_does_not() {
        let lanes = || vec![lane(0, 2, 8, &[(0, 8)]), lane(1, 2, 8, &[(0, 8)])];
        let mut report = empty_report();
        report.minipages = vec![
            mp_diag(0, 32, 0, lanes()),
            mp_diag(1, 32, 0, lanes()),
            mp_diag(2, 32, 0, lanes()),
        ];
        report.ping_pong = vec![
            finding("ping-pong", 0, 1),
            finding("ping-pong", 1, 1),
            finding("ping-pong", 2, 1),
        ];
        // 0 and 1 are physically adjacent; 2 sits one page away.
        let active = [desc(0, 0, 0, 32), desc(1, 0, 32, 32), desc(2, 1, 0, 32)];
        let mut eng = AdaptEngine::new(AdaptConfig::enabled());
        let plan = eng.plan(&report, &active, 4096);
        assert_eq!(
            plan,
            vec![AdaptAction::Merge {
                group: vec![MinipageId(0), MinipageId(1)],
            }]
        );
    }

    #[test]
    fn hot_home_migrates_majority_written_minipages_once() {
        let mut report = empty_report();
        report.minipages = vec![
            // mp0: host 2 does all the writing, homed at hot host 0.
            mp_diag(0, 32, 0, vec![lane(0, 0, 0, &[]), lane(2, 0, 9, &[(0, 4)])]),
            // mp1: written only by its home — stays put.
            mp_diag(1, 32, 0, vec![lane(0, 0, 9, &[(0, 4)])]),
            // mp2: homed elsewhere — not the hot host's problem.
            mp_diag(2, 32, 1, vec![lane(2, 0, 9, &[(0, 4)])]),
        ];
        report.hot_home = vec![finding("hot-home", 0, 0)];
        let active = [desc(0, 0, 0, 32), desc(1, 0, 32, 32), desc(2, 1, 0, 32)];
        let mut eng = AdaptEngine::new(AdaptConfig::enabled());
        let plan = eng.plan(&report, &active, 4096);
        assert_eq!(
            plan,
            vec![AdaptAction::Migrate {
                mp: MinipageId(0),
                to: HostId(2),
            }]
        );
        // Each minipage migrates at most once per run.
        assert!(eng.plan(&report, &active, 4096).is_empty());
    }

    #[test]
    fn planning_budget_caps_total_actions() {
        let mut report = empty_report();
        for mp in 0..4u32 {
            report.minipages.push(mp_diag(
                mp,
                32,
                0,
                vec![lane(0, 0, 0, &[]), lane(2, 0, 9, &[(0, 4)])],
            ));
        }
        report.hot_home = vec![finding("hot-home", 0, 0)];
        let active: Vec<Minipage> = (0..4).map(|k| desc(k, k as usize, 0, 32)).collect();
        let mut eng = AdaptEngine::new(AdaptConfig {
            max_actions: 3,
            ..AdaptConfig::enabled()
        });
        assert_eq!(eng.plan(&report, &active, 4096).len(), 3);
        assert!(!eng.should_act(5));
    }

    #[test]
    fn report_fingerprint_and_merge_are_deterministic() {
        let mut eng = AdaptEngine::new(AdaptConfig::enabled());
        eng.record_split(2, 0, &[32]);
        eng.record_migrate(3, 4, 2);
        eng.record_deferred();
        let fp = eng.report().fingerprint();
        assert_eq!(fp, "b2:split:mp0:cuts=[32];b3:migrate:mp4:to=h2|deferred=1");
        let mut merged = AdaptReport::default();
        merged.absorb(eng.report().clone());
        merged.absorb(AdaptReport::default());
        assert_eq!(merged.fingerprint(), fp);
        assert!(merged.any_activity());
        let json = merged.to_json();
        assert!(json.contains("\"splits\":1"));
        assert!(json.contains("\"migrations\":1"));
    }

    #[test]
    fn disabled_engine_never_acts() {
        let eng = AdaptEngine::new(AdaptConfig::default());
        assert!(!eng.should_act(100));
    }
}

/// Property tests: random split/merge/migrate sequences — built with the
/// same placement arithmetic as `ManagerShard::apply_action` — preserve
/// the MPT geometry invariants and home inheritance under every home
/// policy. Lives in this crate because seeding a [`HomeTable`] and
/// pinning homes ([`HomeTable::publish_at`]) is crate-private.
#[cfg(test)]
mod props {
    use crate::home::HomeTable;
    use crate::HomePolicyKind;
    use multiview::{Minipage, MinipageId};
    use proptest::prelude::*;
    use sim_core::HostId;
    use sim_mem::Geometry;

    const HOSTS: usize = 4;
    /// Seeded minipages, each covering one full physical page.
    const SEEDED: usize = 3;

    const POLICIES: [HomePolicyKind; 3] = [
        HomePolicyKind::Centralized,
        HomePolicyKind::Interleaved,
        HomePolicyKind::FirstTouch,
    ];

    /// A descriptor covering `len` physical bytes from `phys` through
    /// `view` — the arithmetic `apply_action` uses to place children and
    /// merge results.
    fn descriptor(
        id: MinipageId,
        geo: &Geometry,
        view: usize,
        phys: usize,
        len: usize,
    ) -> Minipage {
        let ps = geo.page_size();
        Minipage {
            id,
            base: geo.addr_of(view, phys / ps, phys % ps),
            len,
            view,
            first_page: phys / ps,
            offset: phys % ps,
        }
    }

    fn pages_of(geo: &Geometry, phys: usize, len: usize) -> usize {
        let ps = geo.page_size();
        (phys % ps + len).div_ceil(ps)
    }

    /// Replays one op sequence against a fresh table; every op is
    /// followed by the full geometry oracle. Ops that cannot apply
    /// (no candidate, exhausted views) are skipped, exactly like the
    /// manager defers them.
    fn run_sequence(
        kind: HomePolicyKind,
        ops: &[(usize, usize, usize)],
    ) -> Result<(), TestCaseError> {
        let geo = Geometry::new(12, SEEDED + 1);
        let ps = geo.page_size();
        let home = HomeTable::new(kind, HOSTS, HostId(0), geo.clone());
        for k in 0..SEEDED {
            let mp = descriptor(MinipageId(k as u32), &geo, 0, k * ps, ps);
            home.publish(mp, HostId(0));
        }
        let mpt = home.mpt().clone();
        for &(op, pick, param) in ops {
            let mut active = mpt.snapshot_active();
            active.sort_by_key(|m| m.phys_range(ps).start);
            match op % 3 {
                // Split at an interior cut, children in fresh views.
                0 => {
                    let cands: Vec<&Minipage> = active.iter().filter(|m| m.len >= 2).collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let parent = *cands[pick % cands.len()];
                    let cut = 1 + param % (parent.len - 1);
                    let phys = parent.phys_range(ps).start;
                    let Some(va) =
                        mpt.free_view_for(&geo, phys / ps, pages_of(&geo, phys, cut), &[])
                    else {
                        continue;
                    };
                    let pb = phys + cut;
                    let lb = parent.len - cut;
                    let Some(vb) = mpt.free_view_for(&geo, pb / ps, pages_of(&geo, pb, lb), &[va])
                    else {
                        continue;
                    };
                    let next = mpt.next_id().0;
                    let children = vec![
                        descriptor(MinipageId(next), &geo, va, phys, cut),
                        descriptor(MinipageId(next + 1), &geo, vb, pb, lb),
                    ];
                    let parent_home = home.home(parent.id);
                    mpt.retire_and_insert(&geo, &[parent.id], children.clone());
                    for child in &children {
                        home.publish_at(*child, parent_home);
                        prop_assert_eq!(
                            home.home(child.id),
                            parent_home,
                            "{:?}: split child did not inherit the parent home",
                            kind
                        );
                    }
                }
                // Merge a physically adjacent same-home pair.
                1 => {
                    let pair = active.windows(2).find(|w| {
                        w[0].phys_range(ps).end == w[1].phys_range(ps).start
                            && home.home(w[0].id) == home.home(w[1].id)
                    });
                    let Some(pair) = pair else { continue };
                    let start = pair[0].phys_range(ps).start;
                    let len = pair[0].len + pair[1].len;
                    let pages = pages_of(&geo, start, len);
                    if start / ps + pages > geo.pages() {
                        continue;
                    }
                    let Some(view) = mpt.free_view_for(&geo, start / ps, pages, &[]) else {
                        continue;
                    };
                    let merged = descriptor(mpt.next_id(), &geo, view, start, len);
                    let group_home = home.home(pair[0].id);
                    mpt.retire_and_insert(&geo, &[pair[0].id, pair[1].id], vec![merged]);
                    home.publish_at(merged, group_home);
                    prop_assert_eq!(
                        home.home(merged.id),
                        group_home,
                        "{:?}: merge result did not inherit the group home",
                        kind
                    );
                }
                // Migrate any active minipage; the override must win.
                _ => {
                    let mp = active[pick % active.len()];
                    let to = HostId((param % HOSTS) as u16);
                    let epoch = home.migrate(mp.id, to);
                    prop_assert_eq!(home.epoch(), epoch);
                    prop_assert!(epoch > 0, "{:?}: migration did not bump the epoch", kind);
                    prop_assert_eq!(
                        home.home(mp.id),
                        to,
                        "{:?}: migration override did not take",
                        kind
                    );
                }
            }
            let v = mpt.geometry_violations(&geo);
            prop_assert!(v.is_empty(), "{:?}: geometry violations: {:?}", kind, v);
        }
        // End-to-end: every seeded physical byte still reaches exactly
        // one active owner through the original (view-0) addresses, the
        // active set covers exactly the seeded bytes, and every home is
        // a real host.
        let active = mpt.snapshot_active();
        let covered: usize = active.iter().map(|m| m.len).sum();
        prop_assert_eq!(covered, SEEDED * ps, "{:?}: active bytes leaked", kind);
        for byte in (0..SEEDED * ps).step_by(97) {
            let addr = geo.addr_of(0, byte / ps, byte % ps);
            let owner = mpt.translate(&geo, addr);
            prop_assert!(
                owner.is_some_and(|m| m.phys_range(ps).contains(&byte) && !mpt.is_retired(m.id)),
                "{:?}: seeded byte {} lost its active owner",
                kind,
                byte
            );
        }
        for m in &active {
            prop_assert!(
                home.home(m.id).index() < HOSTS,
                "{:?}: {} homed at an absent host",
                kind,
                m.id
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random adaptation sequences round-trip the MPT under all
        /// three home policies.
        fn split_merge_migrate_sequences_round_trip_geometry(
            ops in collection::vec((0usize..3, 0usize..64, 0usize..4096), 1..12),
        ) {
            for kind in POLICIES {
                run_sequence(kind, &ops)?;
            }
        }
    }
}
