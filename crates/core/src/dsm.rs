//! The application-facing DSM surface, abstracted over backends.
//!
//! The paper's applications see one API — allocate, read, write, barrier —
//! regardless of whether the protocol underneath runs on the simulator's
//! checked address space or on real `mmap`ed memory behind a SIGSEGV
//! handler. [`Dsm`] captures exactly the subset of [`HostCtx`] that the
//! ported benchmarks (SOR, IS) use, so a worker written as
//! `fn worker<D: Dsm>(ctx: &mut D, …)` runs unchanged on either backend.
//!
//! Deliberately excluded: prefetch, push, and lock operations. Those are
//! simulator-side protocol extensions that the real-memory backend does
//! not implement (yet); keeping them off the trait means a portable worker
//! cannot accidentally depend on them.

use crate::host::HostCtx;
use crate::shared::{Pod, SharedVec};
use sim_core::{HostId, Ns};
use std::ops::Range;

/// Backend-independent view of one application thread's DSM context.
///
/// Implemented by the simulator's [`HostCtx`] and by the real-memory
/// backend's run context ([`hostrun`](crate::hostrun), Linux only).
pub trait Dsm {
    /// This thread's host.
    fn host(&self) -> HostId;

    /// Number of hosts in the cluster.
    fn hosts(&self) -> usize;

    /// Reads `sv[range]`, faulting pages in as needed.
    fn read_range<T: Pod>(&mut self, sv: &SharedVec<T>, range: Range<usize>) -> Vec<T>;

    /// Writes `vals` over `sv[start..start + vals.len()]`.
    fn write_range<T: Pod>(&mut self, sv: &SharedVec<T>, start: usize, vals: &[T]);

    /// Global barrier across every application thread.
    fn barrier(&mut self);

    /// Restarts the timed region (used after untimed initialization).
    fn timer_reset(&mut self);

    /// Accounts `ns` of local computation. The simulator advances virtual
    /// time; a real-memory backend only tallies it for reporting.
    fn compute(&mut self, ns: Ns);
}

impl Dsm for HostCtx {
    fn host(&self) -> HostId {
        HostCtx::host(self)
    }

    fn hosts(&self) -> usize {
        HostCtx::hosts(self)
    }

    fn read_range<T: Pod>(&mut self, sv: &SharedVec<T>, range: Range<usize>) -> Vec<T> {
        HostCtx::read_range(self, sv, range)
    }

    fn write_range<T: Pod>(&mut self, sv: &SharedVec<T>, start: usize, vals: &[T]) {
        HostCtx::write_range(self, sv, start, vals)
    }

    fn barrier(&mut self) {
        HostCtx::barrier(self)
    }

    fn timer_reset(&mut self) {
        HostCtx::timer_reset(self)
    }

    fn compute(&mut self, ns: Ns) {
        HostCtx::compute(self, ns)
    }
}
