//! Protocol messages (Figure 3's `pmsg`).
//!
//! "Since all the messages which are sent to and by the manager are small
//! (32 bytes in our current implementation), reading and writing them to
//! and from the network does not involve much overhead, leaving the
//! manager highly responsive." Data travels out of band: the sender reads
//! the minipage through its privileged view and the receiver deposits it
//! straight into its own privileged view — no DSM-layer buffer copies.

use bytes::Bytes;
use multiview::MinipageId;
use sim_core::{HostId, Ns};
use sim_mem::VAddr;

/// Message discriminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MsgKind {
    /// Faulting host → manager: read copy wanted.
    ReadRequest,
    /// Faulting host → manager: writable copy wanted.
    WriteRequest,
    /// Manager → copy holder: translated, forwarded read request
    /// (Figure 3 keeps the kind unchanged when forwarding; the simulation
    /// uses a distinct kind because the manager host also serves data).
    ServeRead,
    /// Manager → copy holder: translated, forwarded write request.
    ServeWrite,
    /// Serving host → faulting host: read copy data.
    ReadReply,
    /// Serving host → faulting host: writable copy data.
    WriteReply,
    /// Manager → copy holder: invalidate your copy.
    InvalidateRequest,
    /// Copy holder → manager: invalidated.
    InvalidateReply,
    /// Faulting thread → manager after its access completed; closes the
    /// service window (§3.3's anti-livelock / no-queue-at-hosts ack).
    Ack,
    /// Application → manager: shared allocation request.
    AllocRequest,
    /// Manager → application: allocation result.
    AllocReply,
    /// Application → manager: barrier arrival.
    BarrierEnter,
    /// Manager → application: barrier release.
    BarrierRelease,
    /// Application → manager: lock acquire request.
    LockAcquire,
    /// Manager → application: lock granted.
    LockGrant,
    /// Application → manager: lock released.
    LockRelease,
    /// Writer → manager: push read copies of a minipage to all hosts
    /// (the TSP best-bound update of §4.3).
    PushRequest,
    /// Manager → everyone: pushed read copy data.
    PushData,
    /// Writer → home shard: run-length diff of a dirty minipage at a
    /// release point (the §5 release-consistency extension).
    RcDiff,
    /// Home shard → writer: the flushed diff is applied and every stale
    /// copy confirmed invalidated. Only used with distributed home
    /// policies, where the flusher cannot rely on FIFO ordering through a
    /// single manager and must block until its release is globally
    /// visible.
    RcDiffAck,
    /// Adapting shard → remote home shard: apply an encoded adaptation
    /// action (home migration of a minipage whose directory entry lives at
    /// the receiver) at the barrier quiesce point. `minipage` names the
    /// target, `aux` packs the action (see `core::adapt`), `data` carries
    /// the master copy when ownership moves.
    AdaptApply,
    /// Remote home shard → adapting shard: the action was applied (or
    /// deferred; `aux` = 1 applied, 0 deferred). The adapting shard holds
    /// the barrier release until every ack arrived.
    AdaptAck,
    /// Server → requesting host: the request naming `event` could not be
    /// served (translation failure, lost forward, directory corruption).
    /// The receiving server fails the registered waiter with a typed
    /// [`ProtocolError`](crate::ProtocolError) instead of letting the
    /// application thread hang.
    Nack,
    /// Controller → server: stop after draining.
    Shutdown,
}

impl MsgKind {
    /// Static name, for typed-error reporting.
    pub(crate) fn name(self) -> &'static str {
        use MsgKind::*;
        match self {
            ReadRequest => "ReadRequest",
            WriteRequest => "WriteRequest",
            ServeRead => "ServeRead",
            ServeWrite => "ServeWrite",
            ReadReply => "ReadReply",
            WriteReply => "WriteReply",
            InvalidateRequest => "InvalidateRequest",
            InvalidateReply => "InvalidateReply",
            Ack => "Ack",
            AllocRequest => "AllocRequest",
            AllocReply => "AllocReply",
            BarrierEnter => "BarrierEnter",
            BarrierRelease => "BarrierRelease",
            LockAcquire => "LockAcquire",
            LockGrant => "LockGrant",
            LockRelease => "LockRelease",
            PushRequest => "PushRequest",
            PushData => "PushData",
            RcDiff => "RcDiff",
            RcDiffAck => "RcDiffAck",
            AdaptApply => "AdaptApply",
            AdaptAck => "AdaptAck",
            Nack => "Nack",
            Shutdown => "Shutdown",
        }
    }
}

/// A protocol message.
///
/// The header fields mirror Figure 3: `event` identifies the waiting
/// thread, `from` the faulting host, `addr` the faulting address, and the
/// translation fields (`base`, `len`, `priv_base`, `minipage`) are filled
/// in by the manager's `Translate` step so that non-manager hosts never
/// need a table lookup.
#[derive(Clone, Debug)]
pub struct Pmsg {
    /// What this message is.
    pub kind: MsgKind,
    /// The host whose thread is waiting for the outcome.
    pub from: HostId,
    /// Identifies the waiting thread's event (Figure 3's `pmsg->event`).
    pub event: u64,
    /// Faulting address / allocation result address.
    pub addr: VAddr,
    /// Translation info: minipage base address (application view).
    pub base: VAddr,
    /// Translation info: minipage length in bytes.
    pub len: usize,
    /// Translation info: minipage base in the privileged view.
    pub priv_base: VAddr,
    /// Translation info: minipage id (directory index).
    pub minipage: MinipageId,
    /// Generic small argument: allocation size, lock id, barrier
    /// generation, …
    pub aux: u64,
    /// Marks a read request issued by
    /// [`HostCtx::prefetch_bytes`](crate::HostCtx::prefetch_bytes)
    /// (no thread blocks on it).
    pub prefetch: bool,
    /// Out-of-band minipage contents (empty for header-only messages).
    pub data: Bytes,
}

impl Pmsg {
    /// A fresh header-only message.
    pub fn new(kind: MsgKind, from: HostId, event: u64) -> Self {
        Self {
            kind,
            from,
            event,
            addr: VAddr(0),
            base: VAddr(0),
            len: 0,
            priv_base: VAddr(0),
            minipage: MinipageId(u32::MAX),
            aux: 0,
            prefetch: false,
            data: Bytes::new(),
        }
    }

    /// Builder: sets the faulting / target address.
    pub fn with_addr(mut self, addr: VAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Builder: sets the small argument.
    pub fn with_aux(mut self, aux: u64) -> Self {
        self.aux = aux;
        self
    }

    /// Payload size for the latency model.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }
}

/// What a waiting application thread learns when its event fires.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Virtual time at which the thread resumes.
    pub resume_vt: Ns,
    /// Result address (allocation replies) or the serviced address.
    pub addr: VAddr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let m = Pmsg::new(MsgKind::ReadRequest, HostId(3), 42)
            .with_addr(VAddr(0x1234))
            .with_aux(7);
        assert_eq!(m.kind, MsgKind::ReadRequest);
        assert_eq!(m.from, HostId(3));
        assert_eq!(m.event, 42);
        assert_eq!(m.addr, VAddr(0x1234));
        assert_eq!(m.aux, 7);
        assert!(!m.prefetch);
        assert_eq!(m.payload_bytes(), 0);
    }

    #[test]
    fn payload_bytes_tracks_data() {
        let mut m = Pmsg::new(MsgKind::ReadReply, HostId(0), 1);
        m.data = Bytes::from(vec![0u8; 672]);
        assert_eq!(m.payload_bytes(), 672);
    }
}
