//! Trace-replay invariant checker.
//!
//! Replays a run's merged [`TraceLog`](sim_core::TraceLog) and asserts the
//! protocol invariants at every event:
//!
//! * **SW/MR** (Figure 3): per minipage, at most one writable copy, and
//!   never a writable copy coexisting with read copies; a copy is served
//!   only inside the minipage's service window; the window never
//!   double-opens or double-closes; a write is forwarded only once every
//!   fanned-out invalidation has been confirmed.
//! * **HLRC** (§5): a flusher enters a barrier or releases a lock only
//!   after every acknowledged release diff it shipped has been confirmed
//!   by its home (`RcDiffAck` before the barrier release).
//! * **Both**: an invalidation confirmation never arrives without a
//!   matching fan-out; at the end of the log every service window is
//!   closed and no acknowledged diff is left pending.
//! * **Adaptation**: a split/merge/migration applies only at a quiesced
//!   barrier — the target's service window is closed and every
//!   invalidation it fanned out has been confirmed; afterwards the
//!   replay state resets exactly like a fresh allocation (master copy
//!   at the acting home, writable under SW/MR). A request forwarded to
//!   a migrated minipage's new home ([`TraceKind::AdaptForward`]) is
//!   forwarded at most once per (shard, minipage, request) — a repeat
//!   means requests are looping between stale home tables.
//! * **Transport**: when the fault plane is active every delivered
//!   message carries its link sequence number ([`TraceKind::MsgRecv`]
//!   `aux`), and per (sender, receiver) link those numbers must be
//!   strictly increasing — the reliable channel delivered exactly once,
//!   in FIFO order, despite drops, duplicates and reordering underneath.
//!   (`aux == 0` marks a fault-free run or a self-delivery, which bypass
//!   sequencing; those events are skipped.)
//!
//! Events are replayed in **record order** ([`TraceEvent::seq`]), not
//! virtual-time order: the optimistic simulation lets unrelated virtual
//! timestamps invert across hosts (see `SERIALIZE_WINDOW` in `sim-net`),
//! but the real processing order is a causally-consistent linearization —
//! a message is handled only after it was sent — so replaying it never
//! reports phantom violations.

use sim_core::trace::{TraceEvent, TraceKind};
use std::collections::{HashMap, HashSet};

/// Which protocol's invariants to hold the trace against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuditMode {
    /// The Figure 3 Single-Writer/Multiple-Readers protocol.
    SwMr,
    /// The §5 home-based eager release-consistency extension (the home
    /// always keeps the master copy, so reads are served windowless and
    /// copyset exclusivity is not required).
    Hlrc,
}

#[derive(Default)]
struct MpState {
    writers: HashSet<u16>,
    readers: HashSet<u16>,
    window_open: bool,
    inv_outstanding: i64,
}

/// Replays `events` (any order; re-sorted by [`TraceEvent::seq`]) and
/// returns every invariant violation found. An empty result means the
/// trace is consistent with the protocol. Run it only on complete logs
/// ([`TraceLog::dropped`](sim_core::TraceLog::dropped) `== 0`): a wrapped
/// ring loses the transitions the replay needs.
pub fn audit(events: &[TraceEvent], mode: AuditMode) -> Vec<String> {
    let mut evs: Vec<&TraceEvent> = events.iter().collect();
    evs.sort_by_key(|e| e.seq);

    let mut mps: HashMap<u32, MpState> = HashMap::new();
    let mut rc_out: HashMap<u16, i64> = HashMap::new();
    // (shard host, minipage, request event) already forwarded once.
    let mut forwarded: HashSet<(u16, u32, u64)> = HashSet::new();
    // (sender, receiver) -> highest wire sequence number seen so far.
    let mut link_seq: HashMap<(u16, u16), u32> = HashMap::new();
    let mut violations = Vec::new();
    let mut report = |vt: u64, msg: String| violations.push(format!("vt {vt}: {msg}"));

    for e in &evs {
        match e.kind {
            // Exactly-once FIFO delivery: the reliable channel stamps
            // every sequenced delivery with its link sequence number. A
            // repeat means a duplicate leaked past dedup; a step backwards
            // means a reorder leaked past the holdback buffer.
            TraceKind::MsgRecv if e.aux != 0 => {
                let last = link_seq.entry((e.peer, e.host)).or_insert(0);
                if e.aux <= *last {
                    report(
                        e.vt,
                        format!(
                            "link h{}->h{}: wire seq {} delivered after seq {} \
                             ({} leaked past the reliable channel)",
                            e.peer,
                            e.host,
                            e.aux,
                            last,
                            if e.aux == *last {
                                "a duplicate"
                            } else {
                                "a reorder"
                            }
                        ),
                    );
                } else {
                    *last = e.aux;
                }
            }
            TraceKind::AllocGrant => {
                let s = mps.entry(e.mp).or_default();
                s.writers.clear();
                s.readers.clear();
                if e.aux == 1 {
                    s.writers.insert(e.peer);
                } else {
                    s.readers.insert(e.peer);
                }
            }
            TraceKind::Install => {
                let host = e.host;
                let s = mps.entry(e.mp).or_default();
                if e.aux == 2 {
                    // A writable copy is granted only after every other
                    // copy died (SW/MR exclusivity).
                    if !s.writers.is_empty() {
                        report(
                            e.vt,
                            format!(
                                "mp{}: writable copy installed on h{host} while {:?} still \
                                 hold writable copies",
                                e.mp, s.writers
                            ),
                        );
                    }
                    if !s.readers.is_empty() {
                        report(
                            e.vt,
                            format!(
                                "mp{}: writable copy installed on h{host} while read copies \
                                 survive on {:?}",
                                e.mp, s.readers
                            ),
                        );
                    }
                    s.readers.clear();
                    s.writers.clear();
                    s.writers.insert(host);
                } else {
                    if mode == AuditMode::SwMr && !s.writers.is_empty() {
                        report(
                            e.vt,
                            format!(
                                "mp{}: read copy installed on h{host} while {:?} hold a \
                                 writable copy",
                                e.mp, s.writers
                            ),
                        );
                    }
                    s.readers.insert(host);
                }
            }
            TraceKind::Downgrade => {
                let host = e.host;
                let s = mps.entry(e.mp).or_default();
                s.writers.remove(&host);
                s.readers.insert(host);
            }
            TraceKind::InvalidateLocal => {
                let host = e.host;
                let s = mps.entry(e.mp).or_default();
                s.writers.remove(&host);
                s.readers.remove(&host);
            }
            TraceKind::WindowOpen => {
                let s = mps.entry(e.mp).or_default();
                if s.window_open {
                    report(
                        e.vt,
                        format!("mp{}: service window opened while already open", e.mp),
                    );
                }
                s.window_open = true;
            }
            TraceKind::WindowClose => {
                let s = mps.entry(e.mp).or_default();
                if !s.window_open {
                    report(
                        e.vt,
                        format!("mp{}: service window closed while not open", e.mp),
                    );
                }
                s.window_open = false;
            }
            // HLRC serves reads straight off the home copy with no
            // window; SW/MR transfers happen only mid-window.
            TraceKind::Serve
                if mode == AuditMode::SwMr && !mps.entry(e.mp).or_default().window_open =>
            {
                report(
                    e.vt,
                    format!(
                        "mp{}: h{} served a {} outside the service window",
                        e.mp,
                        e.host,
                        if e.aux == 1 { "write" } else { "read" }
                    ),
                );
            }
            TraceKind::Forward => {
                let s = mps.entry(e.mp).or_default();
                if e.aux == 1 && s.inv_outstanding != 0 {
                    report(
                        e.vt,
                        format!(
                            "mp{}: write forwarded to h{} with {} invalidations unconfirmed",
                            e.mp, e.peer, s.inv_outstanding
                        ),
                    );
                }
            }
            TraceKind::InvSend => mps.entry(e.mp).or_default().inv_outstanding += 1,
            TraceKind::InvReplyRecv => {
                let s = mps.entry(e.mp).or_default();
                s.inv_outstanding -= 1;
                if s.inv_outstanding < 0 {
                    report(
                        e.vt,
                        format!(
                            "mp{}: invalidation confirmation from h{} without a matching \
                             fan-out",
                            e.mp, e.peer
                        ),
                    );
                    s.inv_outstanding = 0;
                }
            }
            // aux 1 = an acknowledged flush-path diff; eviction diffs
            // (aux 0) are fire-and-forget and never tracked.
            TraceKind::RcDiffSend if e.aux == 1 => {
                *rc_out.entry(e.host).or_default() += 1;
            }
            TraceKind::RcDiffAckRecv => {
                let n = rc_out.entry(e.host).or_default();
                *n -= 1;
                if *n < 0 {
                    report(
                        e.vt,
                        format!("h{}: diff ack received without a pending diff", e.host),
                    );
                    *n = 0;
                }
            }
            TraceKind::BarrierEnter | TraceKind::LockRelease => {
                let n = rc_out.get(&e.host).copied().unwrap_or(0);
                if n != 0 {
                    let what = if e.kind == TraceKind::BarrierEnter {
                        "entered a barrier"
                    } else {
                        "released a lock"
                    };
                    report(
                        e.vt,
                        format!("h{}: {what} with {n} release diffs unacknowledged", e.host),
                    );
                }
            }
            // An adaptation action may only touch a quiesced minipage:
            // window closed, no invalidation in flight. The action revokes
            // every copy and re-seeds the master at the acting shard
            // (split children / merge result, SW/MR only) or the new home
            // (migration; aux carries writability), so the replay state
            // restarts exactly like a fresh allocation.
            TraceKind::AdaptSplit | TraceKind::AdaptMerge | TraceKind::AdaptMigrate => {
                let what = match e.kind {
                    TraceKind::AdaptSplit => "split",
                    TraceKind::AdaptMerge => "merge",
                    _ => "migration",
                };
                {
                    let s = mps.entry(e.mp).or_default();
                    if s.window_open {
                        report(
                            e.vt,
                            format!("mp{}: {what} applied inside an open service window", e.mp),
                        );
                    }
                    // Only SW/MR confirms invalidations individually;
                    // HLRC invalidations are fire-and-forget behind the
                    // FIFO channel and synchronized by the barrier the
                    // action itself quiesces at, so the counter never
                    // drains in an HLRC trace.
                    if mode == AuditMode::SwMr && s.inv_outstanding != 0 {
                        report(
                            e.vt,
                            format!(
                                "mp{}: {what} applied with {} invalidations unconfirmed",
                                e.mp, s.inv_outstanding
                            ),
                        );
                    }
                    *s = MpState::default();
                }
                match e.kind {
                    // aux = child count, event = first (dense) child id.
                    TraceKind::AdaptSplit => {
                        for k in 0..u64::from(e.aux) {
                            let child = mps.entry((e.event + k) as u32).or_default();
                            *child = MpState::default();
                            child.writers.insert(e.host);
                        }
                    }
                    // event = merged minipage id.
                    TraceKind::AdaptMerge => {
                        let merged = mps.entry(e.event as u32).or_default();
                        *merged = MpState::default();
                        merged.writers.insert(e.host);
                    }
                    // peer = new home; aux 1 = writable master (SW/MR).
                    _ => {
                        let s = mps.entry(e.mp).or_default();
                        if e.aux == 1 {
                            s.writers.insert(e.peer);
                        } else {
                            s.readers.insert(e.peer);
                        }
                    }
                }
            }
            // Exactly-once forwarding: a shard that no longer homes a
            // minipage re-sends the request to the current home. Seeing
            // the same request twice at the same shard means the request
            // is looping between stale home tables.
            TraceKind::AdaptForward if !forwarded.insert((e.host, e.mp, e.event)) => {
                report(
                    e.vt,
                    format!(
                        "mp{}: h{} forwarded request event {} twice \
                         (home-table forwarding loop)",
                        e.mp, e.host, e.event
                    ),
                );
            }
            _ => {}
        }
    }

    for (id, s) in &mps {
        if s.window_open {
            violations.push(format!("end of log: mp{id}: service window never closed"));
        }
        if mode == AuditMode::SwMr && s.writers.len() > 1 {
            violations.push(format!(
                "end of log: mp{id}: multiple writable copies on {:?}",
                s.writers
            ));
        }
    }
    for (h, n) in &rc_out {
        if *n != 0 {
            violations.push(format!(
                "end of log: h{h}: {n} release diffs never acknowledged"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::trace::Track;
    use sim_core::HostId;

    fn ev(seq: u64, host: u16, kind: TraceKind) -> TraceEvent {
        let mut e = TraceEvent::new(seq, HostId(host), Track::Server, kind);
        e.seq = seq;
        e
    }

    #[test]
    fn clean_swmr_exchange_passes() {
        // h0 allocates (writable at home h0); h1 write-faults: window
        // opens, h0's copy is invalidated as it serves, h1 installs RW,
        // acks, window closes.
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(4)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::WindowOpen).with_mp(4),
            ev(2, 0, TraceKind::Forward)
                .with_mp(4)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(3, 0, TraceKind::InvalidateLocal).with_mp(4),
            ev(4, 0, TraceKind::Serve)
                .with_mp(4)
                .with_peer(HostId(1))
                .with_aux(1),
            ev(5, 1, TraceKind::Install).with_mp(4).with_aux(2),
            ev(6, 0, TraceKind::AckRecv).with_mp(4),
            ev(7, 0, TraceKind::WindowClose).with_mp(4),
        ];
        assert_eq!(audit(&events, AuditMode::SwMr), Vec::<String>::new());
    }

    #[test]
    fn injected_double_writer_is_caught() {
        // h2 gets a writable copy while h0 (the home) still holds one and
        // no invalidation ever ran: the single-writer invariant breaks.
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(7)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::WindowOpen).with_mp(7),
            ev(2, 0, TraceKind::Serve)
                .with_mp(7)
                .with_peer(HostId(2))
                .with_aux(1),
            ev(3, 2, TraceKind::Install).with_mp(7).with_aux(2),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("writable copy installed")),
            "expected a double-writer violation, got {v:?}"
        );
    }

    #[test]
    fn serve_outside_window_is_caught() {
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(1)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::Serve)
                .with_mp(1)
                .with_peer(HostId(1))
                .with_aux(0),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(v.iter().any(|s| s.contains("outside the service window")));
    }

    #[test]
    fn forward_before_all_inv_replies_is_caught() {
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(2)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::WindowOpen).with_mp(2),
            ev(2, 0, TraceKind::InvSend).with_mp(2).with_peer(HostId(1)),
            ev(3, 0, TraceKind::InvSend).with_mp(2).with_peer(HostId(2)),
            ev(4, 1, TraceKind::InvalidateLocal).with_mp(2),
            ev(5, 0, TraceKind::InvReplyRecv)
                .with_mp(2)
                .with_peer(HostId(1)),
            // Second reply never arrived, yet the write is forwarded.
            ev(6, 0, TraceKind::Forward)
                .with_mp(2)
                .with_peer(HostId(0))
                .with_aux(1),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(v.iter().any(|s| s.contains("invalidations unconfirmed")));
    }

    #[test]
    fn barrier_with_pending_diff_is_caught() {
        let events = vec![
            ev(0, 1, TraceKind::RcDiffSend)
                .with_mp(3)
                .with_aux(1)
                .with_event(9),
            ev(1, 1, TraceKind::BarrierEnter).with_event(10),
        ];
        let v = audit(&events, AuditMode::Hlrc);
        assert!(v.iter().any(|s| s.contains("release diffs unacknowledged")));
        // The diff stays unacknowledged to the end of the log, too.
        assert!(v.iter().any(|s| s.contains("never acknowledged")));
    }

    #[test]
    fn acked_diff_before_barrier_passes() {
        let events = vec![
            ev(0, 1, TraceKind::RcDiffSend)
                .with_mp(3)
                .with_aux(1)
                .with_event(9),
            ev(1, 0, TraceKind::RcDiffApply).with_mp(3).with_event(9),
            ev(2, 0, TraceKind::RcDiffAckSend)
                .with_mp(3)
                .with_peer(HostId(1))
                .with_event(9),
            ev(3, 1, TraceKind::RcDiffAckRecv).with_event(9),
            ev(4, 1, TraceKind::BarrierEnter).with_event(10),
        ];
        assert_eq!(audit(&events, AuditMode::Hlrc), Vec::<String>::new());
    }

    #[test]
    fn duplicate_wire_seq_is_caught() {
        let recv = |seq: u64, host: u16, from: u16, wire: u32| {
            ev(seq, host, TraceKind::MsgRecv)
                .with_peer(HostId(from))
                .with_aux(wire)
        };
        // h1 -> h0 delivers seq 1, 2, 2: the repeat is a duplicate that
        // leaked past the reliable channel's dedup.
        let events = vec![recv(0, 0, 1, 1), recv(1, 0, 1, 2), recv(2, 0, 1, 2)];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("duplicate")),
            "expected a duplicate-delivery violation, got {v:?}"
        );
    }

    #[test]
    fn reordered_wire_seq_is_caught() {
        let recv = |seq: u64, host: u16, from: u16, wire: u32| {
            ev(seq, host, TraceKind::MsgRecv)
                .with_peer(HostId(from))
                .with_aux(wire)
        };
        let events = vec![recv(0, 0, 1, 2), recv(1, 0, 1, 1)];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("reorder")),
            "expected a reorder violation, got {v:?}"
        );
    }

    #[test]
    fn fifo_wire_seq_and_unsequenced_deliveries_pass() {
        let recv = |seq: u64, host: u16, from: u16, wire: u32| {
            ev(seq, host, TraceKind::MsgRecv)
                .with_peer(HostId(from))
                .with_aux(wire)
        };
        // Distinct links sequence independently; aux 0 (fault-free run or
        // self-delivery) is exempt from the check.
        let events = vec![
            recv(0, 0, 1, 1),
            recv(1, 0, 2, 1),
            recv(2, 0, 1, 2),
            recv(3, 1, 0, 1),
            recv(4, 0, 0, 0),
            recv(5, 0, 0, 0),
        ];
        assert_eq!(audit(&events, AuditMode::SwMr), Vec::<String>::new());
    }

    #[test]
    fn quiesced_split_resets_state_and_seeds_children() {
        // mp3 is quiesced (window closed, no invalidations in flight)
        // when the split retires it into children 8 and 9, both writable
        // at the acting home h0. A later writable install on h1 for
        // child 8 after a proper invalidation round is clean.
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(3)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::AdaptSplit)
                .with_mp(3)
                .with_aux(2)
                .with_event(8),
            ev(2, 0, TraceKind::WindowOpen).with_mp(8),
            ev(3, 0, TraceKind::Forward)
                .with_mp(8)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(4, 0, TraceKind::InvalidateLocal).with_mp(8),
            ev(5, 1, TraceKind::Install).with_mp(8).with_aux(2),
            ev(6, 0, TraceKind::WindowClose).with_mp(8),
        ];
        assert_eq!(audit(&events, AuditMode::SwMr), Vec::<String>::new());
    }

    #[test]
    fn split_inside_open_window_is_caught() {
        let events = vec![
            ev(0, 0, TraceKind::WindowOpen).with_mp(3),
            ev(1, 0, TraceKind::AdaptSplit)
                .with_mp(3)
                .with_aux(2)
                .with_event(8),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter()
                .any(|s| s.contains("split applied inside an open service window")),
            "expected an open-window violation, got {v:?}"
        );
    }

    #[test]
    fn migration_with_unconfirmed_invalidations_is_caught() {
        let events = vec![
            ev(0, 0, TraceKind::InvSend).with_mp(5).with_peer(HostId(1)),
            ev(1, 0, TraceKind::AdaptMigrate)
                .with_mp(5)
                .with_peer(HostId(2))
                .with_aux(1),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter()
                .any(|s| s.contains("migration applied with 1 invalidations unconfirmed")),
            "expected an unconfirmed-invalidation violation, got {v:?}"
        );
    }

    #[test]
    fn migration_reseeds_single_writable_copy_at_new_home() {
        // After migration the master copy is writable at h2 only; an
        // unrelated writable install elsewhere without invalidating it
        // breaks single-writer and must be reported.
        let events = vec![
            ev(0, 0, TraceKind::AllocGrant)
                .with_mp(5)
                .with_peer(HostId(0))
                .with_aux(1),
            ev(1, 0, TraceKind::AdaptMigrate)
                .with_mp(5)
                .with_peer(HostId(2))
                .with_aux(1),
            ev(2, 1, TraceKind::Install).with_mp(5).with_aux(2),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("writable copy installed")),
            "expected a double-writer violation, got {v:?}"
        );
    }

    #[test]
    fn repeated_forward_of_same_request_is_caught() {
        let fwd = |seq: u64, host: u16| {
            ev(seq, host, TraceKind::AdaptForward)
                .with_mp(5)
                .with_peer(HostId(2))
                .with_event(77)
                .with_aux(1)
        };
        // Distinct shards may each forward the request once (a chain of
        // migrations); the same shard seeing it twice is a loop.
        let clean = vec![fwd(0, 0), fwd(1, 1)];
        assert_eq!(audit(&clean, AuditMode::SwMr), Vec::<String>::new());
        let looping = vec![fwd(0, 0), fwd(1, 0)];
        let v = audit(&looping, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("forwarding loop")),
            "expected a forwarding-loop violation, got {v:?}"
        );
    }

    #[test]
    fn merge_retires_first_sibling_and_seeds_result() {
        let events = vec![
            ev(0, 0, TraceKind::WindowOpen).with_mp(1),
            ev(1, 0, TraceKind::WindowClose).with_mp(1),
            ev(2, 0, TraceKind::AdaptMerge)
                .with_mp(1)
                .with_aux(2)
                .with_event(6),
            // The merge result is writable at h0; a conflicting writable
            // install on h1 without invalidation is a violation.
            ev(3, 1, TraceKind::Install).with_mp(6).with_aux(2),
        ];
        let v = audit(&events, AuditMode::SwMr);
        assert!(
            v.iter().any(|s| s.contains("writable copy installed")),
            "expected a double-writer violation on the merge result, got {v:?}"
        );
    }

    #[test]
    fn replay_uses_record_order_not_virtual_time() {
        // A virtual-time inversion: the second window's events carry
        // *earlier* virtual stamps (the optimistic simulation served the
        // logically-past request "back then"), but record order shows the
        // windows were strictly sequential. Sorting by vt would misread
        // this as a double-open.
        let mk = |seq: u64, vt: u64, kind| {
            let mut e = TraceEvent::new(vt, HostId(0), Track::Shard, kind).with_mp(5);
            e.seq = seq;
            e
        };
        let events = vec![
            mk(0, 50_000_000, TraceKind::WindowOpen),
            mk(1, 51_000_000, TraceKind::WindowClose),
            mk(2, 10_000_000, TraceKind::WindowOpen),
            mk(3, 11_000_000, TraceKind::WindowClose),
        ];
        assert_eq!(audit(&events, AuditMode::SwMr), Vec::<String>::new());
    }
}
