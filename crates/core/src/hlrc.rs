//! Home-based eager release consistency (§5, "Reduced-Consistency
//! Protocols").
//!
//! "When the minipages defined for a certain application are larger than
//! the sharing unit, i.e., the chunking level is set higher than one,
//! performance may benefit from employing reduced-consistency protocols
//! ... Thus, chunking reduces the overhead involved in fine-grain
//! operation, while false-sharing is eliminated through the reduced
//! consistency protocol."
//!
//! The implemented protocol (selected with
//! [`Consistency::HomeEagerRc`] in [`ClusterConfig`]) is a Munin-style
//! eager, home-based release consistency on top of the twin/diff machinery
//! of [`crate::diff`]:
//!
//! * every minipage has a *home* (the manager host) whose copy is always
//!   current at synchronization points;
//! * a read miss fetches a read copy from the home (always one hop);
//! * a write miss **upgrades locally**: the host twins its copy and opens
//!   the protection itself — no ownership transfer, so several hosts can
//!   write disjoint parts of one (chunked) minipage concurrently;
//! * at every release (barrier entry, lock release) the host diffs its
//!   dirty minipages against their twins and ships the run-length diffs to
//!   the home, which patches its copy and invalidates the other copies;
//! * ordering needs no extra acknowledgements: diffs precede the
//!   `BarrierEnter`/`LockRelease` on the same FIFO channel, and the
//!   invalidations precede the barrier release / next lock grant on the
//!   manager's FIFO channels to each host, so a data-race-free program
//!   never observes a stale byte after synchronizing.
//!
//! Cost-wise this is exactly the §4.2 trade the paper measures: each
//! flushed page pays the diff-creation time (250 µs per 4 KB) that the
//! thin sequential-consistency protocol avoids.
//!
//! [`ClusterConfig`]: crate::ClusterConfig

use crate::diff::Twin;
use multiview::MinipageId;
use sim_mem::VAddr;
use std::collections::HashMap;

/// Which coherence protocol the cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Consistency {
    /// Figure 3's Single-Writer/Multiple-Readers sequential consistency —
    /// the paper's Millipage protocol.
    #[default]
    SequentialSwMr,
    /// The §5 extension: home-based eager release consistency with twins
    /// and run-length diffs.
    HomeEagerRc,
}

/// Minipage boundary information a host caches from manager-translated
/// replies (non-manager hosts have no MPT; this cache is their window
/// into it).
#[derive(Clone, Copy, Debug)]
pub(crate) struct MpInfo {
    pub id: MinipageId,
    pub base: VAddr,
    pub len: usize,
    pub priv_base: VAddr,
}

/// A locally writable (twinned) minipage awaiting its release flush.
pub(crate) struct RcDirty {
    pub info: MpInfo,
    pub twin: Twin,
}

/// Per-host release-consistency state.
#[derive(Default)]
pub(crate) struct RcState {
    /// Boundary cache: every covered global vpage → minipage info.
    pub boundaries: HashMap<usize, MpInfo>,
    /// Twinned dirty minipages by minipage id.
    pub dirty: HashMap<u32, RcDirty>,
}

impl RcState {
    /// Records a minipage's boundaries for all its vpages.
    pub fn learn(&mut self, vpages: std::ops::Range<usize>, info: MpInfo) {
        for vp in vpages {
            self.boundaries.insert(vp, info);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_consistency_is_sw_mr() {
        assert_eq!(Consistency::default(), Consistency::SequentialSwMr);
    }

    #[test]
    fn learn_covers_every_vpage() {
        let mut rc = RcState::default();
        let info = MpInfo {
            id: MinipageId(3),
            base: VAddr(0x1000),
            len: 8192,
            priv_base: VAddr(0x9000),
        };
        rc.learn(10..13, info);
        assert_eq!(rc.boundaries.len(), 3);
        assert_eq!(rc.boundaries[&11].id, MinipageId(3));
    }
}
