//! Distributed minipage management: home assignment and routing.
//!
//! The paper centralizes all minipage management in one manager host
//! (§3.3) and already anticipates the fix for the resulting hot spot:
//! "the manager may become a bottleneck ... this problem can be solved by
//! distributing the minipage management among several managers" (§5).
//! This module implements that distribution. Every minipage gets a *home*
//! host chosen by a [`HomePolicy`] at allocation time; the home's
//! [`ManagerShard`](crate::Manager) owns the minipage's directory entry,
//! service window and (under release consistency) master copy. The MPT is
//! replicated read-only to every host ([`SharedMpt`]), so translating a
//! faulting address and finding its home stay local lookups.
//!
//! Synchronization services (barriers, queue locks) and the shared
//! allocator stay on the single manager host: they are not per-minipage
//! state and are not what Figure 7's competing-request hot spot measures.

use multiview::{Minipage, MinipageId, SharedMpt};
use parking_lot::RwLock;
use sim_core::HostId;
use sim_mem::{Geometry, VAddr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Chooses the home host of each freshly allocated minipage.
///
/// Policies see the allocation metadata the `multiview` allocator
/// produces — the dense [`MinipageId`] and the host that issued the
/// allocation — and must be pure: the same inputs always give the same
/// home, so every host can replay the assignment deterministically.
pub trait HomePolicy: Send + Sync {
    /// Human-readable policy name (reports, benches).
    fn name(&self) -> &'static str;

    /// The home host for minipage `id` allocated by `allocating` in a
    /// cluster of `hosts` hosts.
    fn assign(&self, id: MinipageId, allocating: HostId, hosts: usize) -> HostId;
}

/// Every minipage homed at the single manager host — bit-for-bit the
/// paper's original centralized manager (§3.3).
pub struct Centralized {
    /// The manager host.
    pub manager: HostId,
}

impl HomePolicy for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn assign(&self, _id: MinipageId, _allocating: HostId, _hosts: usize) -> HostId {
        self.manager
    }
}

/// Homes spread round-robin over the hosts by minipage id — the classic
/// static interleaving that splits directory load evenly regardless of
/// access pattern.
pub struct Interleaved;

impl HomePolicy for Interleaved {
    fn name(&self) -> &'static str {
        "interleaved"
    }

    fn assign(&self, id: MinipageId, _allocating: HostId, hosts: usize) -> HostId {
        HostId((id.index() % hosts) as u16)
    }
}

/// Each minipage homed at the host that allocated it, on the heuristic
/// that the allocator is also the principal writer. Setup-phase
/// allocations are issued by the manager and therefore stay there.
pub struct FirstTouch;

impl HomePolicy for FirstTouch {
    fn name(&self) -> &'static str {
        "first-touch"
    }

    fn assign(&self, _id: MinipageId, allocating: HostId, _hosts: usize) -> HostId {
        allocating
    }
}

/// Config-friendly selector for the built-in policies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomePolicyKind {
    /// [`Centralized`]: everything on the manager host (the default, and
    /// the paper's original protocol).
    #[default]
    Centralized,
    /// [`Interleaved`]: round-robin by minipage id.
    Interleaved,
    /// [`FirstTouch`]: home = allocating host.
    FirstTouch,
}

impl HomePolicyKind {
    /// Instantiates the policy (`manager` anchors [`Centralized`]).
    pub fn build(self, manager: HostId) -> Box<dyn HomePolicy> {
        match self {
            HomePolicyKind::Centralized => Box::new(Centralized { manager }),
            HomePolicyKind::Interleaved => Box::new(Interleaved),
            HomePolicyKind::FirstTouch => Box::new(FirstTouch),
        }
    }
}

/// The cluster-wide home map: policy, assignments, and the replicated
/// MPT, shared by every host's server, shard and application context.
///
/// The allocator host is the single writer (it publishes each minipage
/// and its home as it allocates); everyone else only reads. Under the
/// [`Centralized`] policy, routing short-circuits to the manager without
/// touching the replica at all, so the original protocol's costs and
/// counters are reproduced exactly.
pub struct HomeTable {
    kind: HomePolicyKind,
    policy: Box<dyn HomePolicy>,
    hosts: usize,
    manager: HostId,
    geo: Geometry,
    mpt: SharedMpt,
    homes: RwLock<Vec<HostId>>,
    /// Migratory overrides layered over the policy assignment: minipages
    /// whose home was moved (or pinned at publish time) by the adaptation
    /// engine. Consulted only when `epoch != 0`, so un-adapted runs keep
    /// the original lookup cost and the Centralized fast path.
    overrides: RwLock<HashMap<u32, HostId>>,
    /// Home-map version: 0 until the first migration/pin, bumped on each.
    /// A request served under an older epoch may reach a stale home; the
    /// stale shard forwards it to the current home rather than serving it.
    epoch: AtomicU64,
}

impl HomeTable {
    /// Builds the table for a cluster of `hosts` hosts managed by
    /// `manager`.
    pub(crate) fn new(kind: HomePolicyKind, hosts: usize, manager: HostId, geo: Geometry) -> Self {
        Self {
            kind,
            policy: kind.build(manager),
            hosts,
            manager,
            geo,
            mpt: SharedMpt::new(),
            homes: RwLock::new(Vec::new()),
            overrides: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// The configured policy selector.
    pub fn kind(&self) -> HomePolicyKind {
        self.kind
    }

    /// The policy's human-readable name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The host running the allocator and synchronization services.
    pub fn manager(&self) -> HostId {
        self.manager
    }

    /// The replicated minipage table.
    pub fn mpt(&self) -> &SharedMpt {
        &self.mpt
    }

    /// The shared address-space geometry.
    pub(crate) fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Registers a freshly allocated minipage: replicates its descriptor
    /// and assigns its home. Called by the allocator host only.
    pub(crate) fn publish(&self, mp: Minipage, allocating: HostId) -> HostId {
        let home = self.policy.assign(mp.id, allocating, self.hosts);
        assert!(home.index() < self.hosts, "policy assigned an absent host");
        let mut homes = self.homes.write();
        assert_eq!(
            homes.len(),
            mp.id.index(),
            "homes are assigned in dense id order"
        );
        homes.push(home);
        self.mpt.publish(&self.geo, mp);
        home
    }

    /// The home host of a minipage. Migratory overrides win over the
    /// policy assignment; the override map is only consulted once a
    /// migration has actually happened (`epoch != 0`).
    pub fn home(&self, id: MinipageId) -> HostId {
        if self.epoch.load(Ordering::Acquire) != 0 {
            if let Some(&h) = self.overrides.read().get(&id.0) {
                return h;
            }
        }
        if self.kind == HomePolicyKind::Centralized {
            return self.manager;
        }
        self.homes.read()[id.index()]
    }

    /// The home-map version: 0 until the first migration, bumped on each.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Moves `id`'s home to `to`, bumping the epoch. Returns the new
    /// epoch. The caller (the adaptation engine, at a quiesce point) is
    /// responsible for moving the directory entry and master copy; the
    /// table only redirects future routing. Requests already in flight to
    /// the old home are *forwarded* by the stale shard under the new
    /// epoch, so no window is served from stale directory state.
    pub(crate) fn migrate(&self, id: MinipageId, to: HostId) -> u64 {
        assert!(to.index() < self.hosts, "migrating to an absent host");
        self.overrides.write().insert(id.0, to);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Registers a minipage at an explicit, pre-decided home — how split
    /// children and merged minipages inherit the retired entry's home
    /// under *any* policy. Counts as a migration when the pinned home
    /// differs from what the policy would have assigned.
    pub(crate) fn publish_at(&self, mp: Minipage, home: HostId) {
        assert!(home.index() < self.hosts, "pinning to an absent host");
        {
            let mut homes = self.homes.write();
            assert_eq!(
                homes.len(),
                mp.id.index(),
                "homes are assigned in dense id order"
            );
            homes.push(home);
        }
        if self.kind == HomePolicyKind::Centralized && home != self.manager {
            // The Centralized fast path never reads `homes`; route the
            // pinned minipage through the override layer instead.
            self.overrides.write().insert(mp.id.0, home);
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Routes a faulting address to its home shard. Returns the home and
    /// whether a local MPT lookup was needed (callers charge the
    /// `mpt_lookup` cost for it); the centralized fast path routes
    /// straight to the manager with no lookup, exactly like the original
    /// protocol — until the first migration, after which even Centralized
    /// must translate to consult the override layer.
    pub fn route(&self, addr: VAddr) -> (HostId, bool) {
        if self.kind == HomePolicyKind::Centralized && self.epoch.load(Ordering::Acquire) == 0 {
            return (self.manager, false);
        }
        let mp = self
            .mpt
            .translate(&self.geo, addr)
            .unwrap_or_else(|| panic!("no minipage at {addr}"));
        (self.home(mp.id), true)
    }

    /// Translates an address through the local MPT replica.
    pub(crate) fn translate(&self, addr: VAddr) -> Option<Minipage> {
        self.mpt.translate(&self.geo, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_assigns_manager_everywhere() {
        let p = Centralized { manager: HostId(3) };
        for id in 0..10 {
            assert_eq!(p.assign(MinipageId(id), HostId(5), 8), HostId(3));
        }
    }

    #[test]
    fn interleaved_round_robins_by_id() {
        let p = Interleaved;
        let homes: Vec<_> = (0..6)
            .map(|id| p.assign(MinipageId(id), HostId(0), 4).index())
            .collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn first_touch_follows_the_allocator() {
        let p = FirstTouch;
        assert_eq!(p.assign(MinipageId(9), HostId(6), 8), HostId(6));
        assert_eq!(p.assign(MinipageId(9), HostId(0), 8), HostId(0));
    }

    #[test]
    fn home_table_publishes_and_routes() {
        let geo = Geometry::new(8, 4);
        let table = HomeTable::new(HomePolicyKind::Interleaved, 4, HostId(0), geo.clone());
        for id in 0..3u32 {
            let mp = Minipage {
                id: MinipageId(id),
                base: geo.addr_of(id as usize, 0, id as usize * 64),
                len: 64,
                view: id as usize,
                first_page: 0,
                offset: id as usize * 64,
            };
            let home = table.publish(mp, HostId(0));
            assert_eq!(home.index(), id as usize % 4);
        }
        assert_eq!(table.home(MinipageId(2)), HostId(2));
        let (home, looked_up) = table.route(geo.addr_of(1, 0, 64 + 7));
        assert_eq!(home, HostId(1));
        assert!(looked_up);
    }

    #[test]
    fn centralized_routing_skips_the_lookup() {
        let geo = Geometry::new(4, 2);
        let table = HomeTable::new(HomePolicyKind::Centralized, 4, HostId(0), geo.clone());
        // No minipage published at this address: the fast path must not
        // consult the replica at all.
        let (home, looked_up) = table.route(geo.addr_of(0, 0, 0));
        assert_eq!(home, HostId(0));
        assert!(!looked_up);
    }

    fn mp_at(geo: &Geometry, id: u32, view: usize, page: usize) -> Minipage {
        Minipage {
            id: MinipageId(id),
            base: geo.addr_of(view, page, 0),
            len: 64,
            view,
            first_page: page,
            offset: 0,
        }
    }

    /// Migration overrides win over every policy, bump the epoch, and —
    /// under Centralized — force routing through the translate path so the
    /// override layer is actually consulted.
    #[test]
    fn migration_overrides_every_policy() {
        for kind in [
            HomePolicyKind::Centralized,
            HomePolicyKind::Interleaved,
            HomePolicyKind::FirstTouch,
        ] {
            let geo = Geometry::new(8, 4);
            let table = HomeTable::new(kind, 4, HostId(0), geo.clone());
            table.publish(mp_at(&geo, 0, 0, 0), HostId(0));
            assert_eq!(table.epoch(), 0);
            let before = table.home(MinipageId(0));
            let to = HostId((before.index() as u16 + 1) % 4);
            assert_eq!(table.migrate(MinipageId(0), to), 1);
            assert_eq!(table.home(MinipageId(0)), to, "{kind:?}");
            assert_eq!(table.epoch(), 1);
            let (routed, looked_up) = table.route(geo.addr_of(0, 0, 7));
            assert_eq!(routed, to, "{kind:?}: route ignored the override");
            assert!(looked_up, "{kind:?}: post-migration route must translate");
        }
    }

    /// Pinned publication (split children inheriting the parent's home)
    /// sticks under any policy, including the Centralized fast path.
    #[test]
    fn publish_at_pins_the_home() {
        for kind in [
            HomePolicyKind::Centralized,
            HomePolicyKind::Interleaved,
            HomePolicyKind::FirstTouch,
        ] {
            let geo = Geometry::new(8, 4);
            let table = HomeTable::new(kind, 4, HostId(0), geo.clone());
            table.publish(mp_at(&geo, 0, 0, 0), HostId(0));
            table.publish_at(mp_at(&geo, 1, 1, 0), HostId(3));
            assert_eq!(table.home(MinipageId(1)), HostId(3), "{kind:?}");
        }
    }
}
