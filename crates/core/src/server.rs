//! The per-host DSM server thread (§3.5.1).
//!
//! Each host runs one server loop standing in for the paper's poller +
//! sweeper + timer trio: it receives protocol messages, models the polling
//! delay through [`ServerTimeline`], serves data requests through the
//! privileged view, installs replies (zero-copy receive straight into the
//! privileged view), and wakes blocked application threads. Every server
//! also carries its host's [`ManagerShard`]: requests for minipages homed
//! here are handled in place, and protocol replies are routed to the
//! responsible home shard through the cluster's [`HomeTable`].

use crate::hlrc::{Consistency, MpInfo};
use crate::home::{HomePolicyKind, HomeTable};
use crate::host::{HostState, Waiter};
use crate::manager::ManagerShard;
use crate::msg::{Completion, MsgKind, Pmsg};
use bytes::Bytes;
use sim_core::trace::{TraceKind, TraceRecorder};
use sim_core::{CostModel, LogHistogram};
use sim_mem::Prot;
use sim_net::{Endpoint, RecvError, ServerTimeline};
use std::sync::Arc;

/// What a server thread hands back when it stops.
pub(crate) struct ServerOutcome {
    /// This host's manager shard (directory slice, counters).
    pub shard: ManagerShard,
    /// Arrival→service-start delays of every packet this server handled.
    pub queue_delay: LogHistogram,
    /// The endpoint is kept alive until every server has stopped so that
    /// late messages from still-draining peers never hit a closed channel.
    #[expect(dead_code)]
    pub endpoint: Endpoint<Pmsg>,
}

/// Runs one host's DSM server until shutdown.
pub(crate) fn server_loop(
    ep: Endpoint<Pmsg>,
    state: Arc<HostState>,
    cost: CostModel,
    consistency: Consistency,
    mut timeline: ServerTimeline,
    mut shard: ManagerShard,
    mut rec: TraceRecorder,
) -> ServerOutcome {
    let home = Arc::clone(shard.home_table());
    loop {
        let pkt = match ep.recv() {
            Ok(p) => p,
            Err(RecvError::Disconnected) => break,
            Err(RecvError::Empty) => unreachable!("blocking recv"),
        };
        if matches!(pkt.msg.kind, MsgKind::Shutdown) {
            break;
        }
        // §3.5.1: if the application threads were computing at the
        // message's (virtual) arrival, only the (jittery) sweeper sees
        // it. Hosts parked in barriers/locks/faults record no busy burst
        // and read as idle; self-addressed messages (a shard forwarding
        // to its own server) find the server already running.
        let busy = pkt.from != ep.host() && state.busy.busy_at(pkt.arrival_vt);
        if trace_enabled() {
            eprintln!(
                "[trace h{} <- {}] {:?} ev={} mp={} addr={} len={}",
                ep.host().index(),
                pkt.from,
                pkt.msg.kind,
                pkt.msg.event,
                pkt.msg.minipage,
                pkt.msg.addr,
                pkt.msg.len,
            );
        }
        if rec.enabled() {
            let (from, event, mp, bytes) = (
                pkt.from,
                pkt.msg.event,
                pkt.msg.minipage.0,
                pkt.payload_bytes,
            );
            rec.emit(pkt.arrival_vt, TraceKind::MsgRecv, |e| {
                e.with_peer(from)
                    .with_event(event)
                    .with_mp(mp)
                    .with_bytes(bytes)
            });
        }
        timeline.begin_service(pkt.arrival_vt, busy);
        dispatch(
            pkt.msg,
            &state,
            &cost,
            consistency,
            &mut timeline,
            &mut shard,
            &home,
            &ep,
            &mut rec,
        );
    }
    ServerOutcome {
        shard,
        queue_delay: timeline.take_queue_delay(),
        endpoint: ep,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    consistency: Consistency,
    tl: &mut ServerTimeline,
    shard: &mut ManagerShard,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) {
    use MsgKind::*;
    match m.kind {
        ReadRequest | WriteRequest | InvalidateReply | Ack | AllocRequest | BarrierEnter
        | LockAcquire | LockRelease | PushRequest | RcDiff => shard.handle(m, tl, ep),
        ServeRead => serve_read(m, state, cost, tl, ep, rec),
        ServeWrite => serve_write(m, state, cost, tl, ep, rec),
        InvalidateRequest => handle_invalidate(m, state, cost, consistency, tl, home, ep, rec),
        ReadReply | WriteReply => handle_data_reply(m, state, cost, tl, home, ep, rec),
        AllocReply | BarrierRelease | LockGrant | RcDiffAck => fulfill_simple(m, state, cost, tl),
        PushData => handle_push_data(m, state, cost, tl, rec),
        Shutdown => unreachable!("handled by the loop"),
    }
}

/// Whether `MILLIPAGE_TRACE` protocol tracing is on (debugging aid).
fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("MILLIPAGE_TRACE").is_some())
}

/// The global vpages covered by the minipage named in a translated message.
fn vpages_of(m: &Pmsg, state: &HostState) -> std::ops::Range<usize> {
    state
        .space
        .geometry()
        .vpages_covering(m.base, m.len)
        .expect("manager-translated minipages are in range")
        .1
}

/// Figure 3 "Handle Read Request": downgrade a writable copy to read-only
/// and send the minipage straight out of the privileged view.
fn serve_read(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) {
    tl.charge(cost.dsm_overhead);
    tl.charge(cost.get_protection);
    let mut downgraded = false;
    for vp in vpages_of(&m, state) {
        if state.space.prot(vp) == Prot::ReadWrite {
            state
                .space
                .set_prot(vp, Prot::ReadOnly)
                .expect("application vpage");
            tl.charge(cost.set_protection);
            downgraded = true;
        }
    }
    if downgraded {
        rec.emit(tl.now(), TraceKind::Downgrade, |e| e.with_mp(m.minipage.0));
    }
    rec.emit(tl.now(), TraceKind::Serve, |e| {
        e.with_mp(m.minipage.0).with_peer(m.from).with_aux(0)
    });
    let data = state
        .space
        .priv_read(m.priv_base, m.len)
        .expect("translated minipage in range");
    let mut reply = m;
    reply.kind = MsgKind::ReadReply;
    reply.data = Bytes::from(data);
    let to = reply.from;
    let payload = reply.payload_bytes();
    ep.send(to, reply, payload, tl.now());
}

/// Figure 3 "Handle Write Request": invalidate the local copy, then send
/// the minipage to the writer.
fn serve_write(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) {
    tl.charge(cost.dsm_overhead);
    // NoAccess first: once the bytes leave, local threads must fault.
    for vp in vpages_of(&m, state) {
        state
            .space
            .set_prot(vp, Prot::NoAccess)
            .expect("application vpage");
        tl.charge(cost.set_protection);
    }
    rec.emit(tl.now(), TraceKind::InvalidateLocal, |e| {
        e.with_mp(m.minipage.0)
    });
    rec.emit(tl.now(), TraceKind::Serve, |e| {
        e.with_mp(m.minipage.0).with_peer(m.from).with_aux(1)
    });
    let data = state
        .space
        .priv_read(m.priv_base, m.len)
        .expect("translated minipage in range");
    let mut reply = m;
    reply.kind = MsgKind::WriteReply;
    reply.data = Bytes::from(data);
    let to = reply.from;
    let payload = reply.payload_bytes();
    ep.send(to, reply, payload, tl.now());
}

/// Figure 3 "Handle Invalidate Request".
///
/// Under release consistency there is a twist: if the invalidated
/// minipage is locally dirty (twinned, mid-phase), its writes-so-far are
/// diffed out and shipped to the minipage's home *before* the copy dies,
/// so no update is lost. Under the centralized policy no reply is sent
/// (HLRC invalidations ride FIFO ordering to the single manager); with
/// distributed homes the home shard counts replies before acknowledging
/// the flusher, so one is sent either way.
#[allow(clippy::too_many_arguments)]
fn handle_invalidate(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    consistency: Consistency,
    tl: &mut ServerTimeline,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) {
    rec.emit(tl.now(), TraceKind::InvalidateLocal, |e| {
        e.with_mp(m.minipage.0).with_event(m.event)
    });
    if consistency == Consistency::HomeEagerRc {
        let dirty = state.rc.lock().dirty.remove(&m.minipage.0);
        if let Some(d) = dirty {
            let data = state
                .space
                .snapshot_and_protect(d.info.base, d.info.len, Prot::NoAccess)
                .expect("translated minipage in range");
            let diff = d.twin.diff(&data);
            tl.charge(cost.diff_time(d.info.len));
            tl.charge(cost.set_protection);
            if !diff.is_empty() {
                let mut out = Pmsg::new(MsgKind::RcDiff, ep.host(), 0).with_addr(d.info.base);
                out.minipage = d.info.id;
                out.base = d.info.base;
                out.len = d.info.len;
                out.priv_base = d.info.priv_base;
                out.data = Bytes::from(diff.encode());
                let payload = out.payload_bytes();
                // Eviction diff: event 0, fire-and-forget (aux 0 marks it
                // as not awaiting an RcDiffAck).
                rec.emit(tl.now(), TraceKind::RcDiffSend, |e| {
                    e.with_mp(d.info.id.0).with_bytes(payload).with_aux(0)
                });
                ep.send(home.home(d.info.id), out, payload, tl.now());
            }
        } else {
            for vp in vpages_of(&m, state) {
                state
                    .space
                    .set_prot(vp, Prot::NoAccess)
                    .expect("application vpage");
                tl.charge(cost.set_protection);
            }
        }
        state.counters.invalidations_received.bump();
        if home.kind() != HomePolicyKind::Centralized {
            // The home shard is counting confirmations before it releases
            // the flusher; FIFO on this channel puts the confirmation
            // behind any eviction diff sent above.
            let mut reply = Pmsg::new(MsgKind::InvalidateReply, ep.host(), m.event);
            reply.minipage = m.minipage;
            reply.addr = m.addr;
            ep.send(home.home(m.minipage), reply, 0, tl.now());
        }
        return;
    }
    for vp in vpages_of(&m, state) {
        state
            .space
            .set_prot(vp, Prot::NoAccess)
            .expect("application vpage");
        tl.charge(cost.set_protection);
    }
    state.counters.invalidations_received.bump();
    let mut reply = Pmsg::new(MsgKind::InvalidateReply, ep.host(), m.event);
    reply.minipage = m.minipage;
    reply.addr = m.addr;
    // The reply goes to the shard homing the minipage — the one that sent
    // the invalidation.
    ep.send(home.home(m.minipage), reply, 0, tl.now());
}

/// Figure 3 "Handle Read or Write Reply": receive the minipage contents
/// directly into the privileged view (no buffer copy), open the
/// protection, and wake the faulting thread.
fn handle_data_reply(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) {
    tl.charge(cost.dsm_overhead);
    state
        .space
        .priv_write(m.priv_base, &m.data)
        .expect("translated minipage in range");
    // aux 1 = read-only copy installed, aux 2 = writable copy installed.
    let aux = if m.kind == MsgKind::ReadReply { 1 } else { 2 };
    rec.emit(tl.now(), TraceKind::Install, |e| {
        e.with_mp(m.minipage.0).with_event(m.event).with_aux(aux)
    });
    // Cache the manager's translation: the host-side minipage boundary
    // knowledge that the release-consistency write path relies on.
    state.rc.lock().learn(
        vpages_of(&m, state),
        MpInfo {
            id: m.minipage,
            base: m.base,
            len: m.len,
            priv_base: m.priv_base,
        },
    );
    let prot = if m.kind == MsgKind::ReadReply {
        Prot::ReadOnly
    } else {
        Prot::ReadWrite
    };
    for vp in vpages_of(&m, state) {
        state.space.set_prot(vp, prot).expect("application vpage");
        tl.charge(cost.set_protection);
    }
    tl.charge(cost.event_signal);
    if m.prefetch {
        // Nobody blocks on a prefetch; wake opportunistic sleepers and
        // close the service window ourselves.
        let mut sleepers: Vec<Arc<Waiter>> = Vec::new();
        {
            let mut pf = state.prefetch_waiters.lock();
            for vp in vpages_of(&m, state) {
                if let Some(w) = pf.remove(&vp) {
                    if !sleepers.iter().any(|s| Arc::ptr_eq(s, &w)) {
                        sleepers.push(w);
                    }
                }
            }
        }
        for w in sleepers {
            w.fulfill(Completion {
                resume_vt: tl.now(),
                addr: m.addr,
            });
        }
        let ack = Pmsg::new(MsgKind::Ack, ep.host(), 0).with_addr(m.addr);
        ep.send(home.home(m.minipage), ack, 0, tl.now());
    } else {
        let w = state
            .waiters
            .lock()
            .remove(&m.event)
            .expect("a waiter registered before the request went out");
        w.fulfill(Completion {
            resume_vt: tl.now(),
            addr: m.addr,
        });
    }
}

/// Wakes the thread blocked on an allocation, barrier, lock, or
/// diff-flush event.
fn fulfill_simple(m: Pmsg, state: &Arc<HostState>, cost: &CostModel, tl: &mut ServerTimeline) {
    tl.charge(cost.event_signal);
    let w = state
        .waiters
        .lock()
        .remove(&m.event)
        .expect("a waiter registered before the request went out");
    w.fulfill(Completion {
        resume_vt: tl.now(),
        addr: m.addr,
    });
}

/// Installs a pushed read copy (§4.3).
fn handle_push_data(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    rec: &mut TraceRecorder,
) {
    state
        .space
        .priv_write(m.priv_base, &m.data)
        .expect("translated minipage in range");
    rec.emit(tl.now(), TraceKind::Install, |e| {
        e.with_mp(m.minipage.0).with_aux(1)
    });
    for vp in vpages_of(&m, state) {
        state
            .space
            .set_prot(vp, Prot::ReadOnly)
            .expect("application vpage");
        tl.charge(cost.set_protection);
    }
    state.counters.pushes_received.bump();
}
