//! The per-host DSM server thread (§3.5.1).
//!
//! Each host runs one server loop standing in for the paper's poller +
//! sweeper + timer trio: it receives protocol messages, models the polling
//! delay through [`ServerTimeline`], serves data requests through the
//! privileged view, installs replies (zero-copy receive straight into the
//! privileged view), and wakes blocked application threads. Every server
//! also carries its host's [`ManagerShard`]: requests for minipages homed
//! here are handled in place, and protocol replies are routed to the
//! responsible home shard through the cluster's [`HomeTable`].
//!
//! Handlers return `Result<(), ProtocolError>` rather than asserting the
//! wire is reliable: a failed handler is recorded on the run report, the
//! blocked requester is nacked (or its local waiter failed), and the
//! server keeps serving — a lossy link degrades one request, not the
//! whole host.

use crate::backend::{
    bad_priv, bad_vpage, protect_range, read_priv, vpage_range, write_priv, MemoryBackend,
    PageProt, ProtoClock, Transport,
};
use crate::error::ProtocolError;
use crate::hlrc::{Consistency, MpInfo};
use crate::home::{HomePolicyKind, HomeTable};
use crate::host::{HostState, Waiter};
use crate::manager::ManagerShard;
use crate::msg::{Completion, MsgKind, Pmsg};
use bytes::Bytes;
use sim_core::clock::Ns;
use sim_core::sched::{BlockOutcome, SchedThread};
use sim_core::trace::{TraceKind, TraceRecorder};
use sim_core::{CostModel, HostId, LogHistogram, VAddr};
use sim_net::{Endpoint, RecvError, ServerTimeline};
use std::sync::Arc;

/// What a server thread hands back when it stops.
pub(crate) struct ServerOutcome {
    /// This host's manager shard (directory slice, counters).
    pub shard: ManagerShard,
    /// Arrival→service-start delays of every packet this server handled.
    pub queue_delay: LogHistogram,
    /// Protocol errors this server degraded through (empty on a clean
    /// wire), in occurrence order.
    pub errors: Vec<String>,
    /// The endpoint is kept alive until every server has stopped so that
    /// late messages from still-draining peers never hit a closed channel.
    #[expect(dead_code)]
    pub endpoint: Endpoint<Pmsg>,
}

/// Runs one host's DSM server until shutdown.
#[allow(clippy::too_many_arguments)]
pub(crate) fn server_loop(
    ep: Endpoint<Pmsg>,
    state: Arc<HostState>,
    cost: CostModel,
    consistency: Consistency,
    mut timeline: ServerTimeline,
    mut shard: ManagerShard,
    mut rec: TraceRecorder,
    sched: SchedThread,
    bug_stale_reinstall: bool,
) -> ServerOutcome {
    let home = Arc::clone(shard.home_table());
    let mut errors: Vec<String> = Vec::new();
    // Under an active fault plane the reliable channel can resequence a
    // window-closing `Ack` *behind* the controller's `Shutdown` (they
    // travel on different links). Drain the inbox after `Shutdown` so
    // those stragglers still close their directory windows.
    let mut draining = false;
    loop {
        let pkt = if draining {
            match ep.try_recv() {
                Ok(p) => p,
                Err(_) => break,
            }
        } else if sched.enabled() {
            // Cooperative receive: one handler dispatch per scheduling
            // step (the dispatch boundary is the server's yield point —
            // handlers themselves run atomically, as in the real system).
            sched.yield_now(timeline.now());
            match sched.block_until(timeline.now(), || match ep.try_recv() {
                Ok(p) => Some(Ok(p)),
                Err(RecvError::Empty) => None,
                Err(RecvError::Disconnected) => Some(Err(())),
            }) {
                BlockOutcome::Ready(Ok(p)) => p,
                // Disconnected, or the schedule deadlocked and the run is
                // tearing down; either way the server is done.
                BlockOutcome::Ready(Err(())) | BlockOutcome::Poisoned => break,
            }
        } else {
            match ep.recv() {
                Ok(p) => p,
                Err(RecvError::Disconnected) => break,
                Err(RecvError::Empty) => unreachable!("blocking recv"),
            }
        };
        if matches!(pkt.msg.kind, MsgKind::Shutdown) {
            if ep.network().fault_active() {
                draining = true;
                continue;
            }
            break;
        }
        // Under the conservative delivery gate a packet only becomes
        // visible at its release stamp (the link-FIFO cumulative maximum
        // of arrivals); service must not start before it. `release_vt` is
        // 0 whenever the gate is inactive, so this is the plain arrival
        // stamp in free-threaded and exploration modes.
        let seen_vt = pkt.arrival_vt.max(pkt.release_vt);
        // §3.5.1: if the application threads were computing at the
        // message's (virtual) arrival, only the (jittery) sweeper sees
        // it. Hosts parked in barriers/locks/faults record no busy burst
        // and read as idle; self-addressed messages (a shard forwarding
        // to its own server) find the server already running.
        let busy = pkt.from != ep.host() && state.busy.busy_at(seen_vt);
        if trace_enabled() {
            eprintln!(
                "[trace h{} <- {}] {:?} ev={} mp={} addr={} len={}",
                ep.host().index(),
                pkt.from,
                pkt.msg.kind,
                pkt.msg.event,
                pkt.msg.minipage,
                pkt.msg.addr,
                pkt.msg.len,
            );
        }
        if rec.enabled() {
            let (from, event, mp, bytes, seq) = (
                pkt.from,
                pkt.msg.event,
                pkt.msg.minipage.0,
                pkt.payload_bytes,
                pkt.wire_seq,
            );
            rec.emit(pkt.arrival_vt, TraceKind::MsgRecv, |e| {
                e.with_peer(from)
                    .with_event(event)
                    .with_mp(mp)
                    .with_bytes(bytes)
                    .with_aux(seq as u32)
            });
        }
        let clamps_before = timeline.clamp_events();
        timeline.begin_service(seen_vt, busy);
        // A clamp means the virtual-time model produced a negative queue
        // delay (arrival after service start); it is silently floored to
        // zero but no longer silently *uncounted*.
        if timeline.clamp_events() > clamps_before && rec.enabled() {
            rec.emit(pkt.arrival_vt, TraceKind::DelayClamped, |e| {
                e.with_peer(pkt.from).with_event(pkt.msg.event)
            });
        }
        let (kind, from, event, addr) = (pkt.msg.kind, pkt.msg.from, pkt.msg.event, pkt.msg.addr);
        if let Err(e) = dispatch(
            pkt.msg,
            pkt.from,
            &state,
            &cost,
            consistency,
            &mut timeline,
            &mut shard,
            &home,
            &ep,
            &mut rec,
            bug_stale_reinstall,
        ) {
            errors.push(e.to_string());
            if matches!(e, ProtocolError::Timeout { .. }) {
                rec.emit(timeline.now(), TraceKind::TimeoutFired, |ev| {
                    ev.with_event(event)
                });
            }
            surface_error(kind, from, event, addr, e, &state, &ep, &mut timeline);
        }
        // The handler may have fulfilled or failed a waiter: a blocked
        // application thread must re-check its rendezvous.
        sched.action();
    }
    ep.network()
        .stats()
        .clamped_delays
        .add(timeline.clamp_events());
    ServerOutcome {
        shard,
        queue_delay: timeline.take_queue_delay(),
        errors,
        endpoint: ep,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    m: Pmsg,
    wire_from: HostId,
    state: &Arc<HostState>,
    cost: &CostModel,
    consistency: Consistency,
    tl: &mut ServerTimeline,
    shard: &mut ManagerShard,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
    bug_stale_reinstall: bool,
) -> Result<(), ProtocolError> {
    use MsgKind::*;
    match m.kind {
        ReadRequest | WriteRequest | InvalidateReply | Ack | AllocRequest | BarrierEnter
        | LockAcquire | LockRelease | PushRequest | RcDiff | AdaptApply | AdaptAck => {
            shard.handle(m, tl, ep)
        }
        ServeRead => serve_read(m, &state.space, state.host, cost, tl, ep, rec),
        ServeWrite => serve_write(m, &state.space, state.host, cost, tl, ep, rec),
        InvalidateRequest => handle_invalidate(m, state, cost, consistency, tl, home, ep, rec),
        ReadReply | WriteReply => handle_data_reply(
            m,
            wire_from,
            state,
            cost,
            tl,
            home,
            ep,
            rec,
            bug_stale_reinstall,
        ),
        AllocReply | BarrierRelease | LockGrant | RcDiffAck => fulfill_simple(m, state, cost, tl),
        PushData => handle_push_data(m, state, cost, tl, rec),
        Nack => handle_nack(m, state, cost, tl),
        Shutdown => unreachable!("handled by the loop"),
    }
}

/// Routes a failed handler's error to whoever is blocked on the message:
/// a request kind earns the (remote) requester a `Nack`, a reply kind
/// fails the local waiter directly. Fire-and-forget kinds have nobody to
/// tell — the recorded error is their only trace.
#[allow(clippy::too_many_arguments)]
fn surface_error(
    kind: MsgKind,
    from: HostId,
    event: u64,
    addr: VAddr,
    e: ProtocolError,
    state: &Arc<HostState>,
    ep: &Endpoint<Pmsg>,
    tl: &mut ServerTimeline,
) {
    use MsgKind::*;
    match kind {
        ReadRequest | WriteRequest | ServeRead | ServeWrite | AllocRequest | BarrierEnter
        | LockAcquire | RcDiff
            if event != 0 =>
        {
            // Best-effort: if the nack itself exhausts its retransmit
            // budget the requester's wall-clock backstop still fires.
            let nack = Pmsg::new(Nack, ep.host(), event).with_addr(addr);
            ep.send(from, nack, 0, tl.now());
        }
        ReadReply | WriteReply | AllocReply | BarrierRelease | LockGrant | RcDiffAck => {
            if let Some(w) = state.waiters.lock().remove(&event) {
                w.fail(e);
            }
        }
        _ => {}
    }
}

/// A peer could not serve our request: fail the blocked thread with a
/// typed error instead of letting it wait for a reply that never comes.
fn handle_nack(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
) -> Result<(), ProtocolError> {
    tl.charge(cost.event_signal);
    let nacked = ProtocolError::Nacked {
        host: state.host,
        event: m.event,
    };
    if let Some(w) = state.waiters.lock().remove(&m.event) {
        w.fail(nacked);
        return Ok(());
    }
    // A nacked prefetch registers no event waiter; resolve (and unlink)
    // the vpage waiters so a later fault retries the normal path rather
    // than parking on a request that already failed.
    if let Some(vp) = state.space.geometry().vpage_of(m.addr) {
        let mut pf = state.prefetch_waiters.lock();
        if let Some(w) = pf.remove(&vp) {
            pf.retain(|_, x| !Arc::ptr_eq(x, &w));
            w.fail(nacked);
            return Ok(());
        }
    }
    Err(ProtocolError::NoWaiter {
        host: state.host,
        event: m.event,
        kind: "Nack",
    })
}

/// Whether `MILLIPAGE_TRACE` protocol tracing is on (debugging aid).
fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("MILLIPAGE_TRACE").is_some())
}

/// Sends through `ep`, surfacing an exhausted retransmit budget as a
/// typed timeout; the arrival stamp is the caller's on success.
pub(crate) fn send_checked(
    ep: &Endpoint<Pmsg>,
    to: HostId,
    msg: Pmsg,
    payload: usize,
    now: Ns,
    what: &'static str,
) -> Result<Ns, ProtocolError> {
    let event = msg.event;
    let receipt = ep.send_receipt(to, msg, payload, now);
    if receipt.delivered {
        Ok(receipt.arrival)
    } else {
        Err(ProtocolError::Timeout {
            host: ep.host(),
            what,
            event,
        })
    }
}

/// Figure 3 "Handle Read Request": downgrade a writable copy to read-only
/// and send the minipage straight out of the privileged view. Generic over
/// the backend pair — both the simulator and the host runtime serve reads
/// through this function.
pub(crate) fn serve_read<M: MemoryBackend, C: ProtoClock, T: Transport>(
    m: Pmsg,
    mem: &M,
    host: HostId,
    cost: &CostModel,
    tl: &mut C,
    ep: &T,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    tl.charge(cost.dsm_overhead);
    tl.charge(cost.get_protection);
    let downgraded = crate::backend::downgrade_range(mem, host, m.base, m.len)?;
    tl.charge(downgraded as Ns * cost.set_protection);
    if downgraded > 0 {
        rec.emit(tl.now(), TraceKind::Downgrade, |e| e.with_mp(m.minipage.0));
    }
    rec.emit(tl.now(), TraceKind::Serve, |e| {
        e.with_mp(m.minipage.0).with_peer(m.from).with_aux(0)
    });
    let data = read_priv(mem, host, m.priv_base, m.len, "serve-read source")?;
    let mut reply = m;
    reply.kind = MsgKind::ReadReply;
    reply.data = Bytes::from(data);
    let to = reply.from;
    let payload = reply.payload_bytes();
    ep.send(to, reply, payload, tl.now(), "read reply")?;
    Ok(())
}

/// Figure 3 "Handle Write Request": invalidate the local copy, then send
/// the minipage to the writer. Generic over the backend pair.
pub(crate) fn serve_write<M: MemoryBackend, C: ProtoClock, T: Transport>(
    m: Pmsg,
    mem: &M,
    host: HostId,
    cost: &CostModel,
    tl: &mut C,
    ep: &T,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    tl.charge(cost.dsm_overhead);
    // NoAccess first: once the bytes leave, local threads must fault.
    let n = protect_range(mem, host, m.base, m.len, PageProt::NoAccess)?;
    tl.charge(n as Ns * cost.set_protection);
    rec.emit(tl.now(), TraceKind::InvalidateLocal, |e| {
        e.with_mp(m.minipage.0)
    });
    rec.emit(tl.now(), TraceKind::Serve, |e| {
        e.with_mp(m.minipage.0).with_peer(m.from).with_aux(1)
    });
    let data = read_priv(mem, host, m.priv_base, m.len, "serve-write source")?;
    let mut reply = m;
    reply.kind = MsgKind::WriteReply;
    reply.data = Bytes::from(data);
    let to = reply.from;
    let payload = reply.payload_bytes();
    ep.send(to, reply, payload, tl.now(), "write reply")?;
    Ok(())
}

/// The backend-neutral core of Figure 3 "Handle Invalidate Request":
/// record the local invalidation and revoke access to the minipage. The
/// caller bumps its invalidation counter and sends the reply (the sim's
/// HLRC path layers eviction diffs on top instead).
pub(crate) fn invalidate_local<M: MemoryBackend, C: ProtoClock>(
    m: &Pmsg,
    mem: &M,
    host: HostId,
    cost: &CostModel,
    tl: &mut C,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    // aux 1 marks a *received* invalidation (an InvalidateRequest from a
    // home shard), distinguishing it from the copy drops a server performs
    // while serving a write and from release-flush drops. The diagnostics
    // self-check counts exactly these against the stats table.
    rec.emit(tl.now(), TraceKind::InvalidateLocal, |e| {
        e.with_mp(m.minipage.0).with_event(m.event).with_aux(1)
    });
    let n = protect_range(mem, host, m.base, m.len, PageProt::NoAccess)?;
    tl.charge(n as Ns * cost.set_protection);
    Ok(())
}

/// The backend-neutral core of Figure 3 "Handle Read or Write Reply":
/// install the minipage bytes through the privileged view (unless
/// `skip_write` — a self-addressed reply would stale-revert the page),
/// open the protection, and return the covered vpage range for the
/// caller's wake-up bookkeeping.
pub(crate) fn install_reply<M: MemoryBackend, C: ProtoClock>(
    m: &Pmsg,
    mem: &M,
    host: HostId,
    cost: &CostModel,
    tl: &mut C,
    rec: &mut TraceRecorder,
    skip_write: bool,
) -> Result<std::ops::Range<usize>, ProtocolError> {
    tl.charge(cost.dsm_overhead);
    if !skip_write {
        write_priv(mem, host, m.priv_base, &m.data, "reply install")?;
    }
    // aux 1 = read-only copy installed, aux 2 = writable copy installed.
    let aux = if m.kind == MsgKind::ReadReply { 1 } else { 2 };
    rec.emit(tl.now(), TraceKind::Install, |e| {
        e.with_mp(m.minipage.0).with_event(m.event).with_aux(aux)
    });
    let prot = if m.kind == MsgKind::ReadReply {
        PageProt::ReadOnly
    } else {
        PageProt::ReadWrite
    };
    let range = vpage_range(mem, host, m.base, m.len)?;
    for vp in range.clone() {
        mem.set_prot(vp, prot).map_err(|_| bad_vpage(host, vp))?;
    }
    tl.charge(range.len() as Ns * cost.set_protection);
    tl.charge(cost.event_signal);
    Ok(range)
}

/// The backend-neutral core of the §4.3 push install: write the pushed
/// bytes and grant read access.
pub(crate) fn install_push<M: MemoryBackend, C: ProtoClock>(
    m: &Pmsg,
    mem: &M,
    host: HostId,
    cost: &CostModel,
    tl: &mut C,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    write_priv(mem, host, m.priv_base, &m.data, "push install")?;
    rec.emit(tl.now(), TraceKind::Install, |e| {
        e.with_mp(m.minipage.0).with_aux(1)
    });
    let n = protect_range(mem, host, m.base, m.len, PageProt::ReadOnly)?;
    tl.charge(n as Ns * cost.set_protection);
    Ok(())
}

/// Figure 3 "Handle Invalidate Request".
///
/// Under release consistency there is a twist: if the invalidated
/// minipage is locally dirty (twinned, mid-phase), its writes-so-far are
/// diffed out and shipped to the minipage's home *before* the copy dies,
/// so no update is lost. Under the centralized policy no reply is sent
/// (HLRC invalidations ride FIFO ordering to the single manager); with
/// distributed homes the home shard counts replies before acknowledging
/// the flusher, so one is sent either way.
#[allow(clippy::too_many_arguments)]
fn handle_invalidate(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    consistency: Consistency,
    tl: &mut ServerTimeline,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    if consistency == Consistency::HomeEagerRc {
        // aux 1: a received invalidation (see `invalidate_local`).
        rec.emit(tl.now(), TraceKind::InvalidateLocal, |e| {
            e.with_mp(m.minipage.0).with_event(m.event).with_aux(1)
        });
        // Hold the release-state lock from the dirty-set removal until the
        // eviction diff is on the wire. Released earlier, the owner's
        // in-progress release flush could observe the emptied dirty set,
        // skip flushing, and enqueue its barrier-enter *ahead* of the
        // eviction diff on the host→home FIFO — the home would then count
        // the release (and serve post-barrier reads) with this copy's
        // final writes still in flight.
        let mut rc = state.rc.lock();
        let dirty = rc.dirty.remove(&m.minipage.0);
        if let Some(d) = dirty {
            let data = MemoryBackend::snapshot_and_protect(
                &state.space,
                d.info.base,
                d.info.len,
                PageProt::NoAccess,
            )
            .map_err(|_| bad_priv(state.host, m.priv_base, "eviction snapshot"))?;
            let diff = d.twin.diff(&data);
            tl.charge(cost.diff_time(d.info.len));
            tl.charge(cost.set_protection);
            if !diff.is_empty() {
                let mut out = Pmsg::new(MsgKind::RcDiff, ep.host(), 0).with_addr(d.info.base);
                out.minipage = d.info.id;
                out.base = d.info.base;
                out.len = d.info.len;
                out.priv_base = d.info.priv_base;
                out.data = Bytes::from(diff.encode());
                let payload = out.payload_bytes();
                // Eviction diff: event 0, fire-and-forget (aux 0 marks it
                // as not awaiting an RcDiffAck).
                rec.emit(tl.now(), TraceKind::RcDiffSend, |e| {
                    e.with_mp(d.info.id.0).with_bytes(payload).with_aux(0)
                });
                send_checked(
                    ep,
                    home.home(d.info.id),
                    out,
                    payload,
                    tl.now(),
                    "eviction diff",
                )?;
            }
            drop(rc);
        } else {
            drop(rc);
            let n = protect_range(&state.space, state.host, m.base, m.len, PageProt::NoAccess)?;
            tl.charge(n as Ns * cost.set_protection);
        }
        state.counters.invalidations_received.bump();
        state.diag.inv_recv(m.minipage.0, state.host.0);
        if home.kind() != HomePolicyKind::Centralized {
            // The home shard is counting confirmations before it releases
            // the flusher; FIFO on this channel puts the confirmation
            // behind any eviction diff sent above.
            let mut reply = Pmsg::new(MsgKind::InvalidateReply, ep.host(), m.event);
            reply.minipage = m.minipage;
            reply.addr = m.addr;
            send_checked(
                ep,
                home.home(m.minipage),
                reply,
                0,
                tl.now(),
                "invalidate reply",
            )?;
        }
        return Ok(());
    }
    invalidate_local(&m, &state.space, state.host, cost, tl, rec)?;
    state.counters.invalidations_received.bump();
    state.diag.inv_recv(m.minipage.0, state.host.0);
    let mut reply = Pmsg::new(MsgKind::InvalidateReply, ep.host(), m.event);
    reply.minipage = m.minipage;
    reply.addr = m.addr;
    // The reply goes to the shard homing the minipage — the one that sent
    // the invalidation.
    send_checked(
        ep,
        home.home(m.minipage),
        reply,
        0,
        tl.now(),
        "invalidate reply",
    )?;
    Ok(())
}

/// Figure 3 "Handle Read or Write Reply": receive the minipage contents
/// directly into the privileged view (no buffer copy), open the
/// protection, and wake the faulting thread.
#[allow(clippy::too_many_arguments)]
fn handle_data_reply(
    m: Pmsg,
    wire_from: HostId,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    home: &HomeTable,
    ep: &Endpoint<Pmsg>,
    rec: &mut TraceRecorder,
    bug_stale_reinstall: bool,
) -> Result<(), ProtocolError> {
    // A self-addressed reply (this host served its own request — it homes
    // the minipage) carries bytes read from the very page it would install
    // them into. Writing them back is not just redundant: the snapshot was
    // taken at serve time, and a diff applied to the home page between the
    // serve and this install (another host's release flush) would be
    // silently reverted by the stale write-back, losing that host's
    // release for good. The protection change is still required.
    // `bug_stale_reinstall` re-introduces the fixed bug on purpose so the
    // schedule-exploration harness can prove it would catch it.
    let skip_write = wire_from == state.host && !bug_stale_reinstall;
    let range = install_reply(&m, &state.space, state.host, cost, tl, rec, skip_write)?;
    // Cache the manager's translation: the host-side minipage boundary
    // knowledge that the release-consistency write path relies on.
    state.rc.lock().learn(
        range.clone(),
        MpInfo {
            id: m.minipage,
            base: m.base,
            len: m.len,
            priv_base: m.priv_base,
        },
    );
    if m.prefetch {
        // Nobody blocks on a prefetch; wake opportunistic sleepers and
        // close the service window ourselves.
        let mut sleepers: Vec<Arc<Waiter>> = Vec::new();
        {
            let mut pf = state.prefetch_waiters.lock();
            for vp in range {
                if let Some(w) = pf.remove(&vp) {
                    if !sleepers.iter().any(|s| Arc::ptr_eq(s, &w)) {
                        sleepers.push(w);
                    }
                }
            }
        }
        for w in sleepers {
            w.fulfill(Completion {
                resume_vt: tl.now(),
                addr: m.addr,
            });
        }
        let ack = Pmsg::new(MsgKind::Ack, ep.host(), 0).with_addr(m.addr);
        send_checked(ep, home.home(m.minipage), ack, 0, tl.now(), "prefetch ack")?;
    } else {
        let w = state.waiters.lock().remove(&m.event).ok_or({
            ProtocolError::NoWaiter {
                host: state.host,
                event: m.event,
                kind: if m.kind == MsgKind::ReadReply {
                    "ReadReply"
                } else {
                    "WriteReply"
                },
            }
        })?;
        w.fulfill(Completion {
            resume_vt: tl.now(),
            addr: m.addr,
        });
    }
    Ok(())
}

/// Wakes the thread blocked on an allocation, barrier, lock, or
/// diff-flush event.
fn fulfill_simple(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
) -> Result<(), ProtocolError> {
    tl.charge(cost.event_signal);
    let w = state.waiters.lock().remove(&m.event).ok_or({
        ProtocolError::NoWaiter {
            host: state.host,
            event: m.event,
            kind: "completion",
        }
    })?;
    w.fulfill(Completion {
        resume_vt: tl.now(),
        addr: m.addr,
    });
    Ok(())
}

/// Installs a pushed read copy (§4.3).
fn handle_push_data(
    m: Pmsg,
    state: &Arc<HostState>,
    cost: &CostModel,
    tl: &mut ServerTimeline,
    rec: &mut TraceRecorder,
) -> Result<(), ProtocolError> {
    install_push(&m, &state.space, state.host, cost, tl, rec)?;
    state.counters.pushes_received.bump();
    Ok(())
}
