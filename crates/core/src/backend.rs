//! The backend trait pair: one protocol core, many memory/transport
//! substrates.
//!
//! The server/manager/HLRC protocol in this crate is written against two
//! small traits instead of concrete sim types:
//!
//! * [`MemoryBackend`] — map/protect views and read/write minipage bytes
//!   through the privileged view. The simulator implements it with
//!   [`sim_mem::AddressSpace`]; the Linux host backend implements it with
//!   `hostmv::MultiViewRegion` (real `mmap`/`mprotect`).
//! * [`Transport`] — typed message send with delivery accounting. The
//!   simulator implements it with [`sim_net::Endpoint`] (virtual-time
//!   arrival stamps, fault plane, retransmission); the host backend with
//!   `SOCK_SEQPACKET` socketpairs between real OS threads.
//!
//! Two companions complete the pair:
//!
//! * [`ProtoClock`] — how handler work is accounted. The sim's
//!   [`ServerTimeline`] charges virtual nanoseconds from the cost model;
//!   the host backend reads a wall clock and charges nothing (real time
//!   passes by itself).
//! * [`ClusterMemory`] — the manager shard's alloc-time access to *every*
//!   host's memory (fresh minipages are initialized directly at their home
//!   host before any application can reach them — setup, not protocol
//!   traffic).
//!
//! The sim implementations monomorphize to exactly the pre-refactor code:
//! the determinism tests and the goldens under `tests/goldens/` hold the
//! sim backend to byte-identical traces and reports.

use crate::error::ProtocolError;
use crate::hlrc::MpInfo;
use crate::msg::Pmsg;
use crate::server::send_checked;
use sim_core::{Geometry, HostId, Ns, VAddr};
use sim_mem::{Access, AddressSpace, Prot};
use sim_net::{Endpoint, ServerTimeline};
use std::ops::Range;
use std::sync::Arc;

/// The kind of memory access an application performed when it faulted.
///
/// Core-owned mirror of the backends' fault decodings: the sim derives it
/// from a simulated protection check, the host backend from the SIGSEGV
/// signal context (error-code write bit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl From<Access> for AccessKind {
    fn from(a: Access) -> Self {
        match a {
            Access::Read => AccessKind::Read,
            Access::Write => AccessKind::Write,
        }
    }
}

/// Per-vpage protection, the three states of §2.2. Core-owned so protocol
/// code does not speak any one backend's protection vocabulary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(u8)]
pub enum PageProt {
    /// The minipage is not present on this host.
    #[default]
    NoAccess = 0,
    /// A read copy is present.
    ReadOnly = 1,
    /// The (single) writable copy is present.
    ReadWrite = 2,
}

impl From<PageProt> for Prot {
    fn from(p: PageProt) -> Prot {
        match p {
            PageProt::NoAccess => Prot::NoAccess,
            PageProt::ReadOnly => Prot::ReadOnly,
            PageProt::ReadWrite => Prot::ReadWrite,
        }
    }
}

impl From<Prot> for PageProt {
    fn from(p: Prot) -> PageProt {
        match p {
            Prot::NoAccess => PageProt::NoAccess,
            Prot::ReadOnly => PageProt::ReadOnly,
            Prot::ReadWrite => PageProt::ReadWrite,
        }
    }
}

/// Why a backend memory operation failed. The protocol layer converts
/// this into a [`ProtocolError`] carrying the message context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// Address, range, or vpage outside the shared region.
    OutOfRange,
    /// A protection change targeted the (fixed `ReadWrite`) privileged
    /// view.
    Privileged,
}

/// One host's view of the shared memory object, as the protocol sees it:
/// per-vpage protections plus privileged-view byte access.
///
/// Contract: `set_prot` on an application vpage takes effect before the
/// call returns (a racing application access observes either the old or
/// the new protection, never garbage); `priv_read`/`priv_write` bypass
/// protections entirely (the privileged view is permanently `ReadWrite`,
/// §2.3.1) and may span pages but not views.
pub trait MemoryBackend {
    /// The shared address-space geometry (same on every host, §2.4).
    fn geometry(&self) -> &Geometry;
    /// Current protection of a global vpage.
    fn prot(&self, vpage: usize) -> PageProt;
    /// Changes the protection of an application vpage.
    fn set_prot(&self, vpage: usize, prot: PageProt) -> Result<(), MemFault>;
    /// Reads bytes through the privileged view.
    fn priv_read(&self, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault>;
    /// Writes bytes through the privileged view (zero-copy receive).
    fn priv_write(&self, addr: VAddr, data: &[u8]) -> Result<(), MemFault>;
    /// Atomically snapshots `[addr, addr+len)` and sets the protection of
    /// the covering vpages — the HLRC eviction step (no write may slip
    /// between the copy and the protection change).
    fn snapshot_and_protect(
        &self,
        addr: VAddr,
        len: usize,
        prot: PageProt,
    ) -> Result<Vec<u8>, MemFault>;
}

impl MemoryBackend for AddressSpace {
    fn geometry(&self) -> &Geometry {
        AddressSpace::geometry(self)
    }

    fn prot(&self, vpage: usize) -> PageProt {
        AddressSpace::prot(self, vpage).into()
    }

    fn set_prot(&self, vpage: usize, prot: PageProt) -> Result<(), MemFault> {
        AddressSpace::set_prot(self, vpage, prot.into()).map_err(|e| match e {
            sim_mem::MemError::OutOfRange { .. } => MemFault::OutOfRange,
            sim_mem::MemError::PrivilegedViewProtection { .. } => MemFault::Privileged,
        })
    }

    fn priv_read(&self, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        AddressSpace::priv_read(self, addr, len).map_err(|_| MemFault::OutOfRange)
    }

    fn priv_write(&self, addr: VAddr, data: &[u8]) -> Result<(), MemFault> {
        AddressSpace::priv_write(self, addr, data).map_err(|_| MemFault::OutOfRange)
    }

    fn snapshot_and_protect(
        &self,
        addr: VAddr,
        len: usize,
        prot: PageProt,
    ) -> Result<Vec<u8>, MemFault> {
        AddressSpace::snapshot_and_protect(self, addr, len, prot.into())
            .map_err(|_| MemFault::OutOfRange)
    }
}

/// Typed message send with delivery accounting.
///
/// Contract: `send` either hands the message to a reliable channel and
/// returns its (virtual or wall) arrival stamp, or surfaces the loss as a
/// typed [`ProtocolError::Timeout`] tagged `what`. Ordering is FIFO per
/// (sender, destination) pair — the protocol's correctness arguments
/// (eviction diffs before invalidate confirmations, HLRC fire-and-forget
/// to the centralized manager) rely on it.
pub trait Transport {
    /// The host this endpoint belongs to.
    fn me(&self) -> HostId;
    /// Sends `msg` (accounting `payload` data bytes) at time `now`.
    fn send(
        &self,
        to: HostId,
        msg: Pmsg,
        payload: usize,
        now: Ns,
        what: &'static str,
    ) -> Result<Ns, ProtocolError>;
}

impl Transport for Endpoint<Pmsg> {
    fn me(&self) -> HostId {
        self.host()
    }

    fn send(
        &self,
        to: HostId,
        msg: Pmsg,
        payload: usize,
        now: Ns,
        what: &'static str,
    ) -> Result<Ns, ProtocolError> {
        send_checked(self, to, msg, payload, now, what)
    }
}

/// How protocol handler work is accounted.
///
/// The sim's [`ServerTimeline`] *is* the clock: handlers charge modeled
/// costs and `now()` stamps every trace event and reply. The host backend
/// cannot charge anything — real work takes real time — so its clock
/// reads monotonic wall time and `charge` is a no-op.
pub trait ProtoClock {
    /// Current time on this host's service timeline.
    fn now(&self) -> Ns;
    /// Accounts `dt` of handler work; returns the completion time.
    fn charge(&mut self, dt: Ns) -> Ns;
}

impl ProtoClock for ServerTimeline {
    fn now(&self) -> Ns {
        ServerTimeline::now(self)
    }

    fn charge(&mut self, dt: Ns) -> Ns {
        ServerTimeline::charge(self, dt)
    }
}

/// The manager shard's cross-host memory access, used only at allocation
/// time: fresh minipages are initialized directly in their home host's
/// space before the allocation reply makes them reachable.
pub(crate) trait ClusterMemory: Send + Sync {
    /// Changes the protection of `vpage` on `host`.
    fn set_prot(&self, host: HostId, vpage: usize, prot: PageProt) -> Result<(), MemFault>;
    /// Reads bytes from `host`'s privileged view.
    fn priv_read(&self, host: HostId, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault>;
    /// Writes bytes into `host`'s privileged view.
    fn priv_write(&self, host: HostId, addr: VAddr, data: &[u8]) -> Result<(), MemFault>;
    /// Caches a minipage translation in `host`'s release-consistency
    /// state (HLRC bookkeeping; backends without HLRC ignore it).
    fn learn_rc(&self, host: HostId, vpages: Range<usize>, info: MpInfo);
}

/// The sim cluster's memory: every host's [`HostState`] address space.
pub(crate) struct SimClusterMemory {
    states: Vec<Arc<crate::host::HostState>>,
}

impl SimClusterMemory {
    pub(crate) fn new(states: Vec<Arc<crate::host::HostState>>) -> Self {
        Self { states }
    }
}

impl ClusterMemory for SimClusterMemory {
    fn set_prot(&self, host: HostId, vpage: usize, prot: PageProt) -> Result<(), MemFault> {
        MemoryBackend::set_prot(&self.states[host.index()].space, vpage, prot)
    }

    fn priv_read(&self, host: HostId, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        MemoryBackend::priv_read(&self.states[host.index()].space, addr, len)
    }

    fn priv_write(&self, host: HostId, addr: VAddr, data: &[u8]) -> Result<(), MemFault> {
        MemoryBackend::priv_write(&self.states[host.index()].space, addr, data)
    }

    fn learn_rc(&self, host: HostId, vpages: Range<usize>, info: MpInfo) {
        self.states[host.index()].rc.lock().learn(vpages, info);
    }
}

/// The global vpages covered by the translated minipage range named in a
/// message.
pub(crate) fn vpage_range<M: MemoryBackend>(
    mem: &M,
    host: HostId,
    base: VAddr,
    len: usize,
) -> Result<Range<usize>, ProtocolError> {
    mem.geometry()
        .vpages_covering(base, len)
        .map(|(_, r)| r)
        .ok_or(ProtocolError::BadTranslation {
            host,
            addr: base.0 as usize,
            what: "translated minipage range",
        })
}

/// Sets every vpage of the minipage range to `prot`; returns how many
/// protection changes were issued (for cost accounting).
pub(crate) fn protect_range<M: MemoryBackend>(
    mem: &M,
    host: HostId,
    base: VAddr,
    len: usize,
    prot: PageProt,
) -> Result<usize, ProtocolError> {
    let range = vpage_range(mem, host, base, len)?;
    let n = range.len();
    for vp in range {
        mem.set_prot(vp, prot).map_err(|_| bad_vpage(host, vp))?;
    }
    Ok(n)
}

/// Downgrades any `ReadWrite` vpage of the range to `ReadOnly` (Figure 3
/// "Handle Read Request"); returns how many were downgraded.
pub(crate) fn downgrade_range<M: MemoryBackend>(
    mem: &M,
    host: HostId,
    base: VAddr,
    len: usize,
) -> Result<usize, ProtocolError> {
    let mut downgraded = 0;
    for vp in vpage_range(mem, host, base, len)? {
        if mem.prot(vp) == PageProt::ReadWrite {
            mem.set_prot(vp, PageProt::ReadOnly)
                .map_err(|_| bad_vpage(host, vp))?;
            downgraded += 1;
        }
    }
    Ok(downgraded)
}

/// Reads minipage bytes through the privileged view for a serve.
pub(crate) fn read_priv<M: MemoryBackend>(
    mem: &M,
    host: HostId,
    priv_base: VAddr,
    len: usize,
    what: &'static str,
) -> Result<Vec<u8>, ProtocolError> {
    mem.priv_read(priv_base, len)
        .map_err(|_| bad_priv(host, priv_base, what))
}

/// Writes minipage bytes through the privileged view for an install.
pub(crate) fn write_priv<M: MemoryBackend>(
    mem: &M,
    host: HostId,
    priv_base: VAddr,
    data: &[u8],
    what: &'static str,
) -> Result<(), ProtocolError> {
    mem.priv_write(priv_base, data)
        .map_err(|_| bad_priv(host, priv_base, what))
}

/// A vpage-protection change failed: the message named a page outside the
/// application view.
pub(crate) fn bad_vpage(host: HostId, vp: usize) -> ProtocolError {
    ProtocolError::BadTranslation {
        host,
        addr: vp,
        what: "protection change",
    }
}

/// A privileged-view access failed: the message's translation lied.
pub(crate) fn bad_priv(host: HostId, priv_base: VAddr, what: &'static str) -> ProtocolError {
    ProtocolError::BadTranslation {
        host,
        addr: priv_base.0 as usize,
        what,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_prot_roundtrips_through_sim_prot() {
        for p in [PageProt::NoAccess, PageProt::ReadOnly, PageProt::ReadWrite] {
            assert_eq!(PageProt::from(Prot::from(p)), p);
        }
        assert_eq!(AccessKind::from(Access::Read), AccessKind::Read);
        assert_eq!(AccessKind::from(Access::Write), AccessKind::Write);
    }

    #[test]
    fn engine_ops_drive_a_sim_address_space() {
        let geo = Geometry::new(4, 2);
        let space = AddressSpace::new(geo.clone());
        let host = HostId(0);
        let base = geo.addr_of(0, 1, 0);
        let priv_base = geo.to_priv(base).unwrap();
        let n = protect_range(&space, host, base, 64, PageProt::ReadWrite).unwrap();
        assert_eq!(n, 1);
        write_priv(&space, host, priv_base, &[7u8; 64], "install").unwrap();
        assert_eq!(
            read_priv(&space, host, priv_base, 64, "serve").unwrap(),
            vec![7u8; 64]
        );
        assert_eq!(downgrade_range(&space, host, base, 64).unwrap(), 1);
        // Second downgrade is a no-op: already read-only.
        assert_eq!(downgrade_range(&space, host, base, 64).unwrap(), 0);
        assert_eq!(
            MemoryBackend::prot(&space, geo.vpage_of(base).unwrap()),
            PageProt::ReadOnly
        );
        // Ranges outside the region surface as typed errors.
        assert!(protect_range(&space, host, VAddr(1), 8, PageProt::NoAccess).is_err());
    }
}
