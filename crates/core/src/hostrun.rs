//! The real-memory backend: the protocol core on Linux `mmap`/`mprotect`.
//!
//! Everything the simulator models, this module does for real — on one
//! Linux process standing in for the cluster:
//!
//! * every "host" is a [`hostmv::MultiViewRegion`]: its own `memfd` memory
//!   object mapped through the application views plus the privileged view,
//!   so hosts genuinely hold separate copies of the shared pages;
//! * application accesses are volatile loads/stores through the view
//!   mappings; a protection miss raises a **real SIGSEGV**, decoded from
//!   the signal context ([`hostmv::RawFault`], write bit from `REG_ERR`)
//!   and resolved by running the same request/reply protocol the simulator
//!   runs — the fault handler sends the request and blocks on a socket
//!   until the server thread has installed the reply and opened the page;
//! * each host runs a real DSM server thread; the wire is a
//!   `SOCK_SEQPACKET` socketpair per host (atomic datagrams, FIFO — the
//!   ordering the protocol's correctness arguments assume);
//! * the protocol logic itself is **shared with the simulator**: the
//!   server loop dispatches into [`ManagerShard::handle`] and the generic
//!   engine functions of [`server`](crate::server) through the
//!   [`MemoryBackend`]/[`Transport`]/[`ProtoClock`] traits. Only the
//!   substrate differs.
//!
//! Scope: `SequentialSwMr` consistency, `Centralized` homes, one
//! application thread per host, no prefetch/push/locks — exactly the
//! surface the [`Dsm`](crate::dsm::Dsm) trait exposes. Backend failures
//! are fatal to the run (reported, not retried): there is no fault plane
//! to degrade through on a local socketpair.
//!
//! Addresses on the wire are the canonical shared [`Geometry`] addresses
//! (every message field means the same thing as in the simulator); they
//! are translated to each host's real mapping at the memory edge
//! ([`HostMemory`]). The run's fault counters come straight from the
//! SIGSEGV handler, which is what makes `--backend host` reports
//! comparable with the simulator's fault counts.

use crate::backend::{ClusterMemory, MemFault, MemoryBackend, PageProt, ProtoClock, Transport};
use crate::cluster::SetupCtx;
use crate::diag::{build_report, DiagReport, DiagSink, DiagTable};
use crate::dsm::Dsm;
use crate::error::ProtocolError;
use crate::hlrc::{Consistency, MpInfo};
use crate::home::{HomePolicyKind, HomeTable};
use crate::manager::ManagerShard;
use crate::msg::{MsgKind, Pmsg};
use crate::server;
use crate::shared::{decode_slice, encode_slice, Pod, SharedVec};
use bytes::Bytes;
use hostmv::{install_dsm_handler, FaultCounters, HostProt, MultiViewRegion, RawFault};
use multiview::{AllocMode, Allocator, MinipageId};
use sim_core::trace::{Tracer, Track};
use sim_core::{CostModel, Geometry, HostId, Ns, VAddr, DEFAULT_BASE};
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Fixed header size; minipage data (if any) follows in the same datagram.
const HEADER: usize = 64;

/// Largest data payload a single datagram may carry. `SOCK_SEQPACKET`
/// sends are atomic up to the socket buffer; the default Linux buffer is
/// ~208 KiB, so minipages (at most a few pages) fit with room to spare.
const MAX_DATA: usize = 128 * 1024;

fn kind_to_u8(k: MsgKind) -> u8 {
    use MsgKind::*;
    match k {
        ReadRequest => 0,
        WriteRequest => 1,
        ServeRead => 2,
        ServeWrite => 3,
        ReadReply => 4,
        WriteReply => 5,
        InvalidateRequest => 6,
        InvalidateReply => 7,
        Ack => 8,
        AllocRequest => 9,
        AllocReply => 10,
        BarrierEnter => 11,
        BarrierRelease => 12,
        LockAcquire => 13,
        LockGrant => 14,
        LockRelease => 15,
        PushRequest => 16,
        PushData => 17,
        RcDiff => 18,
        RcDiffAck => 19,
        Nack => 20,
        Shutdown => 21,
        AdaptApply => 22,
        AdaptAck => 23,
    }
}

fn kind_from_u8(b: u8) -> Option<MsgKind> {
    use MsgKind::*;
    Some(match b {
        0 => ReadRequest,
        1 => WriteRequest,
        2 => ServeRead,
        3 => ServeWrite,
        4 => ReadReply,
        5 => WriteReply,
        6 => InvalidateRequest,
        7 => InvalidateReply,
        8 => Ack,
        9 => AllocRequest,
        10 => AllocReply,
        11 => BarrierEnter,
        12 => BarrierRelease,
        13 => LockAcquire,
        14 => LockGrant,
        15 => LockRelease,
        16 => PushRequest,
        17 => PushData,
        18 => RcDiff,
        19 => RcDiffAck,
        20 => Nack,
        21 => Shutdown,
        22 => AdaptApply,
        23 => AdaptAck,
        _ => return None,
    })
}

/// Encodes a message header into a fixed stack buffer. No allocation —
/// this is the encoder the SIGSEGV resolver uses from signal context.
fn encode_header(buf: &mut [u8; HEADER], wire_from: HostId, m: &Pmsg, data_len: usize) {
    buf[0] = kind_to_u8(m.kind);
    buf[1] = u8::from(m.prefetch);
    buf[2..4].copy_from_slice(&wire_from.0.to_le_bytes());
    buf[4..6].copy_from_slice(&m.from.0.to_le_bytes());
    buf[6..8].copy_from_slice(&[0, 0]);
    buf[8..16].copy_from_slice(&m.event.to_le_bytes());
    buf[16..24].copy_from_slice(&m.addr.0.to_le_bytes());
    buf[24..32].copy_from_slice(&m.base.0.to_le_bytes());
    buf[32..40].copy_from_slice(&m.priv_base.0.to_le_bytes());
    buf[40..48].copy_from_slice(&(m.len as u64).to_le_bytes());
    buf[48..52].copy_from_slice(&m.minipage.0.to_le_bytes());
    buf[52..56].copy_from_slice(&(data_len as u32).to_le_bytes());
    buf[56..64].copy_from_slice(&m.aux.to_le_bytes());
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes a received datagram into (sender, message). `None` on a
/// malformed or truncated frame.
fn decode_frame(buf: &[u8]) -> Option<(HostId, Pmsg)> {
    if buf.len() < HEADER {
        return None;
    }
    let kind = kind_from_u8(buf[0])?;
    let wire_from = HostId(u16::from_le_bytes([buf[2], buf[3]]));
    let data_len = u32::from_le_bytes(buf[52..56].try_into().expect("4 bytes")) as usize;
    if buf.len() != HEADER + data_len {
        return None;
    }
    let mut m = Pmsg::new(
        kind,
        HostId(u16::from_le_bytes([buf[4], buf[5]])),
        u64_at(buf, 8),
    );
    m.prefetch = buf[1] != 0;
    m.addr = VAddr(u64_at(buf, 16));
    m.base = VAddr(u64_at(buf, 24));
    m.priv_base = VAddr(u64_at(buf, 32));
    m.len = u64_at(buf, 40) as usize;
    m.minipage = MinipageId(u32::from_le_bytes(buf[48..52].try_into().expect("4 bytes")));
    m.aux = u64_at(buf, 56);
    if data_len > 0 {
        m.data = Bytes::copy_from_slice(&buf[HEADER..]);
    }
    Some((wire_from, m))
}

// ---------------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------------

/// A connected `SOCK_SEQPACKET` pair: datagrams written to `tx` arrive,
/// boundaries intact and in order, at `rx`.
fn seqpacket_pair() -> Result<(libc::c_int, libc::c_int), ProtocolError> {
    let mut fds = [0 as libc::c_int; 2];
    // SAFETY: socketpair writes two fds into the provided array.
    let rc = unsafe { libc::socketpair(libc::AF_UNIX, libc::SOCK_SEQPACKET, 0, fds.as_mut_ptr()) };
    if rc != 0 {
        return Err(backend_err(HostId(0), "socketpair"));
    }
    for fd in fds {
        let sz: libc::c_int = 1 << 20;
        // SAFETY: setsockopt on a fd we just created; best-effort sizing.
        unsafe {
            libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                libc::SO_RCVBUF,
                (&raw const sz).cast(),
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            );
        }
    }
    Ok((fds[0], fds[1]))
}

/// Sends one datagram, retrying on `EINTR`. Async-signal-safe (`send(2)`
/// plus arithmetic), so the fault resolver may call it.
fn send_fd(fd: libc::c_int, buf: &[u8]) -> Result<(), i32> {
    loop {
        // SAFETY: valid fd and an in-bounds buffer; MSG_NOSIGNAL keeps a
        // torn-down peer an error instead of a SIGPIPE.
        let n = unsafe { libc::send(fd, buf.as_ptr().cast(), buf.len(), libc::MSG_NOSIGNAL) };
        if n == buf.len() as isize {
            return Ok(());
        }
        let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(0);
        if n < 0 && errno == libc::EINTR {
            continue;
        }
        return Err(errno);
    }
}

/// Receives one datagram into `buf`, retrying on `EINTR`. Returns the
/// datagram length. Async-signal-safe.
fn recv_fd(fd: libc::c_int, buf: &mut [u8]) -> Result<usize, i32> {
    loop {
        // SAFETY: valid fd, writable in-bounds buffer.
        let n = unsafe { libc::recv(fd, buf.as_mut_ptr().cast(), buf.len(), 0) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(0);
        if errno == libc::EINTR {
            continue;
        }
        return Err(errno);
    }
}

fn backend_err(host: HostId, what: &'static str) -> ProtocolError {
    ProtocolError::Backend {
        host,
        what,
        errno: std::io::Error::last_os_error().raw_os_error().unwrap_or(0),
    }
}

/// The host backend's [`Transport`]: every host's server inbox is one
/// `SOCK_SEQPACKET` socket; anyone holding the send side (servers, app
/// threads, the fault resolver) can enqueue a datagram atomically.
struct SocketTransport {
    me: HostId,
    /// Send-side fd of every host's server inbox, indexed by host.
    srv_tx: Arc<Vec<libc::c_int>>,
    /// Sharing diagnostics (per-link wire counters); disabled by default.
    diag: DiagSink,
}

impl Transport for SocketTransport {
    fn me(&self) -> HostId {
        self.me
    }

    fn send(
        &self,
        to: HostId,
        msg: Pmsg,
        _payload: usize,
        now: Ns,
        what: &'static str,
    ) -> Result<Ns, ProtocolError> {
        self.diag.wire_send(self.me.0, to.0, msg.data.len() as u64);
        let mut head = [0u8; HEADER];
        if msg.data.is_empty() {
            encode_header(&mut head, self.me, &msg, 0);
            send_fd(self.srv_tx[to.index()], &head)
        } else {
            assert!(msg.data.len() <= MAX_DATA, "datagram over wire limit");
            let mut frame = Vec::with_capacity(HEADER + msg.data.len());
            encode_header(&mut head, self.me, &msg, msg.data.len());
            frame.extend_from_slice(&head);
            frame.extend_from_slice(&msg.data);
            send_fd(self.srv_tx[to.index()], &frame)
        }
        .map_err(|errno| ProtocolError::Backend {
            host: self.me,
            what,
            errno,
        })?;
        Ok(now)
    }
}

/// The host backend's [`ProtoClock`]: real work takes real time, so
/// `charge` is a no-op and `now` reads the monotonic clock (nanoseconds
/// since the run started — enough for window bookkeeping and stamps).
struct WallClock {
    start: Instant,
}

impl ProtoClock for WallClock {
    fn now(&self) -> Ns {
        self.start.elapsed().as_nanos() as Ns
    }

    fn charge(&mut self, _dt: Ns) -> Ns {
        self.now()
    }
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

fn to_host_prot(p: PageProt) -> HostProt {
    match p {
        PageProt::NoAccess => HostProt::NoAccess,
        PageProt::ReadOnly => HostProt::ReadOnly,
        PageProt::ReadWrite => HostProt::ReadWrite,
    }
}

fn from_host_prot(p: HostProt) -> PageProt {
    match p {
        HostProt::NoAccess => PageProt::NoAccess,
        HostProt::ReadOnly => PageProt::ReadOnly,
        HostProt::ReadWrite => PageProt::ReadWrite,
    }
}

/// One host's [`MemoryBackend`] over its real [`MultiViewRegion`].
/// Canonical [`Geometry`] addresses are decoded here and mapped onto the
/// region's identical (view, page, offset) layout.
struct HostMemory {
    geo: Geometry,
    region: Arc<MultiViewRegion>,
}

impl HostMemory {
    /// Decodes a canonical address (any view — every view aliases the same
    /// physical pages, exactly like the sim's privileged accessors) into a
    /// physical (page, offset).
    fn priv_loc(&self, addr: VAddr) -> Result<(usize, usize), MemFault> {
        let loc = self.geo.decode(addr).ok_or(MemFault::OutOfRange)?;
        Ok((loc.page, loc.offset))
    }
}

impl MemoryBackend for HostMemory {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn prot(&self, vpage: usize) -> PageProt {
        let (view, page) = (vpage / self.geo.pages(), vpage % self.geo.pages());
        if view >= self.geo.priv_view() {
            return PageProt::ReadWrite;
        }
        from_host_prot(self.region.prot(view, page))
    }

    fn set_prot(&self, vpage: usize, prot: PageProt) -> Result<(), MemFault> {
        let (view, page) = (vpage / self.geo.pages(), vpage % self.geo.pages());
        if view >= self.geo.priv_view() {
            return Err(MemFault::Privileged);
        }
        self.region
            .protect(view, page, to_host_prot(prot))
            .map_err(|_| MemFault::OutOfRange)
    }

    fn priv_read(&self, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        let (page, offset) = self.priv_loc(addr)?;
        if offset + len > (self.geo.pages() - page) * self.geo.page_size() {
            return Err(MemFault::OutOfRange);
        }
        Ok(self.region.priv_read(page, offset, len))
    }

    fn priv_write(&self, addr: VAddr, data: &[u8]) -> Result<(), MemFault> {
        let (page, offset) = self.priv_loc(addr)?;
        if offset + data.len() > (self.geo.pages() - page) * self.geo.page_size() {
            return Err(MemFault::OutOfRange);
        }
        self.region.priv_write(page, offset, data);
        Ok(())
    }

    fn snapshot_and_protect(
        &self,
        addr: VAddr,
        len: usize,
        prot: PageProt,
    ) -> Result<Vec<u8>, MemFault> {
        // Copy first, then revoke: same order the sim's eviction uses.
        // (Unused under SequentialSwMr — present for trait completeness.)
        let priv_addr = self.geo.to_priv(addr).ok_or(MemFault::OutOfRange)?;
        let data = self.priv_read(priv_addr, len)?;
        let (_, range) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemFault::OutOfRange)?;
        for vp in range {
            self.set_prot(vp, prot)?;
        }
        Ok(data)
    }
}

/// The manager's setup-time access to every host's region (fresh minipages
/// are initialized at their home host before the run starts).
struct HostClusterMemory {
    geo: Geometry,
    regions: Vec<Arc<MultiViewRegion>>,
}

impl HostClusterMemory {
    fn mem(&self, host: HostId) -> HostMemory {
        HostMemory {
            geo: self.geo.clone(),
            region: Arc::clone(&self.regions[host.index()]),
        }
    }
}

impl ClusterMemory for HostClusterMemory {
    fn set_prot(&self, host: HostId, vpage: usize, prot: PageProt) -> Result<(), MemFault> {
        self.mem(host).set_prot(vpage, prot)
    }

    fn priv_read(&self, host: HostId, addr: VAddr, len: usize) -> Result<Vec<u8>, MemFault> {
        self.mem(host).priv_read(addr, len)
    }

    fn priv_write(&self, host: HostId, addr: VAddr, data: &[u8]) -> Result<(), MemFault> {
        self.mem(host).priv_write(addr, data)
    }

    fn learn_rc(&self, _host: HostId, _vpages: Range<usize>, _info: MpInfo) {
        // SequentialSwMr only: no release-consistency bookkeeping.
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Per-application-thread runtime state the fault resolver needs. One per
/// host (the host backend runs one application thread per host).
struct ThreadRt {
    host: HostId,
    /// This thread's (fixed) event id — events are per-host scoped, so a
    /// constant nonzero id is protocol-valid.
    event: u64,
    /// Server → application completion channel (recv side).
    res_rx: libc::c_int,
    /// Send side, held by the host's server thread.
    res_tx: libc::c_int,
    /// Canonical address of the last serviced fault, still owing the
    /// manager its window-closing `Ack` (0 = none). Set by the resolver,
    /// drained at the next fault, after each range operation, and before
    /// every barrier.
    pending_ack: AtomicU64,
}

/// Process-wide runtime shared by servers, application threads and the
/// SIGSEGV resolver. Leaked for the process lifetime (the fault-handler
/// registry keeps the regions alive anyway), so the resolver may reach it
/// from signal context through a plain pointer.
struct HostRt {
    geo: Geometry,
    manager: HostId,
    srv_tx: Arc<Vec<libc::c_int>>,
    threads: Vec<ThreadRt>,
    /// Sharing diagnostics. The table behind the sink is pre-allocated and
    /// leaked with the runtime; recording is relaxed atomic adds, so the
    /// SIGSEGV resolver may record from signal context.
    diag: DiagSink,
    /// `vpage → (minipage id, base address)`, built once after setup (the
    /// host backend takes no runtime allocations), so the resolver can
    /// attribute a raw fault to its minipage without translation machinery.
    /// `(u32::MAX, 0)` marks an unallocated vpage. Empty when diagnostics
    /// are off.
    mp_map: Vec<(u32, u64)>,
}

thread_local! {
    /// Index of this application thread in [`HostRt::threads`]
    /// (`usize::MAX` on non-application threads). Const-initialized: the
    /// first read from signal context takes no lazy-init path.
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

impl HostRt {
    /// Sends `msg` as a bare header to `to`'s server. Async-signal-safe.
    fn send_header(&self, to: HostId, wire_from: HostId, msg: &Pmsg) -> Result<(), i32> {
        self.diag.wire_send(wire_from.0, to.0, 0);
        let mut head = [0u8; HEADER];
        encode_header(&mut head, wire_from, msg, 0);
        send_fd(self.srv_tx[to.index()], &head)
    }

    /// Flushes the thread's pending window-closing `Ack`, if any.
    /// Async-signal-safe.
    fn flush_ack(&self, th: &ThreadRt) -> Result<(), i32> {
        let addr = th.pending_ack.swap(0, Ordering::AcqRel);
        if addr == 0 {
            return Ok(());
        }
        // Figure 3's fault-service confirmation: event 0, addressed so the
        // manager can translate it back to the minipage. Centralized homes:
        // every window lives at the manager.
        let ack = Pmsg::new(MsgKind::Ack, th.host, 0).with_addr(VAddr(addr));
        self.send_header(self.manager, th.host, &ack)
    }
}

/// The DSM fault resolver: runs on the faulting application thread, in
/// signal context. Sends the read/write request the paper's fault handler
/// sends, then blocks on the completion socket until this host's server
/// has installed the reply and opened the page. Everything on this path is
/// async-signal-safe: atomics, const-init TLS, `send`/`recv`.
fn dsm_resolver(_region: &MultiViewRegion, fault: &RawFault, token: usize) -> bool {
    // SAFETY: `token` is the leaked HostRt pointer installed alongside the
    // handler; it lives for the process lifetime.
    let rt = unsafe { &*(token as *const HostRt) };
    let slot = SLOT.with(|s| s.get());
    if slot == usize::MAX {
        return false; // A fault off the application threads is a crash.
    }
    let th = &rt.threads[slot];
    if rt.flush_ack(th).is_err() {
        return false;
    }
    let addr = rt.geo.addr_of(fault.view, fault.page, fault.offset);
    let kind = if fault.write {
        MsgKind::WriteRequest
    } else {
        MsgKind::ReadRequest
    };
    // Per-minipage heat, recorded at the same point the sim's
    // `service_fault` records it: a table lookup plus relaxed atomic adds,
    // all async-signal-safe. A fault on an unmapped vpage attributes to
    // `u32::MAX`, which the table counts as overflow.
    if rt.diag.enabled() {
        let vpage = rt.geo.vpage_index(fault.view, fault.page);
        let (mp, base) = rt.mp_map.get(vpage).copied().unwrap_or((u32::MAX, 0));
        if fault.write {
            rt.diag
                .write_fault(mp, th.host.0, addr.0.saturating_sub(base), 1);
        } else {
            rt.diag.read_fault(mp, th.host.0);
        }
    }
    let req = Pmsg::new(kind, th.host, th.event).with_addr(addr);
    if rt.send_header(rt.manager, th.host, &req).is_err() {
        return false;
    }
    // Block until the server thread signals the install. The reply header
    // itself carries no data — the bytes went straight into the region
    // through the privileged view (the zero-copy receive path).
    let mut head = [0u8; HEADER];
    let Ok(n) = recv_fd(th.res_rx, &mut head) else {
        return false;
    };
    if n < HEADER {
        return false;
    }
    match kind_from_u8(head[0]) {
        Some(MsgKind::ReadReply | MsgKind::WriteReply) => {}
        _ => return false, // Nacked or torn down: crash with a core.
    }
    th.pending_ack.store(addr.0, Ordering::Release);
    true
}

// ---------------------------------------------------------------------------
// Server loop
// ---------------------------------------------------------------------------

/// What one host's server thread hands back at shutdown.
struct HostServerOutcome {
    /// Protocol/backend errors (fatal to the affected request; a non-empty
    /// list fails the run report).
    errors: Vec<String>,
    /// Invalidations applied on this host (protocol counter, matches the
    /// sim's `invalidations_received`).
    invalidations: u64,
    /// Adaptation actions this host's shard applied.
    adapt: crate::adapt::AdaptReport,
}

/// One host's DSM server: the real-thread analogue of
/// [`server::server_loop`], dispatching into the same shard and engine
/// code through the backend traits.
#[allow(clippy::too_many_arguments)]
fn host_server_loop(
    me: HostId,
    srv_rx: libc::c_int,
    res_tx: libc::c_int,
    mem: HostMemory,
    mut shard: ManagerShard,
    ep: SocketTransport,
    mut clock: WallClock,
    cost: CostModel,
    diag: DiagSink,
) -> HostServerOutcome {
    let home = Arc::clone(shard.home_table());
    let tracer = Tracer::disabled();
    let mut rec = tracer.recorder(me, Track::Server);
    let mut errors = Vec::new();
    let mut invalidations = 0u64;
    let mut buf = vec![0u8; HEADER + MAX_DATA];
    loop {
        let n = match recv_fd(srv_rx, &mut buf) {
            Ok(n) => n,
            Err(errno) => {
                errors.push(format!(
                    "h{}: server recv failed: errno {errno}",
                    me.index()
                ));
                break;
            }
        };
        let Some((wire_from, m)) = decode_frame(&buf[..n]) else {
            errors.push(format!("h{}: malformed frame ({n} bytes)", me.index()));
            continue;
        };
        let kind = m.kind;
        let event = m.event;
        let result: Result<(), ProtocolError> = match kind {
            MsgKind::Shutdown => break,
            // Shard-addressed kinds: identical dispatch to the simulator's.
            MsgKind::ReadRequest
            | MsgKind::WriteRequest
            | MsgKind::InvalidateReply
            | MsgKind::Ack
            | MsgKind::AllocRequest
            | MsgKind::BarrierEnter
            | MsgKind::LockAcquire
            | MsgKind::LockRelease
            | MsgKind::PushRequest
            | MsgKind::RcDiff
            | MsgKind::AdaptApply
            | MsgKind::AdaptAck => shard.handle(m, &mut clock, &ep),
            MsgKind::ServeRead => server::serve_read(m, &mem, me, &cost, &mut clock, &ep, &mut rec),
            MsgKind::ServeWrite => {
                server::serve_write(m, &mem, me, &cost, &mut clock, &ep, &mut rec)
            }
            MsgKind::InvalidateRequest => {
                server::invalidate_local(&m, &mem, me, &cost, &mut clock, &mut rec).and_then(|()| {
                    invalidations += 1;
                    diag.inv_recv(m.minipage.0, me.0);
                    let mut reply = Pmsg::new(MsgKind::InvalidateReply, me, m.event);
                    reply.minipage = m.minipage;
                    reply.addr = m.addr;
                    ep.send(
                        home.home(m.minipage),
                        reply,
                        0,
                        clock.now(),
                        "invalidate reply",
                    )
                    .map(|_| ())
                })
            }
            MsgKind::ReadReply | MsgKind::WriteReply => {
                // A self-addressed reply carries bytes read from the very
                // page they would be written back to: skip the write, as
                // the simulator does (stale-reinstall fix).
                let skip_write = wire_from == me;
                server::install_reply(&m, &mem, me, &cost, &mut clock, &mut rec, skip_write)
                    .and_then(|_| {
                        // Page open: release the faulting thread (the
                        // sim's event signal, here a completion datagram).
                        let mut head = [0u8; HEADER];
                        encode_header(&mut head, me, &m, 0);
                        send_fd(res_tx, &head).map_err(|errno| ProtocolError::Backend {
                            host: me,
                            what: "completion forward",
                            errno,
                        })
                    })
            }
            // Synchronization completions go straight to the (single)
            // application thread.
            MsgKind::AllocReply | MsgKind::BarrierRelease | MsgKind::LockGrant | MsgKind::Nack => {
                let mut head = [0u8; HEADER];
                encode_header(&mut head, me, &m, 0);
                send_fd(res_tx, &head).map_err(|errno| ProtocolError::Backend {
                    host: me,
                    what: "completion forward",
                    errno,
                })
            }
            MsgKind::PushData | MsgKind::RcDiffAck => Err(ProtocolError::Unroutable {
                host: me,
                kind: kind.name(),
            }),
        };
        if let Err(e) = result {
            // No fault plane to degrade through: a handler failure on this
            // backend is a real bug or a dead socket. Record it and, when a
            // thread is blocked on the outcome, crash it cleanly via Nack.
            errors.push(e.to_string());
            if event != 0 && matches!(kind, MsgKind::ReadReply | MsgKind::WriteReply) {
                let nack = Pmsg::new(MsgKind::Nack, me, event);
                let mut head = [0u8; HEADER];
                encode_header(&mut head, me, &nack, 0);
                let _ = send_fd(res_tx, &head);
            }
        }
    }
    HostServerOutcome {
        errors,
        invalidations,
        adapt: shard.adapt_report().clone(),
    }
}

// ---------------------------------------------------------------------------
// Application context
// ---------------------------------------------------------------------------

/// One application thread's context on the real-memory backend. Shared
/// accesses are volatile loads/stores through the host's view mappings;
/// protection misses raise real SIGSEGVs resolved by [`dsm_resolver`].
pub struct HostDsmCtx {
    rt: &'static HostRt,
    slot: usize,
    region: Arc<MultiViewRegion>,
    /// Virtual compute charged by the portable kernels (tallied for
    /// reporting; wall time passes by itself here).
    compute_ns: Ns,
    timer_start: Instant,
}

impl HostDsmCtx {
    fn th(&self) -> &ThreadRt {
        &self.rt.threads[self.slot]
    }

    fn flush_ack(&self) {
        if self.rt.flush_ack(self.th()).is_err() {
            panic!("h{}: ack send failed", self.th().host.index());
        }
    }

    /// Copies `[addr, addr+len)` out of shared memory, one volatile byte
    /// at a time, faulting pages in on demand.
    fn read_bytes(&self, addr: VAddr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for (i, b) in out.iter_mut().enumerate() {
            let loc = self
                .rt
                .geo
                .decode(addr.add(i))
                .expect("shared address in range");
            *b = self.region.read_u8(loc.view, loc.page, loc.offset);
        }
        out
    }

    /// Stores `data` into shared memory byte-wise, faulting for write
    /// access on demand.
    fn write_bytes(&self, addr: VAddr, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let loc = self
                .rt
                .geo
                .decode(addr.add(i))
                .expect("shared address in range");
            self.region.write_u8(loc.view, loc.page, loc.offset, b);
        }
    }

    /// Blocks on the completion socket until `want` arrives; anything
    /// else on the channel is a protocol breach and panics.
    fn wait_for(&self, want: MsgKind) {
        let mut head = [0u8; HEADER];
        let n = recv_fd(self.th().res_rx, &mut head).expect("completion recv");
        assert!(n >= HEADER, "truncated completion");
        match kind_from_u8(head[0]) {
            Some(k) if k == want => {}
            Some(MsgKind::Nack) => {
                panic!("h{}: request nacked", self.th().host.index())
            }
            k => panic!("unexpected completion {k:?}"),
        }
    }

    /// Virtual compute tallied via [`Dsm::compute`] (for comparing the
    /// modeled kernel cost against real wall time).
    pub fn compute_tallied(&self) -> Ns {
        self.compute_ns
    }

    /// Wall time since the last [`Dsm::timer_reset`].
    pub fn timed_wall(&self) -> std::time::Duration {
        self.timer_start.elapsed()
    }
}

impl Dsm for HostDsmCtx {
    fn host(&self) -> HostId {
        self.th().host
    }

    fn hosts(&self) -> usize {
        self.rt.threads.len()
    }

    fn read_range<T: Pod>(&mut self, sv: &SharedVec<T>, range: Range<usize>) -> Vec<T> {
        if range.is_empty() {
            return Vec::new();
        }
        let (addr, len) = sv.range_bytes(range.start, range.end);
        let bytes = self.read_bytes(addr, len);
        self.flush_ack();
        decode_slice(&bytes)
    }

    fn write_range<T: Pod>(&mut self, sv: &SharedVec<T>, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        let (addr, _) = sv.range_bytes(start, start + vals.len());
        self.write_bytes(addr, &encode_slice(vals));
        self.flush_ack();
    }

    fn barrier(&mut self) {
        self.flush_ack();
        let th = self.th();
        let msg = Pmsg::new(MsgKind::BarrierEnter, th.host, th.event);
        if self.rt.send_header(self.rt.manager, th.host, &msg).is_err() {
            panic!("h{}: barrier send failed", th.host.index());
        }
        self.wait_for(MsgKind::BarrierRelease);
    }

    fn timer_reset(&mut self) {
        self.compute_ns = 0;
        self.timer_start = Instant::now();
    }

    fn compute(&mut self, ns: Ns) {
        self.compute_ns += ns;
    }
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

/// Configuration of a real-memory run.
#[derive(Clone, Debug)]
pub struct HostRunConfig {
    /// Hosts (one region + one server thread + one app thread each).
    pub hosts: usize,
    /// Application views per host.
    pub views: usize,
    /// Pages in the shared memory object.
    pub pages: usize,
    /// Per-minipage sharing diagnostics (see [`crate::diag`]); the same
    /// counters the simulator records, taken from the real fault and
    /// invalidation paths. Off by default.
    pub diag: bool,
    /// Online adaptation (see [`crate::adapt`]). The real-memory backend
    /// applies *home migration* only: applications hold raw pointers into
    /// their view, so the granularity rewrites (split/merge, which move
    /// minipages to fresh views) are force-disabled here regardless of
    /// what this config allows.
    pub adapt: crate::adapt::AdaptConfig,
}

impl Default for HostRunConfig {
    fn default() -> Self {
        Self {
            hosts: 2,
            views: 4,
            pages: 64,
            diag: false,
            adapt: crate::adapt::AdaptConfig::default(),
        }
    }
}

/// What a real-memory run reports: real fault counts from the SIGSEGV
/// handler, wall time, and any server-side errors (empty on a clean run).
#[derive(Clone, Debug)]
pub struct HostRunReport {
    /// Read faults taken per host (SIGSEGV handler counters).
    pub read_faults: Vec<u64>,
    /// Write faults taken per host.
    pub write_faults: Vec<u64>,
    /// Invalidations applied per host.
    pub invalidations: Vec<u64>,
    /// Wall-clock duration of the application phase.
    pub wall: std::time::Duration,
    /// Virtual compute tallied by host 0's kernels (comparison aid).
    pub compute_ns: Ns,
    /// Server-side protocol/backend errors; non-empty means the run is
    /// not trustworthy.
    pub errors: Vec<String>,
    /// Sharing diagnostics; `None` unless [`HostRunConfig::diag`] was set.
    pub diag: Option<DiagReport>,
    /// Adaptation actions (merged across shards); `None` unless
    /// [`HostRunConfig::adapt`] was enabled.
    pub adapt: Option<crate::adapt::AdaptReport>,
}

impl HostRunReport {
    /// Total faults (read + write) across all hosts.
    pub fn total_faults(&self) -> u64 {
        self.read_faults.iter().sum::<u64>() + self.write_faults.iter().sum::<u64>()
    }
}

/// Runs `setup` then one application thread per host on real memory —
/// the host-backend analogue of [`crate::run`].
///
/// The protocol layer (manager shards, serve/install/invalidate engine) is
/// the same code the simulator runs; memory is per-host
/// [`MultiViewRegion`]s, faults are real SIGSEGVs, and the wire is
/// socketpairs between real OS threads.
///
/// # Errors
///
/// Setup failures (region mapping, sockets, handler registration) are
/// returned; protocol errors during the run surface in
/// [`HostRunReport::errors`]. An application panic propagates.
pub fn run_host<T, F>(
    cfg: HostRunConfig,
    setup: impl FnOnce(&mut SetupCtx) -> T,
    app: F,
) -> Result<HostRunReport, ProtocolError>
where
    T: Send + Sync,
    F: Fn(&mut HostDsmCtx, &T) + Send + Sync,
{
    assert!(cfg.hosts >= 1, "need at least one host");
    let manager = HostId(0);
    let mut regions = Vec::with_capacity(cfg.hosts);
    for h in 0..cfg.hosts {
        let region = MultiViewRegion::new(cfg.pages, cfg.views).map_err(|e| {
            let _ = e;
            backend_err(HostId(h as u16), "region mapping")
        })?;
        regions.push(Arc::new(region));
    }
    let page_size = regions[0].page_size();
    let geo = Geometry::with_layout(DEFAULT_BASE, page_size, cfg.pages, cfg.views);
    let home = Arc::new(HomeTable::new(
        HomePolicyKind::Centralized,
        cfg.hosts,
        manager,
        geo.clone(),
    ));
    let cluster: Arc<dyn ClusterMemory> = Arc::new(HostClusterMemory {
        geo: geo.clone(),
        regions: regions.clone(),
    });
    let cost = CostModel::default();
    let tracer = Tracer::disabled();
    // Sized like the sim backend's table: one slot per application-view
    // vpage bounds the minipage ids, so the signal-context recording
    // never hits the overflow path.
    let diag_table = cfg
        .diag
        .then(|| DiagTable::with_slots(cfg.hosts, geo.priv_view() * geo.pages()));
    let diag_sink = diag_table
        .as_ref()
        .map(|t| DiagSink::new(Arc::clone(t)))
        .unwrap_or_default();
    let mut shards: Vec<Option<ManagerShard>> = (0..cfg.hosts)
        .map(|h| {
            let allocator = (h == manager.index())
                .then(|| Allocator::new(geo.clone(), AllocMode::FineGrain { chunking: 1 }));
            Some(ManagerShard::new(
                HostId(h as u16),
                cfg.hosts,
                cfg.hosts, // one app thread per host = barrier quorum
                cost.clone(),
                Consistency::SequentialSwMr,
                allocator,
                Arc::clone(&home),
                Arc::clone(&cluster),
                tracer.recorder(HostId(h as u16), Track::Shard),
                diag_sink.clone(),
                crate::adapt::AdaptConfig {
                    // Raw application pointers: granularity rewrites are
                    // sim-only. Migration is safe — addresses are stable.
                    allow_split: false,
                    allow_merge: false,
                    ..cfg.adapt.clone()
                },
            ))
        })
        .collect();
    let shared = {
        let mgr = shards[manager.index()].as_mut().expect("shard present");
        let mut sctx = SetupCtx::new(mgr);
        setup(&mut sctx)
    };

    // Wire: one server inbox + one completion channel per host. The fds
    // (like the runtime below) are leaked — the SIGSEGV resolver may hold
    // them in signal context at any point for the rest of the process.
    let mut srv_tx = Vec::with_capacity(cfg.hosts);
    let mut srv_rx = Vec::with_capacity(cfg.hosts);
    let mut threads = Vec::with_capacity(cfg.hosts);
    for h in 0..cfg.hosts {
        let (a, b) = seqpacket_pair()?;
        srv_tx.push(a);
        srv_rx.push(b);
        let (rtx, rrx) = seqpacket_pair()?;
        threads.push(ThreadRt {
            host: HostId(h as u16),
            event: 1,
            res_rx: rrx,
            res_tx: rtx,
            pending_ack: AtomicU64::new(0),
        });
    }
    let srv_tx = Arc::new(srv_tx);
    // Setup has run, so the minipage table is final: freeze the vpage →
    // minipage attribution map the resolver uses from signal context.
    let mp_map = if diag_sink.enabled() {
        let mut map = vec![(u32::MAX, 0u64); geo.priv_view() * geo.pages()];
        for mp in home.mpt().snapshot() {
            for vp in mp.vpages(&geo) {
                if let Some(slot) = map.get_mut(vp) {
                    *slot = (mp.id.0, mp.base.0);
                }
            }
        }
        map
    } else {
        Vec::new()
    };
    let rt: &'static HostRt = Box::leak(Box::new(HostRt {
        geo: geo.clone(),
        manager,
        srv_tx: Arc::clone(&srv_tx),
        threads,
        diag: diag_sink.clone(),
        mp_map,
    }));
    let token = rt as *const HostRt as usize;
    let mut counters: Vec<FaultCounters> = Vec::with_capacity(cfg.hosts);
    for region in &regions {
        let c = install_dsm_handler(Arc::clone(region), dsm_resolver, token).map_err(|e| {
            let _ = e;
            backend_err(manager, "fault handler registration")
        })?;
        counters.push(c);
    }

    let start = Instant::now();
    let shared_ref = &shared;
    let app_ref = &app;
    let (outcomes, wall, compute_ns) = std::thread::scope(|scope| {
        let mut servers = Vec::with_capacity(cfg.hosts);
        for h in 0..cfg.hosts {
            let me = HostId(h as u16);
            let mem = HostMemory {
                geo: geo.clone(),
                region: Arc::clone(&regions[h]),
            };
            let shard = shards[h].take().expect("shard present");
            let ep = SocketTransport {
                me,
                srv_tx: Arc::clone(&srv_tx),
                diag: diag_sink.clone(),
            };
            let clock = WallClock { start };
            let cost = cost.clone();
            let diag = diag_sink.clone();
            let (rx, res_tx) = (srv_rx[h], rt.threads[h].res_tx);
            servers.push(
                std::thread::Builder::new()
                    .name(format!("mv-server-{h}"))
                    .spawn_scoped(scope, move || {
                        host_server_loop(me, rx, res_tx, mem, shard, ep, clock, cost, diag)
                    })
                    .expect("spawn server thread"),
            );
        }
        let mut apps = Vec::with_capacity(cfg.hosts);
        for h in 0..cfg.hosts {
            let region = Arc::clone(&regions[h]);
            let builder = std::thread::Builder::new().name(format!("mv-host-{h}"));
            apps.push(
                builder
                    .spawn_scoped(scope, move || {
                        SLOT.with(|s| s.set(h));
                        let mut ctx = HostDsmCtx {
                            rt,
                            slot: h,
                            region,
                            compute_ns: 0,
                            timer_start: Instant::now(),
                        };
                        app_ref(&mut ctx, shared_ref);
                        ctx.compute_ns
                    })
                    .expect("spawn app thread"),
            );
        }
        let mut compute_ns = 0;
        let mut app_panic = None;
        for (h, a) in apps.into_iter().enumerate() {
            match a.join() {
                Ok(ns) => {
                    if h == 0 {
                        compute_ns = ns;
                    }
                }
                Err(p) => app_panic = Some(p),
            }
        }
        let wall = start.elapsed();
        for h in 0..cfg.hosts {
            let msg = Pmsg::new(MsgKind::Shutdown, manager, 0);
            let mut head = [0u8; HEADER];
            encode_header(&mut head, manager, &msg, 0);
            let _ = send_fd(srv_tx[h], &head);
        }
        let outcomes: Vec<HostServerOutcome> = servers
            .into_iter()
            .map(|s| s.join().expect("server thread panicked"))
            .collect();
        if let Some(p) = app_panic {
            std::panic::resume_unwind(p);
        }
        (outcomes, wall, compute_ns)
    });

    let adapt = cfg.adapt.enabled.then(|| {
        let mut merged = crate::adapt::AdaptReport::default();
        for o in &outcomes {
            merged.absorb(o.adapt.clone());
        }
        merged
    });
    let mut errors: Vec<String> = outcomes.iter().flat_map(|o| o.errors.clone()).collect();
    // Same post-run geometry oracle the sim backend applies after any
    // adaptation action.
    if home.mpt().adapt_gen() != 0 {
        errors.extend(home.mpt().geometry_violations(&geo));
    }
    Ok(HostRunReport {
        read_faults: counters.iter().map(|c| c.read_faults()).collect(),
        write_faults: counters.iter().map(|c| c.write_faults()).collect(),
        invalidations: outcomes.iter().map(|o| o.invalidations).collect(),
        wall,
        compute_ns,
        errors,
        diag: diag_table.map(|t| {
            let minipages = home.mpt().snapshot();
            let links = t.link_stats();
            build_report(&t, &minipages, &geo, &home, links)
        }),
        adapt,
    })
}
