//! Schedule exploration over the deterministic scheduler.
//!
//! The cooperative scheduler (`sim_core::sched`) makes one seed one
//! interleaving; this module turns that into a bug-hunting harness in the
//! style of model checkers like dscheck and shuttle: run the same workload
//! under many *seeded* schedules — alternating uniform random walks and
//! PCT priority schedules — and hold every run to the full oracle stack
//! (application asserts, [`RunReport::coherence_violations`],
//! [`RunReport::protocol_errors`], and the trace-replay
//! [`audit`](crate::audit::audit)). The first violating schedule is
//! shrunk to a minimal decision sequence that still reproduces the
//! violation, serialized as a small JSON [`MinimizedRepro`] that replays
//! exactly via [`SchedMode::replay`].
//!
//! Shrinking exploits a property of the replay policy: a choice that does
//! not name a runnable thread falls back to the canonical virtual-time
//! pick. A reproducer therefore stays *valid* under any edit — shrinking
//! only has to preserve *failure*, which it checks by replaying. Two
//! passes run under a replay budget: a binary search for the shortest
//! failing prefix (everything after the prefix falls back to virtual
//! time), then a right-to-left pass substituting `u32::MAX` (an always
//! invalid slot, i.e. "take the canonical pick here") for individual
//! decisions. What survives is the small set of forced preemptions that
//! actually matter — typically a handful out of tens of thousands.

use crate::audit::{audit, AuditMode};
use crate::cluster::{run, ClusterConfig};
use crate::hlrc::Consistency;
use crate::home::HomePolicyKind;
use crate::stats::RunReport;
use sim_core::sched::SchedMode;
use sim_core::trace::esc;
use sim_core::{SplitMix64, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Exploration budget and tuning knobs.
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// How many distinct schedules to try.
    pub schedules: usize,
    /// Master seed; schedule `i` derives its own seed from a SplitMix64
    /// stream, so the whole sweep replays from this one value.
    pub seed: u64,
    /// PCT preemption depth (number of forced priority-change points) for
    /// the odd-numbered schedules.
    pub pct_depth: u32,
    /// Trace ring capacity per run. The auditor only sees complete logs;
    /// if a run overflows the ring its audit is skipped (the other
    /// oracles still apply).
    pub trace_capacity: usize,
    /// Replay budget for shrinking a violating schedule.
    pub shrink_budget: usize,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        Self {
            schedules: 200,
            seed: 7,
            pct_depth: 3,
            trace_capacity: 1 << 15,
            shrink_budget: 128,
        }
    }
}

/// A violating schedule shrunk to a minimal replayable reproducer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimizedRepro {
    /// The sweep's master seed.
    pub seed: u64,
    /// Which schedule in the sweep failed (0-based).
    pub schedule_index: usize,
    /// Policy that found it (`"random"` or `"pct"`).
    pub policy: String,
    /// Minimized decision sequence for [`SchedMode::replay`]. Entries of
    /// `u32::MAX` (and everything past the end) mean "canonical
    /// virtual-time pick".
    pub choices: Vec<u32>,
    /// Every oracle violation the original schedule produced.
    pub violations: Vec<String>,
    /// Replays the shrinker spent minimizing.
    pub replays_used: usize,
}

/// Result of an exploration sweep.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Schedules actually run (== `opts.schedules` on a clean sweep; the
    /// sweep stops at the first violation).
    pub schedules_run: usize,
    /// The shrunk first violation, if any schedule produced one.
    pub finding: Option<MinimizedRepro>,
}

impl ExploreOutcome {
    /// True when every schedule passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.finding.is_none()
    }
}

/// Runs `runner` once under `mode`, returning every oracle violation and
/// the decision log the scheduler recorded.
fn run_one(
    base: &ClusterConfig,
    mode: &SchedMode,
    runner: &dyn Fn(ClusterConfig) -> RunReport,
    trace_capacity: usize,
) -> (Vec<String>, Vec<u32>) {
    let tracer = Tracer::enabled(trace_capacity);
    let mut cfg = base.clone();
    cfg.tracer = tracer.clone();
    cfg.sched = mode.clone();
    let audit_mode = match cfg.consistency {
        Consistency::SequentialSwMr => AuditMode::SwMr,
        Consistency::HomeEagerRc => AuditMode::Hlrc,
    };
    let mut violations = Vec::new();
    match catch_unwind(AssertUnwindSafe(|| runner(cfg))) {
        Ok(report) => {
            violations.extend(report.coherence_violations.iter().cloned());
            violations.extend(report.protocol_errors.iter().cloned());
        }
        Err(payload) => violations.push(format!("panic: {}", panic_message(&*payload))),
    }
    let log = tracer.drain();
    if log.dropped == 0 {
        violations.extend(audit(&log.events, audit_mode));
    }
    (violations, mode.decisions())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Explores `opts.schedules` seeded interleavings of `runner` on `base`,
/// alternating random-walk and PCT schedules. Returns at the first
/// violating schedule with a shrunk [`MinimizedRepro`]; a clean outcome
/// means every schedule passed application asserts, the report's
/// violation lists, and the trace auditor.
///
/// `base.sched` and `base.tracer` are overridden per schedule; every
/// other field (including the fault plane and `bug_stale_reinstall`) is
/// explored as configured.
pub fn explore(
    base: &ClusterConfig,
    runner: impl Fn(ClusterConfig) -> RunReport,
    opts: &ExploreOpts,
) -> ExploreOutcome {
    let _quiet = QuietPanics::install();
    explore_inner(base, &runner, opts)
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync + 'static>;

/// (active guards, hook saved by the first guard).
static QUIET: Mutex<(usize, Option<PanicHook>)> = Mutex::new((0, None));

/// Expected-panic oracles (application asserts) fire repeatedly while
/// exploring and shrinking; this guard silences the default hook's
/// backtrace spam while any sweep is active. Refcounted so concurrent
/// sweeps (parallel tests in one binary) restore the original hook
/// exactly once, when the last one finishes.
struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        let mut g = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        if g.0 == 0 {
            g.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        g.0 += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut g = QUIET.lock().unwrap_or_else(|e| e.into_inner());
        g.0 -= 1;
        if g.0 == 0 {
            if let Some(hook) = g.1.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

fn explore_inner(
    base: &ClusterConfig,
    runner: &dyn Fn(ClusterConfig) -> RunReport,
    opts: &ExploreOpts,
) -> ExploreOutcome {
    let mut seeds = SplitMix64::new(opts.seed);
    for i in 0..opts.schedules {
        let s = seeds.next_u64();
        let mode = if i % 2 == 0 {
            SchedMode::random(s)
        } else {
            SchedMode::pct(s, opts.pct_depth)
        };
        let (violations, decisions) = run_one(base, &mode, runner, opts.trace_capacity);
        if !violations.is_empty() {
            let (choices, replays_used) = shrink(base, runner, decisions, opts);
            return ExploreOutcome {
                schedules_run: i + 1,
                finding: Some(MinimizedRepro {
                    seed: opts.seed,
                    schedule_index: i,
                    policy: mode.policy_name().to_string(),
                    choices,
                    violations,
                    replays_used,
                }),
            };
        }
    }
    ExploreOutcome {
        schedules_run: opts.schedules,
        finding: None,
    }
}

/// Result of an adaptation-point sweep ([`explore_adapt_points`]).
#[derive(Debug)]
pub struct AdaptSweepOutcome {
    /// Start barriers actually explored (the sweep stops at the first
    /// violating point).
    pub points_run: Vec<u64>,
    /// The violating point and its shrunk reproducer, if any.
    pub finding: Option<(u64, MinimizedRepro)>,
}

impl AdaptSweepOutcome {
    /// True when every adaptation point passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.finding.is_none()
    }
}

/// Sweeps *adaptation points*: re-runs the exploration with the
/// adaptation engine armed at each start barrier in `points`, splitting
/// `opts.schedules` evenly across the points. Split/merge/migration then
/// fire at a different moment of the execution in every arm, and each
/// arm holds the full oracle stack — the protocol invariants must
/// survive the actions no matter which barrier triggers them. `base`'s
/// other adaptation knobs (action gates, budget) are explored as
/// configured; only `enabled` and `start_barrier` are overridden.
pub fn explore_adapt_points(
    base: &ClusterConfig,
    runner: impl Fn(ClusterConfig) -> RunReport,
    opts: &ExploreOpts,
    points: &[u64],
) -> AdaptSweepOutcome {
    let _quiet = QuietPanics::install();
    let per_point = ExploreOpts {
        schedules: opts.schedules.div_ceil(points.len().max(1)).max(1),
        ..opts.clone()
    };
    let mut points_run = Vec::new();
    for &p in points {
        let mut cfg = base.clone();
        cfg.adapt.enabled = true;
        cfg.adapt.start_barrier = p;
        let o = explore_inner(&cfg, &runner, &per_point);
        points_run.push(p);
        if let Some(f) = o.finding {
            return AdaptSweepOutcome {
                points_run,
                finding: Some((p, f)),
            };
        }
    }
    AdaptSweepOutcome {
        points_run,
        finding: None,
    }
}

/// Replays `repro.choices` against `base` and returns the violations the
/// replay produces (empty = the reproducer no longer fails, e.g. on fixed
/// code). Panic hook handling matches [`explore`].
pub fn replay_repro(
    base: &ClusterConfig,
    runner: impl Fn(ClusterConfig) -> RunReport,
    repro: &MinimizedRepro,
    trace_capacity: usize,
) -> Vec<String> {
    let _quiet = QuietPanics::install();
    let mode = SchedMode::replay(repro.choices.clone());
    let (violations, _) = run_one(base, &mode, &runner, trace_capacity);
    violations
}

/// Shrinks a failing decision log under a replay budget: binary-search
/// the shortest failing prefix, then substitute the canonical pick
/// (`u32::MAX`) for individual decisions right-to-left. Every kept edit
/// was re-confirmed to fail, so the result is always a true reproducer.
fn shrink(
    base: &ClusterConfig,
    runner: &dyn Fn(ClusterConfig) -> RunReport,
    decisions: Vec<u32>,
    opts: &ExploreOpts,
) -> (Vec<u32>, usize) {
    let mut replays = 0usize;
    let fails = |choices: &[u32], replays: &mut usize| -> bool {
        *replays += 1;
        let mode = SchedMode::replay(choices.to_vec());
        let (v, _) = run_one(base, &mode, runner, opts.trace_capacity);
        !v.is_empty()
    };

    // The recorded log replays the violating run decision-for-decision;
    // confirm that before spending the budget (a failed confirmation
    // would mean nondeterminism outside the scheduler — return the raw
    // log so the caller still has the best available artifact).
    if !fails(&decisions, &mut replays) {
        return (decisions, replays);
    }

    // Pass 1: shortest failing prefix. `hi` is always a confirmed-failing
    // prefix length.
    let (mut lo, mut hi) = (0usize, decisions.len());
    while lo < hi && replays < opts.shrink_budget {
        let mid = lo + (hi - lo) / 2;
        if fails(&decisions[..mid], &mut replays) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut choices = decisions[..hi].to_vec();

    // Pass 2: right-to-left, replace single decisions with the canonical
    // virtual-time pick where the failure survives it.
    for i in (0..choices.len()).rev() {
        if replays >= opts.shrink_budget {
            break;
        }
        if choices[i] == u32::MAX {
            continue;
        }
        let kept = choices[i];
        choices[i] = u32::MAX;
        if !fails(&choices, &mut replays) {
            choices[i] = kept;
        }
    }

    // A trailing canonical pick is the replay policy's own fallback;
    // dropping it changes nothing about the run.
    while choices.last() == Some(&u32::MAX) {
        choices.pop();
    }
    (choices, replays)
}

// ---------------------------------------------------------------------------
// Reproducer JSON (hand-rolled: the repo builds offline, no serde).

impl MinimizedRepro {
    /// Serializes the reproducer as a small standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 12 * self.choices.len());
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"schedule_index\": {},\n", self.schedule_index));
        s.push_str(&format!("  \"policy\": \"{}\",\n", esc(&self.policy)));
        s.push_str("  \"choices\": [");
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&c.to_string());
        }
        s.push_str("],\n");
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    \"");
            s.push_str(&esc(v));
            s.push('"');
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"replays_used\": {}\n", self.replays_used));
        s.push_str("}\n");
        s
    }

    /// Parses a document produced by [`MinimizedRepro::to_json`]. Returns
    /// `None` on anything structurally unexpected. This is a purposely
    /// small field extractor, not a general JSON parser — it only has to
    /// round-trip its own output.
    pub fn from_json(s: &str) -> Option<Self> {
        Some(Self {
            seed: json_u64(s, "seed")?,
            schedule_index: json_u64(s, "schedule_index")? as usize,
            policy: json_string(s, "policy")?,
            choices: json_u32_array(s, "choices")?,
            violations: json_string_array(s, "violations")?,
            replays_used: json_u64(s, "replays_used")? as usize,
        })
    }
}

/// Position just past `"key":` in `s`, skipping whitespace.
fn json_field(s: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let at = s.find(&needle)? + needle.len();
    let rest = &s[at..];
    let colon = rest.find(':')?;
    let mut i = at + colon + 1;
    while s[i..].starts_with([' ', '\n', '\t', '\r']) {
        i += 1;
    }
    Some(i)
}

fn json_u64(s: &str, key: &str) -> Option<u64> {
    let i = json_field(s, key)?;
    let digits: String = s[i..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Decodes the JSON string literal starting at the opening quote.
/// Returns the decoded string and the index just past the closing quote.
fn json_string_at(s: &str, start: usize) -> Option<(String, usize)> {
    let bytes = s.as_bytes();
    if bytes.get(start) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = s[start + 1..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => return Some((out, start + 1 + off + 1)),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

fn json_string(s: &str, key: &str) -> Option<String> {
    let i = json_field(s, key)?;
    json_string_at(s, i).map(|(v, _)| v)
}

fn json_u32_array(s: &str, key: &str) -> Option<Vec<u32>> {
    let i = json_field(s, key)?;
    let rest = &s[i..];
    if !rest.starts_with('[') {
        return None;
    }
    let end = rest.find(']')?;
    let body = &rest[1..end];
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(part.parse().ok()?);
    }
    Some(out)
}

fn json_string_array(s: &str, key: &str) -> Option<Vec<String>> {
    let mut i = json_field(s, key)?;
    if !s[i..].starts_with('[') {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        while s[i..].starts_with([' ', '\n', '\t', '\r', ',']) {
            i += 1;
        }
        if s[i..].starts_with(']') {
            return Some(out);
        }
        let (v, next) = json_string_at(s, i)?;
        out.push(v);
        i = next;
    }
}

// ---------------------------------------------------------------------------
// Built-in racy workload: the PR-3 stale-reinstall scenario.

/// Configuration for [`race_workload`]: three hosts under home-based
/// eager RC with interleaved homes, so the contended minipage is homed
/// on host 1 while host 0 runs the manager. This is the exact shape of
/// the fixed PR-3 stale-reinstall bug — a home host's *self-served*
/// fetch racing a remote writer's release diff through its own server
/// queue — so exploring it with
/// [`ClusterConfig::bug_stale_reinstall`] set demonstrates the harness
/// catches and shrinks a real historical protocol bug.
///
/// Three hosts are the minimum for the race: a flusher blocks for its
/// `RcDiffAck` before entering the barrier, so any fetch the *diff
/// itself* provokes (the fan-out invalidating the home's own mapping)
/// is causally ordered after that one diff and can only be raced by a
/// *second, independent* writer's diff.
pub fn race_config() -> ClusterConfig {
    ClusterConfig {
        hosts: 3,
        views: 4,
        pages: 8,
        threads_per_host: 1,
        consistency: Consistency::HomeEagerRc,
        home_policy: HomePolicyKind::Interleaved,
        manager: 0,
        seed: 0x5eed,
        ..ClusterConfig::default()
    }
}

/// The racy workload explored by the CI sweep. A three-element vector
/// lives on one minipage homed at host 1 (interleaved homes: the pad
/// cell takes mp0, the vector mp1). Each round hosts 0 and 2 write
/// disjoint elements remotely — fetch, twin, and a release diff shipped
/// home at barrier entry — while host 1, the home, writes the middle
/// element. Under HLRC the home copy starts read-only, a flusher drops
/// its own mapping, and a diff apply invalidates every copy holder, so
/// host 1 keeps re-fetching a minipage it homes: request, serve and
/// reply all pass through host 1's own server queue, and the reply's
/// payload is a serve-time snapshot of the very page it installs into.
/// After the barrier every host asserts both written values: on correct
/// code the home never installs its own snapshot and the asserts always
/// hold; with the PR-3 bug re-introduced, any schedule that applies one
/// writer's diff between the home's serve and its reply silently
/// reverts that diff — the lost update the sweep must catch.
pub fn race_workload(cfg: ClusterConfig) -> RunReport {
    run(
        cfg,
        |s| {
            let _pad = s.alloc_cell_init::<u64>(0);
            s.new_page();
            s.alloc_vec_init(&[0u64, 0, 0])
        },
        |ctx, sv| {
            for r in 0..6u64 {
                // Disjoint per-host elements: no write-write race. One
                // barrier per round, so a fast host's round r+1 fetches,
                // diffs and serves overlap a slow host's round-r asserts —
                // that overlap is where the home's self-served fetch can
                // straddle a diff apply.
                ctx.set(sv, ctx.host().index(), r + 1);
                ctx.barrier();
                for e in [0usize, 2] {
                    let v = ctx.get(sv, e);
                    // The element's owner flushed r+1 before the barrier
                    // and may have raced ahead to flush r+2; anything
                    // else is a lost or time-travelling update.
                    assert!(
                        v == r + 1 || v == r + 2,
                        "element {e} read {v} after barrier in round {r} \
                         (legal: {} or {})",
                        r + 1,
                        r + 2
                    );
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_json_round_trips() {
        let repro = MinimizedRepro {
            seed: 7,
            schedule_index: 13,
            policy: "pct".to_string(),
            choices: vec![0, 3, u32::MAX, 2],
            violations: vec![
                "panic: stale value after barrier in round 2".to_string(),
                "vt 10: mp4: \"quoted\"\nand newline".to_string(),
            ],
            replays_used: 42,
        };
        let json = repro.to_json();
        assert_eq!(MinimizedRepro::from_json(&json), Some(repro));
    }

    #[test]
    fn repro_json_round_trips_empty_lists() {
        let repro = MinimizedRepro {
            seed: 0,
            schedule_index: 0,
            policy: "random".to_string(),
            choices: vec![],
            violations: vec![],
            replays_used: 1,
        };
        let json = repro.to_json();
        assert_eq!(MinimizedRepro::from_json(&json), Some(repro));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert_eq!(MinimizedRepro::from_json("{}"), None);
        assert_eq!(MinimizedRepro::from_json("not json"), None);
        assert_eq!(
            MinimizedRepro::from_json("{\"seed\": 1, \"schedule_index\": []}"),
            None
        );
    }
}
