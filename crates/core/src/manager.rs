//! The manager, sharded per host (§3.3 + the §5 distribution).
//!
//! §3.3's manager keeps the MPT and the directory, translates faulting
//! addresses, forwards requests to copy holders, fans out invalidations,
//! queues competing requests, and hosts the synchronization services
//! (barriers, queue locks) and the shared allocator. "The manager's role
//! is essentially to mark and forward requests to hosts, and to maintain
//! the MPT."
//!
//! §5 observes that this single manager "may become a bottleneck" and that
//! "this problem can be solved by distributing the minipage management
//! among several managers". This module is that distribution: every host
//! runs a [`ManagerShard`], and each minipage's directory entry, service
//! window and (under release consistency) master copy live at the shard of
//! its *home* host, chosen by the cluster's
//! [`HomePolicy`](crate::home::HomePolicy). The MPT is replicated
//! read-only to all hosts through the [`HomeTable`], so every shard
//! translates locally. The shared allocator and the synchronization
//! services stay on the single manager host — they are not per-minipage
//! state. Under the `Centralized` policy every minipage is homed at the
//! manager host and the protocol is bit-for-bit the paper's original.

use crate::adapt::{AdaptAction, AdaptConfig, AdaptEngine, AdaptReport};
use crate::backend::{ClusterMemory, PageProt, ProtoClock, Transport};
use crate::diag::DiagSink;
use crate::diff::Diff;
use crate::directory::Directory;
use crate::error::ProtocolError;
use crate::hlrc::{Consistency, MpInfo};
use crate::home::HomeTable;
use crate::msg::{MsgKind, Pmsg};
use multiview::{AllocStats, Allocator, Minipage, MinipageId};
use sim_core::trace::{TraceKind, TraceRecorder};
use sim_core::{CostModel, HostId, LogHistogram, Ns, VAddr};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<HostId>,
    queue: VecDeque<Pmsg>,
}

/// Aggregated manager-side statistics for a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ManagerStats {
    /// Barriers completed.
    pub barriers: u64,
    /// Lock acquisitions granted.
    pub lock_acquires: u64,
    /// Invalidation requests fanned out.
    pub invalidations_sent: u64,
    /// Push broadcasts performed.
    pub pushes: u64,
    /// Pushes dropped because ownership moved before processing.
    pub stale_pushes: u64,
    /// Release-consistency diffs applied at the home.
    pub rc_diffs: u64,
}

/// One host's slice of the distributed manager: runs inside the DSM
/// server thread and owns the directory entries of the minipages homed
/// here. The manager host's shard additionally carries the shared
/// allocator and the synchronization services.
pub struct ManagerShard {
    me: HostId,
    hosts: usize,
    /// Total application threads (barrier quorum; ≥ hosts under §3.4
    /// multithreading).
    barrier_quorum: usize,
    cost: CostModel,
    consistency: Consistency,
    home: Arc<HomeTable>,
    /// The shared allocator; present only on the manager host.
    allocator: Option<Allocator>,
    dir: Directory,
    locks: HashMap<u64, LockState>,
    barrier_waiters: Vec<Pmsg>,
    stats: ManagerStats,
    /// Every host's memory, behind the backend boundary. The allocating
    /// shard initializes freshly allocated minipages directly in their
    /// home host's space — an alloc-time setup step, not protocol
    /// traffic: the minipage is unreachable by applications until the
    /// allocation reply delivers its address.
    cluster: Arc<dyn ClusterMemory>,
    /// Protocol tracer for shard-side events (inert unless tracing is on).
    trace: TraceRecorder,
    /// Sharing-diagnostics sink for home-side accounting: invalidation
    /// fan-outs, write-ownership alternations, diff extents. Inert unless
    /// diagnostics are on.
    diag: DiagSink,
    /// Invalidation round-trips observed at this shard: fan-out to last
    /// reply, per completed round.
    inv_rt: LogHistogram,
    /// Online adaptation engine: plans at barrier quiesce points (on the
    /// shard that collects the barrier quorum) and records every action
    /// this shard applies.
    adapt: AdaptEngine,
    /// Barrier waiters parked while remotely homed adaptation actions are
    /// outstanding: `(parked releases, acks still expected)`.
    adapt_pending: Option<(Vec<Pmsg>, usize)>,
}

impl ManagerShard {
    /// Creates the shard for host `me` in a cluster of `hosts` hosts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: HostId,
        hosts: usize,
        barrier_quorum: usize,
        cost: CostModel,
        consistency: Consistency,
        allocator: Option<Allocator>,
        home: Arc<HomeTable>,
        cluster: Arc<dyn ClusterMemory>,
        trace: TraceRecorder,
        diag: DiagSink,
        adapt: AdaptConfig,
    ) -> Self {
        Self {
            me,
            hosts,
            barrier_quorum,
            cost,
            consistency,
            allocator,
            dir: Directory::new(me),
            locks: HashMap::new(),
            barrier_waiters: Vec::new(),
            stats: ManagerStats::default(),
            home,
            cluster,
            trace,
            diag,
            inv_rt: LogHistogram::new(),
            adapt: AdaptEngine::new(adapt),
            adapt_pending: None,
        }
    }

    /// The host this shard runs on.
    pub fn me(&self) -> HostId {
        self.me
    }

    /// The cluster's home table (policy, homes, replicated MPT).
    pub(crate) fn home_table(&self) -> &Arc<HomeTable> {
        &self.home
    }

    /// Allocator statistics (Table 2's shared-memory size, views,
    /// granularity). Only the manager host's shard has them.
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator
            .as_ref()
            .expect("the allocator lives on the manager host")
            .stats()
    }

    /// Manager statistics accumulated at this shard.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Competing requests observed at this shard (Figure 7).
    pub fn competing_requests(&self) -> u64 {
        self.dir.competing_requests()
    }

    /// Invalidation round-trip times (fan-out to last reply) observed at
    /// this shard.
    pub fn inv_round_trip(&self) -> &LogHistogram {
        &self.inv_rt
    }

    /// Read-only directory access (tests, validation).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Adaptation actions this shard applied (merged cluster-wide into
    /// [`RunReport::adapt`](crate::RunReport)).
    pub fn adapt_report(&self) -> &AdaptReport {
        self.adapt.report()
    }

    /// Allocates shared memory and initializes its directory state: each
    /// new minipage is published to the home table and starts at its home
    /// host with a writable copy. Runs on the manager host only.
    /// `now` is the virtual time of the grant (0 during pre-run setup).
    pub(crate) fn do_alloc(&mut self, size: usize, requester: HostId, now: Ns) -> VAddr {
        let allocator = self
            .allocator
            .as_mut()
            .expect("allocations are served by the manager host");
        let before = allocator.mpt().len();
        let addr = allocator
            .alloc(size)
            .unwrap_or_else(|e| panic!("shared allocation failed: {e}"));
        let geo = allocator.geometry().clone();
        let new_mps: Vec<Minipage> = (before..allocator.mpt().len())
            .map(|idx| *allocator.mpt().get(MinipageId(idx as u32)))
            .collect();
        // Fresh minipages live at their home host. Under SW/MR the home
        // copy starts writable; under release consistency it starts
        // read-only so the home host's own writes twin and flush like
        // everyone else's.
        let home_prot = match self.consistency {
            Consistency::SequentialSwMr => PageProt::ReadWrite,
            Consistency::HomeEagerRc => PageProt::ReadOnly,
        };
        for mp in new_mps {
            let home = self.home.publish(mp, requester);
            // aux 1 = the home copy starts writable (SW/MR), 0 = read-only
            // (HLRC); peer = the home host the copy lands on.
            self.trace.emit(now, TraceKind::AllocGrant, |e| {
                e.with_mp(mp.id.0)
                    .with_peer(home)
                    .with_aux(u32::from(home_prot == PageProt::ReadWrite))
            });
            for vp in mp.vpages(&geo) {
                self.cluster
                    .set_prot(home, vp, home_prot)
                    .expect("application vpage");
            }
            if self.consistency == Consistency::HomeEagerRc {
                self.cluster.learn_rc(
                    home,
                    mp.vpages(&geo),
                    MpInfo {
                        id: mp.id,
                        base: mp.base,
                        len: mp.len,
                        priv_base: mp.priv_base(&geo),
                    },
                );
            }
        }
        addr
    }

    /// Closes the current chunk (see
    /// [`Allocator::finish_chunk`](multiview::Allocator::finish_chunk)).
    pub(crate) fn finish_chunk(&mut self) {
        self.allocator
            .as_mut()
            .expect("the allocator lives on the manager host")
            .finish_chunk();
    }

    /// See [`Allocator::retire_page`](multiview::Allocator::retire_page).
    pub(crate) fn retire_page(&mut self) {
        self.allocator
            .as_mut()
            .expect("the allocator lives on the manager host")
            .retire_page();
    }

    /// Pre-run initialization write (free): lands in the home host's
    /// memory of every minipage the range crosses, so the fresh master
    /// copies carry the data.
    pub(crate) fn init_write(&self, addr: VAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr.add(off);
            let mp = self
                .home
                .translate(cur)
                .unwrap_or_else(|| panic!("init write at {cur} hits no minipage"));
            let take = ((mp.base.0 + mp.len as u64 - cur.0) as usize).min(data.len() - off);
            let home = self.home.home(mp.id);
            self.cluster
                .priv_write(home, cur, &data[off..off + take])
                .expect("in range");
            off += take;
        }
    }

    /// Handles one shard-addressed message. `tl` is this host's server
    /// timeline (service-start already charged by the server loop); `ep`
    /// is its endpoint. A failed handler degrades the one request (the
    /// server loop records the error and nacks the requester).
    pub(crate) fn handle<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        match m.kind {
            MsgKind::ReadRequest => self.handle_read_request(m, tl, ep),
            MsgKind::WriteRequest => self.handle_write_request(m, tl, ep),
            MsgKind::InvalidateReply => self.handle_invalidate_reply(m, tl, ep),
            MsgKind::Ack => self.handle_ack(m, tl, ep),
            MsgKind::AllocRequest => self.handle_alloc(m, tl, ep),
            MsgKind::BarrierEnter => self.handle_barrier_enter(m, tl, ep),
            MsgKind::LockAcquire => self.handle_lock_acquire(m, tl, ep),
            MsgKind::LockRelease => self.handle_lock_release(m, tl, ep),
            MsgKind::PushRequest => self.handle_push(m, tl, ep),
            MsgKind::RcDiff => self.handle_rc_diff(m, tl, ep),
            MsgKind::AdaptApply => self.handle_adapt_apply(m, tl, ep),
            MsgKind::AdaptAck => self.handle_adapt_ack(m, tl, ep),
            other => Err(ProtocolError::Unroutable {
                host: self.me,
                kind: other.name(),
            }),
        }
    }

    /// Figure 3 `Translate`: fills the translation fields from the MPT
    /// replica. Returns `None` after forwarding a stale-homed request:
    /// the minipage migrated while the message was in flight (the sender
    /// routed with an older epoch of the home table), so the request is
    /// re-sent verbatim to the current home and local processing stops.
    fn translate<C: ProtoClock, T: Transport>(
        &mut self,
        m: &mut Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<Option<MinipageId>, ProtocolError> {
        tl.charge(self.cost.mpt_lookup);
        let mp = self
            .home
            .translate(m.addr)
            .ok_or(ProtocolError::BadTranslation {
                host: self.me,
                addr: m.addr.0 as usize,
                what: "faulting address",
            })?;
        m.base = mp.base;
        m.len = mp.len;
        m.priv_base = mp.priv_base(self.home.geometry());
        m.minipage = mp.id;
        let home = self.home.home(mp.id);
        if home != self.me {
            self.forward_stale(mp.id, m.clone(), home, tl, ep)?;
            return Ok(None);
        }
        Ok(Some(mp.id))
    }

    /// Forwards a request that reached a shard no longer homing its
    /// minipage. The `AdaptForward` record carries the request's event so
    /// the auditor can check exactly-once forwarding per request.
    fn forward_stale<C: ProtoClock, T: Transport>(
        &mut self,
        id: MinipageId,
        m: Pmsg,
        home: HostId,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let epoch = self.home.epoch();
        self.trace.emit(tl.now(), TraceKind::AdaptForward, |e| {
            e.with_mp(id.0)
                .with_peer(home)
                .with_event(m.event)
                .with_aux(epoch.min(u32::MAX as u64) as u32)
        });
        let payload = m.payload_bytes();
        ep.send(home, m, payload, tl.now(), "stale-home forward")?;
        Ok(())
    }

    /// [`Directory::begin_service`] with tracing: `WindowOpen` when the
    /// window opens, `ReqQueued` when the request queues behind one.
    /// `aux`: 0 = read, 1 = write, 2 = push, 3 = rc diff.
    fn open_window(&mut self, id: MinipageId, m: &Pmsg, now: Ns, aux: u32) -> bool {
        let opened = self.dir.begin_service(id.index(), m.clone());
        let kind = if opened {
            TraceKind::WindowOpen
        } else {
            TraceKind::ReqQueued
        };
        let peer = m.from;
        self.trace
            .emit(now, kind, |e| e.with_mp(id.0).with_peer(peer).with_aux(aux));
        opened
    }

    /// [`Directory::end_service`] with a `WindowClose` trace record. An
    /// ack can arrive for a windowless transfer (an HLRC home-served
    /// read); closing is a no-op then and records nothing.
    fn close_window(&mut self, id: MinipageId, now: Ns) -> Option<Pmsg> {
        let was_open = self.dir.entry(id.index()).in_service;
        let next = self.dir.end_service(id.index());
        if was_open {
            self.trace
                .emit(now, TraceKind::WindowClose, |e| e.with_mp(id.0));
        }
        next
    }

    fn handle_read_request<C: ProtoClock, T: Transport>(
        &mut self,
        mut m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let Some(id) = self.translate(&mut m, tl, ep)? else {
            return Ok(());
        };
        if self.consistency == Consistency::HomeEagerRc {
            // The home copy is always current at synchronization points:
            // serve directly, one hop, no service window.
            tl.charge(self.cost.dsm_overhead);
            let e = self.dir.entry(id.index());
            e.add(m.from);
            let data = self
                .cluster
                .priv_read(self.me, m.priv_base, m.len)
                .map_err(|_| ProtocolError::BadTranslation {
                    host: self.me,
                    addr: m.priv_base.0 as usize,
                    what: "home copy read",
                })?;
            let mut reply = m;
            reply.kind = MsgKind::ReadReply;
            reply.data = bytes::Bytes::from(data);
            let to = reply.from;
            let payload = reply.payload_bytes();
            self.trace.emit(tl.now(), TraceKind::Serve, |e| {
                e.with_mp(id.0).with_peer(to).with_aux(0)
            });
            ep.send(to, reply, payload, tl.now(), "home read reply")?;
            return Ok(());
        }
        if !self.open_window(id, &m, tl.now(), 0) {
            return Ok(()); // Queued as a competing request.
        }
        let e = self.dir.entry(id.index());
        let src = e.find_replica().ok_or(ProtocolError::MissingReplica {
            host: self.me,
            minipage: id.0,
        })?;
        // Serving a read downgrades any writable copy (Figure 3's "Handle
        // Read Request"); the directory forgets the writer now.
        e.owner = None;
        e.add(m.from);
        m.kind = MsgKind::ServeRead;
        self.trace.emit(tl.now(), TraceKind::Forward, |e| {
            e.with_mp(id.0).with_peer(src).with_aux(0)
        });
        ep.send(src, m, 0, tl.now(), "read forward")?;
        Ok(())
    }

    fn handle_write_request<C: ProtoClock, T: Transport>(
        &mut self,
        mut m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        if self.consistency != Consistency::SequentialSwMr {
            return Err(ProtocolError::BadState {
                host: self.me,
                what: "write request under release consistency",
            });
        }
        let Some(id) = self.translate(&mut m, tl, ep)? else {
            return Ok(());
        };
        if !self.open_window(id, &m, tl.now(), 1) {
            return Ok(());
        }
        let e = self.dir.entry(id.index());
        // Prefer upgrading in place when the requester already holds a
        // read copy; otherwise Figure 3's find_replica.
        let src = if e.holds(m.from) {
            m.from
        } else {
            e.find_replica().ok_or(ProtocolError::MissingReplica {
                host: self.me,
                minipage: id.0,
            })?
        };
        let targets: Vec<HostId> = e.holders().filter(|&h| h != src).collect();
        if targets.is_empty() {
            self.trace.emit(tl.now(), TraceKind::Forward, |e| {
                e.with_mp(id.0).with_peer(src).with_aux(1)
            });
            self.diag.writer(id.0, m.from.0);
            Self::forward_write(e, src, m, tl, ep)?;
        } else {
            e.inv_pending = targets.len() as u32;
            e.inv_sent_vt = tl.now();
            e.pending_write = Some(m.clone());
            self.stats.invalidations_sent += targets.len() as u64;
            self.diag.inv_sent(id.0, targets.len() as u64);
            for t in targets {
                let mut inv = m.clone();
                inv.kind = MsgKind::InvalidateRequest;
                inv.data = bytes::Bytes::new();
                self.trace.emit(tl.now(), TraceKind::InvSend, |e| {
                    e.with_mp(id.0).with_peer(t).with_event(inv.event)
                });
                ep.send(t, inv, 0, tl.now(), "invalidate fan-out")?;
            }
        }
        Ok(())
    }

    fn handle_invalidate_reply<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let id = m.minipage;
        let from = m.from;
        self.trace.emit(tl.now(), TraceKind::InvReplyRecv, |e| {
            e.with_mp(id.0).with_peer(from).with_event(m.event)
        });
        let pending = {
            let e = self.dir.entry(id.index());
            e.remove(m.from);
            // Distributed release consistency confirms every invalidation,
            // including untracked ones sent on the fire-and-forget eviction
            // path; those echo event 0 and only update the copyset. Tracked
            // invalidations echo the waiting request's (nonzero) event.
            if self.consistency == Consistency::HomeEagerRc && m.event == 0 {
                return Ok(());
            }
            if e.inv_pending == 0 {
                return Err(ProtocolError::BadState {
                    host: self.me,
                    what: "invalidate reply without pending invalidations",
                });
            }
            e.inv_pending -= 1;
            // Figure 3: "if got less than (#replicas - 1) replies then
            // return".
            if e.inv_pending == 0 {
                self.inv_rt.record(tl.now().saturating_sub(e.inv_sent_vt));
                Some(e.pending_write.take().ok_or(ProtocolError::BadState {
                    host: self.me,
                    what: "no request pending on these invalidations",
                })?)
            } else {
                None
            }
        };
        let Some(w) = pending else { return Ok(()) };
        if self.consistency == Consistency::HomeEagerRc {
            // The pending request is a flushed diff: every stale copy is
            // now gone, release the flusher.
            let ack = Pmsg::new(MsgKind::RcDiffAck, self.me, w.event).with_addr(w.addr);
            self.trace.emit(tl.now(), TraceKind::RcDiffAckSend, |e| {
                e.with_mp(id.0).with_peer(w.from).with_event(w.event)
            });
            ep.send(w.from, ack, 0, tl.now(), "rc diff ack")?;
            if let Some(next) = self.close_window(id, tl.now()) {
                self.dispatch_queued(next, tl, ep)?;
            }
        } else {
            let e = self.dir.entry(id.index());
            let src = e.find_replica().ok_or(ProtocolError::MissingReplica {
                host: self.me,
                minipage: id.0,
            })?;
            self.trace.emit(tl.now(), TraceKind::Forward, |e| {
                e.with_mp(id.0).with_peer(src).with_aux(1)
            });
            self.diag.writer(id.0, w.from.0);
            Self::forward_write(e, src, w, tl, ep)?;
        }
        Ok(())
    }

    fn forward_write<C: ProtoClock, T: Transport>(
        e: &mut crate::directory::DirectoryEntry,
        src: HostId,
        mut m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        e.copyset = 1u64 << m.from.index();
        e.owner = Some(m.from);
        m.kind = MsgKind::ServeWrite;
        ep.send(src, m, 0, tl.now(), "write forward")?;
        Ok(())
    }

    fn handle_ack<C: ProtoClock, T: Transport>(
        &mut self,
        mut m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let Some(id) = self.translate(&mut m, tl, ep)? else {
            return Ok(());
        };
        let from = m.from;
        self.trace.emit(tl.now(), TraceKind::AckRecv, |e| {
            e.with_mp(id.0).with_peer(from)
        });
        if let Some(next) = self.close_window(id, tl.now()) {
            // The queued competing request is serviced now.
            self.dispatch_queued(next, tl, ep)?;
        }
        Ok(())
    }

    fn dispatch_queued<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        match m.kind {
            MsgKind::ReadRequest => self.handle_read_request(m, tl, ep),
            MsgKind::WriteRequest => self.handle_write_request(m, tl, ep),
            MsgKind::PushRequest => self.handle_push(m, tl, ep),
            MsgKind::RcDiff => self.handle_rc_diff(m, tl, ep),
            other => Err(ProtocolError::Unroutable {
                host: self.me,
                kind: other.name(),
            }),
        }
    }

    fn handle_alloc<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        tl.charge(self.cost.mpt_lookup);
        let addr = self.do_alloc(m.aux as usize, m.from, tl.now());
        let mut reply = Pmsg::new(MsgKind::AllocReply, self.me, m.event);
        reply.addr = addr;
        ep.send(m.from, reply, 0, tl.now(), "alloc reply")?;
        Ok(())
    }

    fn handle_barrier_enter<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        self.barrier_waiters.push(m);
        if self.barrier_waiters.len() == self.barrier_quorum {
            tl.charge(self.cost.barrier_base);
            self.stats.barriers += 1;
            let waiters = std::mem::take(&mut self.barrier_waiters);
            // The quiesce point: every application thread is parked here,
            // so the adaptation engine may rewrite granularity and homing
            // before the releases go out. Remotely homed actions park the
            // releases until their acks arrive.
            let outstanding = self.run_adaptation(tl, ep)?;
            if outstanding > 0 {
                self.adapt_pending = Some((waiters, outstanding));
            } else {
                self.release_barrier(waiters, tl, ep)?;
            }
        }
        Ok(())
    }

    /// Sends the parked barrier releases.
    fn release_barrier<C: ProtoClock, T: Transport>(
        &mut self,
        waiters: Vec<Pmsg>,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        for w in waiters {
            tl.charge(self.cost.barrier_per_host);
            let mut rel = Pmsg::new(MsgKind::BarrierRelease, self.me, w.event);
            rel.addr = w.addr;
            self.trace
                .emit(tl.now(), TraceKind::BarrierReleaseSend, |e| {
                    e.with_peer(w.from).with_event(w.event)
                });
            ep.send(w.from, rel, 0, tl.now(), "barrier release")?;
        }
        Ok(())
    }

    fn handle_lock_acquire<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let st = self.locks.entry(m.aux).or_default();
        if st.held_by.is_none() {
            st.held_by = Some(m.from);
            self.stats.lock_acquires += 1;
            tl.charge(self.cost.lock_service);
            let grant = Pmsg::new(MsgKind::LockGrant, self.me, m.event).with_aux(m.aux);
            self.trace.emit(tl.now(), TraceKind::LockGrantSend, |e| {
                e.with_peer(m.from).with_event(m.aux)
            });
            ep.send(m.from, grant, 0, tl.now(), "lock grant")?;
        } else {
            st.queue.push_back(m);
        }
        Ok(())
    }

    fn handle_lock_release<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        tl.charge(self.cost.lock_service);
        let st = self.locks.get_mut(&m.aux).ok_or(ProtocolError::BadState {
            host: self.me,
            what: "release of an unknown lock",
        })?;
        if st.held_by != Some(m.from) {
            return Err(ProtocolError::BadState {
                host: self.me,
                what: "lock released by a non-holder",
            });
        }
        st.held_by = None;
        if let Some(next) = st.queue.pop_front() {
            st.held_by = Some(next.from);
            self.stats.lock_acquires += 1;
            let grant = Pmsg::new(MsgKind::LockGrant, self.me, next.event).with_aux(next.aux);
            self.trace.emit(tl.now(), TraceKind::LockGrantSend, |e| {
                e.with_peer(next.from).with_event(next.aux)
            });
            ep.send(next.from, grant, 0, tl.now(), "lock grant")?;
        }
        Ok(())
    }

    fn handle_push<C: ProtoClock, T: Transport>(
        &mut self,
        mut m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let Some(id) = self.translate(&mut m, tl, ep)? else {
            return Ok(());
        };
        if !self.open_window(id, &m, tl.now(), 2) {
            return Ok(()); // Queued behind an in-flight transfer.
        }
        {
            let hosts = self.hosts;
            let e = self.dir.entry(id.index());
            if e.owner == Some(m.from) {
                // Publish read copies everywhere (§4.3, the TSP bound).
                e.owner = None;
                e.copyset = all_hosts_mask(hosts);
                self.stats.pushes += 1;
                for h in 0..hosts {
                    let h = HostId(h as u16);
                    if h == m.from {
                        continue;
                    }
                    let mut push = m.clone();
                    push.kind = MsgKind::PushData;
                    let payload = push.payload_bytes();
                    ep.send(h, push, payload, tl.now(), "push data")?;
                }
            } else {
                // Ownership moved since the push was issued: stale, drop.
                self.stats.stale_pushes += 1;
            }
        }
        // Pushes hold no service window (no ack follows).
        if let Some(next) = self.close_window(id, tl.now()) {
            self.dispatch_queued(next, tl, ep)?;
        }
        Ok(())
    }
}

impl ManagerShard {
    /// Applies a release-point diff to the home copy and invalidates the
    /// other copies.
    ///
    /// Under the centralized policy the diff is fire-and-forget
    /// (`event == 0`): FIFO ordering to the single manager makes the
    /// invalidations land before any later barrier release or lock grant
    /// (see the `hlrc` module docs). With distributed homes that ordering
    /// argument breaks — the diff and the barrier travel on different
    /// channels — so flushed diffs carry an event, are serialized through
    /// the service window, and are acknowledged with [`MsgKind::RcDiffAck`]
    /// only once every stale copy has confirmed its invalidation. The
    /// flusher blocks on that ack before entering the barrier or
    /// releasing the lock.
    fn handle_rc_diff<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        if self.consistency != Consistency::HomeEagerRc {
            return Err(ProtocolError::BadState {
                host: self.me,
                what: "RcDiff under the SW/MR protocol",
            });
        }
        // A diff routed with a pre-migration home table lands at the old
        // home; forward it to the current one.
        let home = self.home.home(m.minipage);
        if home != self.me {
            let id = m.minipage;
            return self.forward_stale(id, m, home, tl, ep);
        }
        let acked = m.event != 0;
        if acked && !self.open_window(m.minipage, &m, tl.now(), 3) {
            return Ok(()); // A concurrent flush of this minipage is mid-window.
        }
        let diff = Diff::decode(&m.data).ok_or(ProtocolError::Malformed {
            host: self.me,
            what: "undecodable release diff",
        })?;
        let (mp, diff_bytes, diff_event) = (m.minipage.0, m.data.len(), m.event);
        self.trace.emit(tl.now(), TraceKind::RcDiffApply, |e| {
            e.with_mp(mp)
                .with_bytes(diff_bytes)
                .with_event(diff_event)
                .with_peer(m.from)
        });
        // Patch run by run: only changed bytes are written, so a racing
        // local write to *other* bytes of the page is never clobbered.
        self.diag.writer(mp, m.from.0);
        self.diag.diff_bytes(mp, diff_bytes as u64);
        for (off, bytes) in diff.iter_runs() {
            self.diag
                .write_extent(mp, m.from.0, off as u64, bytes.len() as u64);
            self.cluster
                .priv_write(self.me, m.priv_base.add(off), bytes)
                .map_err(|_| ProtocolError::BadTranslation {
                    host: self.me,
                    addr: m.priv_base.add(off).0 as usize,
                    what: "diff patch target",
                })?;
        }
        tl.charge((self.cost.patch_per_byte_ns * m.len as f64) as sim_core::Ns);
        self.stats.rc_diffs += 1;
        let me = self.me;
        let id = m.minipage;
        let e = self.dir.entry(id.index());
        let targets: Vec<HostId> = e.holders().filter(|&h| h != me).collect();
        self.stats.invalidations_sent += targets.len() as u64;
        self.diag.inv_sent(id.0, targets.len() as u64);
        for t in &targets {
            let mut inv = m.clone();
            inv.kind = MsgKind::InvalidateRequest;
            inv.data = bytes::Bytes::new();
            let t = *t;
            self.trace.emit(tl.now(), TraceKind::InvSend, |e| {
                e.with_mp(id.0).with_peer(t).with_event(inv.event)
            });
            ep.send(t, inv, 0, tl.now(), "rc invalidate fan-out")?;
        }
        e.copyset = 1u64 << me.index();
        e.owner = None;
        if acked {
            if targets.is_empty() {
                let ack = Pmsg::new(MsgKind::RcDiffAck, me, m.event).with_addr(m.addr);
                self.trace.emit(tl.now(), TraceKind::RcDiffAckSend, |e| {
                    e.with_mp(id.0).with_peer(m.from).with_event(m.event)
                });
                ep.send(m.from, ack, 0, tl.now(), "rc diff ack")?;
                if let Some(next) = self.close_window(id, tl.now()) {
                    self.dispatch_queued(next, tl, ep)?;
                }
            } else {
                // Ack once the last invalidation is confirmed.
                e.inv_pending = targets.len() as u32;
                e.inv_sent_vt = tl.now();
                e.pending_write = Some(m);
            }
        }
        Ok(())
    }
}

impl ManagerShard {
    /// The barrier-quiesce adaptation hook. Plans from a fresh
    /// diagnostics snapshot; applies locally homed actions directly and
    /// ships remotely homed ones as [`MsgKind::AdaptApply`]. Returns the
    /// number of remote applications whose acks the caller must await
    /// before releasing the barrier.
    fn run_adaptation<C: ProtoClock, T: Transport>(
        &mut self,
        tl: &mut C,
        ep: &T,
    ) -> Result<usize, ProtocolError> {
        let barrier = self.adapt.note_barrier();
        if !self.adapt.should_act(barrier) {
            return Ok(0);
        }
        let Some(table) = self.diag.table().cloned() else {
            return Ok(0); // No diagnostics, nothing to plan from.
        };
        let geo = self.home.geometry().clone();
        let active = self.home.mpt().snapshot_active();
        let report = crate::diag::build_report(&table, &active, &geo, &self.home, Vec::new());
        let actions = self.adapt.plan(&report, &active, geo.page_size());
        let mut outstanding = 0usize;
        for a in actions {
            let target = self.home.home(a.target());
            if target == self.me {
                self.apply_action(&a, barrier, tl)?;
            } else {
                let mut msg = Pmsg::new(MsgKind::AdaptApply, self.me, self.adapt.next_event());
                msg.minipage = a.target();
                msg.aux = barrier;
                msg.data = bytes::Bytes::from(a.encode());
                let payload = msg.payload_bytes();
                ep.send(target, msg, payload, tl.now(), "adapt apply")?;
                outstanding += 1;
            }
        }
        Ok(outstanding)
    }

    /// A remotely planned action arriving at the shard homing its target.
    /// Any apply failure defers the action (`aux = 0` in the ack) rather
    /// than stranding the sender's parked barrier.
    fn handle_adapt_apply<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        let action = AdaptAction::decode(&m.data).ok_or(ProtocolError::Malformed {
            host: self.me,
            what: "undecodable adaptation action",
        })?;
        let applied = self.apply_action(&action, m.aux, tl).unwrap_or(false);
        let ack = Pmsg::new(MsgKind::AdaptAck, self.me, m.event).with_aux(u64::from(applied));
        ep.send(m.from, ack, 0, tl.now(), "adapt ack")?;
        Ok(())
    }

    /// One remote application finished; the last ack releases the parked
    /// barrier.
    fn handle_adapt_ack<C: ProtoClock, T: Transport>(
        &mut self,
        m: Pmsg,
        tl: &mut C,
        ep: &T,
    ) -> Result<(), ProtocolError> {
        if m.aux == 0 {
            self.adapt.record_deferred();
        }
        let Some((waiters, left)) = self.adapt_pending.take() else {
            return Err(ProtocolError::BadState {
                host: self.me,
                what: "adapt ack with no parked barrier",
            });
        };
        if left > 1 {
            self.adapt_pending = Some((waiters, left - 1));
            Ok(())
        } else {
            self.release_barrier(waiters, tl, ep)
        }
    }

    /// Whether `id`'s directory entry has protocol state in flight that
    /// an adaptation action must not race (the quiesce makes this rare,
    /// but a prefetch issued just before the barrier can still be
    /// mid-window).
    fn adapt_busy(&self, id: MinipageId) -> bool {
        self.dir.entry_ref(id.index()).is_some_and(|e| {
            e.in_service || e.inv_pending > 0 || e.pending_write.is_some() || !e.queue.is_empty()
        })
    }

    /// Ensures this home's physical copy of `mp` is current: under SW/MR
    /// the latest bytes may live at a remote owner. Control-plane copy —
    /// no protocol messages, the cluster is quiesced.
    fn pull_master_copy(&mut self, mp: &Minipage) -> Result<(), ProtocolError> {
        let pb = mp.priv_base(self.home.geometry());
        let src = {
            let e = self.dir.entry(mp.id.index());
            e.owner.or_else(|| e.find_replica()).unwrap_or(self.me)
        };
        if src == self.me {
            return Ok(());
        }
        let data = self
            .cluster
            .priv_read(src, pb, mp.len)
            .map_err(|_| crate::backend::bad_priv(self.me, pb, "adaptation master read"))?;
        self.cluster
            .priv_write(self.me, pb, &data)
            .map_err(|_| crate::backend::bad_priv(self.me, pb, "adaptation master write"))?;
        Ok(())
    }

    /// Revokes every host's application-view access to `mp`.
    fn revoke_everywhere(&self, mp: &Minipage) -> Result<(), ProtocolError> {
        let geo = self.home.geometry();
        for h in 0..self.hosts {
            for vp in mp.vpages(geo) {
                self.cluster
                    .set_prot(HostId(h as u16), vp, PageProt::NoAccess)
                    .map_err(|_| crate::backend::bad_vpage(HostId(h as u16), vp))?;
            }
        }
        Ok(())
    }

    /// Applies one action at the shard homing its target. Returns `false`
    /// (and records a deferral) when the action cannot apply safely:
    /// busy directory state, a retired target, exhausted views, or a
    /// consistency/backend gate. The caller treats errors like deferrals
    /// where a hang would otherwise result.
    fn apply_action<C: ProtoClock>(
        &mut self,
        a: &AdaptAction,
        barrier: u64,
        tl: &mut C,
    ) -> Result<bool, ProtocolError> {
        tl.charge(self.cost.mpt_lookup);
        let geo = self.home.geometry().clone();
        let ps = geo.page_size();
        match a {
            AdaptAction::Split { mp, cuts } => {
                // Splitting rewrites protections per new vpage; only the
                // SW/MR protocol's directory state survives that rewrite
                // as "one writable copy at home".
                if self.consistency != Consistency::SequentialSwMr
                    || self.home.mpt().is_retired(*mp)
                    || self.adapt_busy(*mp)
                {
                    self.adapt.record_deferred();
                    return Ok(false);
                }
                let parent = self.home.mpt().get(*mp);
                let mut bounds = vec![0usize];
                bounds.extend(cuts.iter().map(|&c| c as usize));
                bounds.push(parent.len);
                if bounds.windows(2).any(|w| w[0] >= w[1]) {
                    self.adapt.record_deferred();
                    return Ok(false);
                }
                // Place each child in a fresh view over the parent's
                // physical bytes: the data never moves.
                let phys = parent.phys_range(ps);
                let next = self.home.mpt().next_id().0;
                let mut children = Vec::new();
                let mut used_views = Vec::new();
                for (k, w) in bounds.windows(2).enumerate() {
                    let start = phys.start + w[0];
                    let len = w[1] - w[0];
                    let (first_page, offset) = (start / ps, start % ps);
                    let pages = (offset + len).div_ceil(ps);
                    let view = self
                        .home
                        .mpt()
                        .free_view_for(&geo, first_page, pages, &used_views);
                    let Some(view) = view else {
                        self.adapt.record_deferred();
                        return Ok(false); // View space exhausted: skip.
                    };
                    used_views.push(view);
                    children.push(Minipage {
                        id: MinipageId(next + k as u32),
                        base: geo.addr_of(view, first_page, offset),
                        len,
                        view,
                        first_page,
                        offset,
                    });
                }
                self.pull_master_copy(&parent)?;
                self.revoke_everywhere(&parent)?;
                let n = children.len() as u32;
                let first_child = children[0].id.0;
                self.home
                    .mpt()
                    .retire_and_insert(&geo, &[parent.id], children.clone());
                for child in &children {
                    self.home.publish_at(*child, self.me);
                    for vp in child.vpages(&geo) {
                        self.cluster
                            .set_prot(self.me, vp, PageProt::ReadWrite)
                            .map_err(|_| crate::backend::bad_vpage(self.me, vp))?;
                    }
                    self.diag.reset_slot(child.id.0);
                }
                self.dir.forget(parent.id.index());
                self.diag.reset_slot(parent.id.0);
                self.trace.emit(tl.now(), TraceKind::AdaptSplit, |e| {
                    e.with_mp(parent.id.0)
                        .with_aux(n)
                        .with_event(first_child as u64)
                });
                self.adapt.record_split(barrier, parent.id.0, cuts);
                Ok(true)
            }
            AdaptAction::Merge { group } => {
                if self.consistency != Consistency::SequentialSwMr
                    || group.len() < 2
                    || group.iter().any(|&id| self.home.mpt().is_retired(id))
                    || group.iter().any(|&id| self.adapt_busy(id))
                {
                    self.adapt.record_deferred();
                    return Ok(false);
                }
                let mut members: Vec<Minipage> =
                    group.iter().map(|&id| self.home.mpt().get(id)).collect();
                members.sort_by_key(|m| m.phys_range(ps).start);
                let contiguous = members
                    .windows(2)
                    .all(|w| w[0].phys_range(ps).end == w[1].phys_range(ps).start);
                let start = members[0].phys_range(ps).start;
                let len: usize = members.iter().map(|m| m.len).sum();
                let (first_page, offset) = (start / ps, start % ps);
                let pages = (offset + len).div_ceil(ps);
                let view = self
                    .home
                    .mpt()
                    .free_view_for(&geo, first_page, pages, &[])
                    .filter(|_| contiguous && first_page + pages <= geo.pages());
                let Some(view) = view else {
                    self.adapt.record_deferred();
                    return Ok(false);
                };
                for m in &members {
                    self.pull_master_copy(m)?;
                }
                for m in &members {
                    self.revoke_everywhere(m)?;
                }
                let merged = Minipage {
                    id: self.home.mpt().next_id(),
                    base: geo.addr_of(view, first_page, offset),
                    len,
                    view,
                    first_page,
                    offset,
                };
                let old: Vec<MinipageId> = members.iter().map(|m| m.id).collect();
                self.home.mpt().retire_and_insert(&geo, &old, vec![merged]);
                self.home.publish_at(merged, self.me);
                for vp in merged.vpages(&geo) {
                    self.cluster
                        .set_prot(self.me, vp, PageProt::ReadWrite)
                        .map_err(|_| crate::backend::bad_vpage(self.me, vp))?;
                }
                for id in &old {
                    self.dir.forget(id.index());
                    self.diag.reset_slot(id.0);
                }
                self.diag.reset_slot(merged.id.0);
                // Anti-oscillation: never split the merge result again.
                self.adapt.forbid_split(merged.id.0);
                self.trace.emit(tl.now(), TraceKind::AdaptMerge, |e| {
                    e.with_mp(old[0].0)
                        .with_aux(old.len() as u32)
                        .with_event(merged.id.0 as u64)
                });
                self.adapt.record_merge(barrier, &old, merged.id.0);
                Ok(true)
            }
            AdaptAction::Migrate { mp, to } => {
                if *to == self.me
                    || to.index() >= self.hosts
                    || self.home.mpt().is_retired(*mp)
                    || self.adapt_busy(*mp)
                {
                    self.adapt.record_deferred();
                    return Ok(false);
                }
                let desc = self.home.mpt().get(*mp);
                self.pull_master_copy(&desc)?;
                let pb = desc.priv_base(&geo);
                let data = self
                    .cluster
                    .priv_read(self.me, pb, desc.len)
                    .map_err(|_| crate::backend::bad_priv(self.me, pb, "migration read"))?;
                self.revoke_everywhere(&desc)?;
                self.cluster
                    .priv_write(*to, pb, &data)
                    .map_err(|_| crate::backend::bad_priv(*to, pb, "migration write"))?;
                // The new home starts exactly like a fresh allocation:
                // writable under SW/MR, read-only (twin-on-write) under
                // HLRC.
                let writable = self.consistency == Consistency::SequentialSwMr;
                let prot = if writable {
                    PageProt::ReadWrite
                } else {
                    PageProt::ReadOnly
                };
                for vp in desc.vpages(&geo) {
                    self.cluster
                        .set_prot(*to, vp, prot)
                        .map_err(|_| crate::backend::bad_vpage(*to, vp))?;
                }
                if !writable {
                    self.cluster.learn_rc(
                        *to,
                        desc.vpages(&geo),
                        MpInfo {
                            id: desc.id,
                            base: desc.base,
                            len: desc.len,
                            priv_base: pb,
                        },
                    );
                }
                self.dir.forget(mp.index());
                self.home.migrate(*mp, *to);
                self.diag.reset_slot(mp.0);
                let peer = *to;
                self.trace.emit(tl.now(), TraceKind::AdaptMigrate, |e| {
                    e.with_mp(mp.0)
                        .with_peer(peer)
                        .with_aux(u32::from(writable))
                });
                self.adapt.record_migrate(barrier, mp.0, to.0);
                Ok(true)
            }
        }
    }
}

fn all_hosts_mask(hosts: usize) -> u64 {
    debug_assert!((1..=64).contains(&hosts));
    if hosts == 64 {
        u64::MAX
    } else {
        (1u64 << hosts) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_hosts_mask_covers_exactly_n_hosts() {
        assert_eq!(all_hosts_mask(1), 0b1);
        assert_eq!(all_hosts_mask(8), 0xFF);
        assert_eq!(all_hosts_mask(64), u64::MAX);
    }
}
