//! The manager (§3.3).
//!
//! One Millipage process is elected manager. It keeps the MPT and the
//! directory, translates faulting addresses, forwards requests to copy
//! holders, fans out invalidations, queues competing requests, and hosts
//! the synchronization services (barriers, queue locks) and the shared
//! allocator. "The manager's role is essentially to mark and forward
//! requests to hosts, and to maintain the MPT."

use crate::diff::Diff;
use crate::directory::Directory;
use crate::hlrc::{Consistency, MpInfo};
use crate::host::HostState;
use crate::msg::{MsgKind, Pmsg};
use multiview::{AllocStats, Allocator, MinipageId, Mpt};
use sim_core::{CostModel, HostId};
use sim_mem::{Geometry, Prot, VAddr};
use sim_net::{Endpoint, ServerTimeline};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug, Default)]
struct LockState {
    held_by: Option<HostId>,
    queue: VecDeque<Pmsg>,
}

/// Aggregated manager-side statistics for a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ManagerStats {
    /// Barriers completed.
    pub barriers: u64,
    /// Lock acquisitions granted.
    pub lock_acquires: u64,
    /// Invalidation requests fanned out.
    pub invalidations_sent: u64,
    /// Push broadcasts performed.
    pub pushes: u64,
    /// Pushes dropped because ownership moved before processing.
    pub stale_pushes: u64,
    /// Release-consistency diffs applied at the home.
    pub rc_diffs: u64,
}

/// The manager: runs inside the DSM server thread of the manager host.
pub struct Manager {
    me: HostId,
    hosts: usize,
    /// Total application threads (barrier quorum; ≥ hosts under §3.4
    /// multithreading).
    barrier_quorum: usize,
    cost: CostModel,
    consistency: Consistency,
    allocator: Allocator,
    dir: Directory,
    locks: HashMap<u64, LockState>,
    barrier_waiters: Vec<Pmsg>,
    stats: ManagerStats,
    /// The manager host's own memory: freshly allocated minipages start
    /// here with a writable copy.
    home_state: Arc<HostState>,
}

impl Manager {
    /// Creates the manager for a cluster of `hosts` hosts.
    pub(crate) fn new(
        me: HostId,
        hosts: usize,
        barrier_quorum: usize,
        cost: CostModel,
        consistency: Consistency,
        allocator: Allocator,
        home_state: Arc<HostState>,
    ) -> Self {
        Self {
            me,
            hosts,
            barrier_quorum,
            cost,
            consistency,
            allocator,
            dir: Directory::new(),
            locks: HashMap::new(),
            barrier_waiters: Vec::new(),
            stats: ManagerStats::default(),
            home_state,
        }
    }

    /// The minipage table (for post-run validation and Table 2).
    pub fn mpt(&self) -> &Mpt {
        self.allocator.mpt()
    }

    /// The shared geometry.
    pub fn geometry(&self) -> &Geometry {
        self.allocator.geometry()
    }

    /// Allocator statistics (Table 2's shared-memory size, views,
    /// granularity).
    pub fn alloc_stats(&self) -> AllocStats {
        self.allocator.stats()
    }

    /// Manager statistics.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Competing requests observed (Figure 7).
    pub fn competing_requests(&self) -> u64 {
        self.dir.competing_requests()
    }

    /// Read-only directory access (tests, validation).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Allocates shared memory and initializes its directory state: the
    /// new minipages live at the manager host with a writable copy.
    pub(crate) fn do_alloc(&mut self, size: usize) -> VAddr {
        let before = self.allocator.mpt().len();
        let addr = self
            .allocator
            .alloc(size)
            .unwrap_or_else(|e| panic!("shared allocation failed: {e}"));
        let geo = self.allocator.geometry().clone();
        // Fresh minipages live at the manager host. Under SW/MR the home
        // copy starts writable; under release consistency it starts
        // read-only so the manager host's own writes twin and flush like
        // everyone else's.
        let home_prot = match self.consistency {
            Consistency::SequentialSwMr => Prot::ReadWrite,
            Consistency::HomeEagerRc => Prot::ReadOnly,
        };
        for idx in before..self.allocator.mpt().len() {
            let mp = *self.allocator.mpt().get(MinipageId(idx as u32));
            self.dir.ensure(idx, self.me);
            for vp in mp.vpages(&geo) {
                self.home_state
                    .space
                    .set_prot(vp, home_prot)
                    .expect("application vpage");
            }
            if self.consistency == Consistency::HomeEagerRc {
                self.home_state.rc.lock().learn(
                    mp.vpages(&geo),
                    MpInfo {
                        id: mp.id,
                        base: mp.base,
                        len: mp.len,
                        priv_base: mp.priv_base(&geo),
                    },
                );
            }
        }
        addr
    }

    /// Closes the current chunk (see
    /// [`Allocator::finish_chunk`](multiview::Allocator::finish_chunk)).
    pub(crate) fn finish_chunk(&mut self) {
        self.allocator.finish_chunk();
    }

    /// See [`Allocator::retire_page`](multiview::Allocator::retire_page).
    pub(crate) fn retire_page(&mut self) {
        self.allocator.retire_page();
    }

    /// The manager host's address space (pre-run initialization writes).
    pub(crate) fn home_space(&self) -> &sim_mem::AddressSpace {
        &self.home_state.space
    }

    /// Handles one manager-addressed message. `timeline` is the manager
    /// host's server timeline (service-start already charged by the server
    /// loop); `ep` is its endpoint.
    pub(crate) fn handle(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        match m.kind {
            MsgKind::ReadRequest => self.handle_read_request(m, tl, ep),
            MsgKind::WriteRequest => self.handle_write_request(m, tl, ep),
            MsgKind::InvalidateReply => self.handle_invalidate_reply(m, tl, ep),
            MsgKind::Ack => self.handle_ack(m, tl, ep),
            MsgKind::AllocRequest => self.handle_alloc(m, tl, ep),
            MsgKind::BarrierEnter => self.handle_barrier_enter(m, tl, ep),
            MsgKind::LockAcquire => self.handle_lock_acquire(m, tl, ep),
            MsgKind::LockRelease => self.handle_lock_release(m, tl, ep),
            MsgKind::PushRequest => self.handle_push(m, tl, ep),
            MsgKind::RcDiff => self.handle_rc_diff(m, tl, ep),
            other => panic!("non-manager message {other:?} routed to manager"),
        }
    }

    /// Figure 3 `Translate`: fills the translation fields from the MPT.
    fn translate(&mut self, m: &mut Pmsg, tl: &mut ServerTimeline) -> MinipageId {
        tl.charge(self.cost.mpt_lookup);
        let geo = self.allocator.geometry();
        let mp = self
            .allocator
            .mpt()
            .translate(geo, m.addr)
            .unwrap_or_else(|| panic!("fault at {} hits no minipage", m.addr));
        m.base = mp.base;
        m.len = mp.len;
        m.priv_base = mp.priv_base(geo);
        m.minipage = mp.id;
        mp.id
    }

    fn handle_read_request(&mut self, mut m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        let id = self.translate(&mut m, tl);
        if self.consistency == Consistency::HomeEagerRc {
            // The home copy is always current at synchronization points:
            // serve directly, one hop, no service window.
            tl.charge(self.cost.dsm_overhead);
            let e = self.dir.entry(id.index());
            e.add(m.from);
            let data = self
                .home_state
                .space
                .priv_read(m.priv_base, m.len)
                .expect("translated minipage in range");
            let mut reply = m;
            reply.kind = MsgKind::ReadReply;
            reply.data = bytes::Bytes::from(data);
            let to = reply.from;
            let payload = reply.payload_bytes();
            ep.send(to, reply, payload, tl.now());
            return;
        }
        if !self.dir.begin_service(id.index(), m.clone()) {
            return; // Queued as a competing request.
        }
        let e = self.dir.entry(id.index());
        let src = e
            .find_replica()
            .expect("every allocated minipage has at least one copy");
        // Serving a read downgrades any writable copy (Figure 3's "Handle
        // Read Request"); the directory forgets the writer now.
        e.owner = None;
        e.add(m.from);
        m.kind = MsgKind::ServeRead;
        ep.send(src, m, 0, tl.now());
    }

    fn handle_write_request(&mut self, mut m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        assert_eq!(
            self.consistency,
            Consistency::SequentialSwMr,
            "write requests do not exist under release consistency"
        );
        let id = self.translate(&mut m, tl);
        if !self.dir.begin_service(id.index(), m.clone()) {
            return;
        }
        let e = self.dir.entry(id.index());
        // Prefer upgrading in place when the requester already holds a
        // read copy; otherwise Figure 3's find_replica.
        let src = if e.holds(m.from) {
            m.from
        } else {
            e.find_replica()
                .expect("every allocated minipage has at least one copy")
        };
        let targets: Vec<HostId> = e.holders().filter(|&h| h != src).collect();
        if targets.is_empty() {
            Self::forward_write(e, src, m, tl, ep);
        } else {
            e.inv_pending = targets.len() as u32;
            e.pending_write = Some(m.clone());
            self.stats.invalidations_sent += targets.len() as u64;
            for t in targets {
                let mut inv = m.clone();
                inv.kind = MsgKind::InvalidateRequest;
                inv.data = bytes::Bytes::new();
                ep.send(t, inv, 0, tl.now());
            }
        }
    }

    fn handle_invalidate_reply(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        let id = m.minipage;
        let e = self.dir.entry(id.index());
        e.remove(m.from);
        debug_assert!(e.inv_pending > 0, "unexpected invalidate reply");
        e.inv_pending -= 1;
        // Figure 3: "if got less than (#replicas - 1) replies then return".
        if e.inv_pending == 0 {
            let w = e
                .pending_write
                .take()
                .expect("a write was pending on these invalidations");
            let src = e
                .find_replica()
                .expect("the serving replica was never invalidated");
            Self::forward_write(e, src, w, tl, ep);
        }
    }

    fn forward_write(
        e: &mut crate::directory::DirectoryEntry,
        src: HostId,
        mut m: Pmsg,
        tl: &mut ServerTimeline,
        ep: &Endpoint<Pmsg>,
    ) {
        e.copyset = 1u64 << m.from.index();
        e.owner = Some(m.from);
        m.kind = MsgKind::ServeWrite;
        ep.send(src, m, 0, tl.now());
    }

    fn handle_ack(&mut self, mut m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        let id = self.translate(&mut m, tl);
        if let Some(next) = self.dir.end_service(id.index()) {
            // The queued competing request is serviced now.
            self.dispatch_queued(next, tl, ep);
        }
    }

    fn dispatch_queued(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        match m.kind {
            MsgKind::ReadRequest => self.handle_read_request(m, tl, ep),
            MsgKind::WriteRequest => self.handle_write_request(m, tl, ep),
            MsgKind::PushRequest => self.handle_push(m, tl, ep),
            other => panic!("unexpected queued message {other:?}"),
        }
    }

    fn handle_alloc(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        tl.charge(self.cost.mpt_lookup);
        let addr = self.do_alloc(m.aux as usize);
        let mut reply = Pmsg::new(MsgKind::AllocReply, self.me, m.event);
        reply.addr = addr;
        ep.send(m.from, reply, 0, tl.now());
    }

    fn handle_barrier_enter(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        self.barrier_waiters.push(m);
        if self.barrier_waiters.len() == self.barrier_quorum {
            tl.charge(self.cost.barrier_base);
            let waiters = std::mem::take(&mut self.barrier_waiters);
            for w in waiters {
                tl.charge(self.cost.barrier_per_host);
                let mut rel = Pmsg::new(MsgKind::BarrierRelease, self.me, w.event);
                rel.addr = w.addr;
                ep.send(w.from, rel, 0, tl.now());
            }
            self.stats.barriers += 1;
        }
    }

    fn handle_lock_acquire(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        let st = self.locks.entry(m.aux).or_default();
        if st.held_by.is_none() {
            st.held_by = Some(m.from);
            self.stats.lock_acquires += 1;
            tl.charge(self.cost.lock_service);
            let grant = Pmsg::new(MsgKind::LockGrant, self.me, m.event).with_aux(m.aux);
            ep.send(m.from, grant, 0, tl.now());
        } else {
            st.queue.push_back(m);
        }
    }

    fn handle_lock_release(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        tl.charge(self.cost.lock_service);
        let st = self
            .locks
            .get_mut(&m.aux)
            .unwrap_or_else(|| panic!("release of unknown lock {}", m.aux));
        assert_eq!(
            st.held_by,
            Some(m.from),
            "lock {} released by a non-holder",
            m.aux
        );
        st.held_by = None;
        if let Some(next) = st.queue.pop_front() {
            st.held_by = Some(next.from);
            self.stats.lock_acquires += 1;
            let grant = Pmsg::new(MsgKind::LockGrant, self.me, next.event).with_aux(next.aux);
            ep.send(next.from, grant, 0, tl.now());
        }
    }

    fn handle_push(&mut self, mut m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        let id = self.translate(&mut m, tl);
        if !self.dir.begin_service(id.index(), m.clone()) {
            return; // Queued behind an in-flight transfer.
        }
        {
            let hosts = self.hosts;
            let e = self.dir.entry(id.index());
            if e.owner == Some(m.from) {
                // Publish read copies everywhere (§4.3, the TSP bound).
                e.owner = None;
                e.copyset = all_hosts_mask(hosts);
                self.stats.pushes += 1;
                for h in 0..hosts {
                    let h = HostId(h as u16);
                    if h == m.from {
                        continue;
                    }
                    let mut push = m.clone();
                    push.kind = MsgKind::PushData;
                    let payload = push.payload_bytes();
                    ep.send(h, push, payload, tl.now());
                }
            } else {
                // Ownership moved since the push was issued: stale, drop.
                self.stats.stale_pushes += 1;
            }
        }
        // Pushes hold no service window (no ack follows).
        if let Some(next) = self.dir.end_service(id.index()) {
            self.dispatch_queued(next, tl, ep);
        }
    }
}

impl Manager {
    /// Applies a release-point diff to the home copy and invalidates the
    /// other copies (fire-and-forget: FIFO ordering to each host makes
    /// the invalidations land before any later barrier release or lock
    /// grant — see the `hlrc` module docs).
    fn handle_rc_diff(&mut self, m: Pmsg, tl: &mut ServerTimeline, ep: &Endpoint<Pmsg>) {
        assert_eq!(
            self.consistency,
            Consistency::HomeEagerRc,
            "RcDiff under the SW/MR protocol"
        );
        let diff = Diff::decode(&m.data).expect("well-formed diff on the wire");
        // Patch run by run: only changed bytes are written, so a racing
        // local write to *other* bytes of the page is never clobbered.
        for (off, bytes) in diff.iter_runs() {
            self.home_state
                .space
                .priv_write(m.priv_base.add(off), bytes)
                .expect("translated minipage in range");
        }
        tl.charge((self.cost.patch_per_byte_ns * m.len as f64) as sim_core::Ns);
        self.stats.rc_diffs += 1;
        let me = self.me;
        let e = self.dir.entry(m.minipage.index());
        let targets: Vec<HostId> = e.holders().filter(|&h| h != me).collect();
        self.stats.invalidations_sent += targets.len() as u64;
        for t in &targets {
            let mut inv = m.clone();
            inv.kind = MsgKind::InvalidateRequest;
            inv.data = bytes::Bytes::new();
            ep.send(*t, inv, 0, tl.now());
        }
        e.copyset = 1u64 << me.index();
        e.owner = None;
    }
}

fn all_hosts_mask(hosts: usize) -> u64 {
    debug_assert!((1..=64).contains(&hosts));
    if hosts == 64 {
        u64::MAX
    } else {
        (1u64 << hosts) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_hosts_mask_covers_exactly_n_hosts() {
        assert_eq!(all_hosts_mask(1), 0b1);
        assert_eq!(all_hosts_mask(8), 0xFF);
        assert_eq!(all_hosts_mask(64), u64::MAX);
    }
}
