//! Run reports: everything the paper's tables and figures need.

use crate::host::HostState;
use multiview::{AllocStats, Mpt};
use sim_core::{HostId, Ns, TimeBreakdown};
use sim_mem::{Geometry, Prot};
use std::sync::Arc;

/// Per-application-thread outcome.
#[derive(Clone, Debug)]
pub struct HostReport {
    /// The host this thread ran on.
    pub host: HostId,
    /// The application thread index within the host.
    pub thread: usize,
    /// The thread's final virtual time.
    pub end_vt: Ns,
    /// Where its virtual time went (Figure 6 right).
    pub breakdown: TimeBreakdown,
    /// Read faults taken by this host.
    pub read_faults: u64,
    /// Write faults taken by this host.
    pub write_faults: u64,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Number of hosts.
    pub hosts: usize,
    /// Parallel virtual completion time: max over application threads.
    pub virtual_time: Ns,
    /// Per-host reports.
    pub per_host: Vec<HostReport>,
    /// Merged breakdown over all hosts.
    pub breakdown: TimeBreakdown,
    /// Total read faults.
    pub read_faults: u64,
    /// Total write faults.
    pub write_faults: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Invalidations received across hosts.
    pub invalidations: u64,
    /// Competing requests queued at the manager (Figure 7).
    pub competing_requests: u64,
    /// Barriers completed (Table 2).
    pub barriers: u64,
    /// Lock acquisitions (Table 2).
    pub lock_acquires: u64,
    /// Push broadcasts performed.
    pub pushes: u64,
    /// Messages on the wire.
    pub messages: u64,
    /// Payload bytes on the wire (communication volume).
    pub payload_bytes: u64,
    /// Allocator statistics (Table 2's memory size / views / granularity).
    pub alloc: AllocStats,
    /// Release-consistency diffs applied at the home (0 under SW/MR).
    pub rc_diffs: u64,
    /// Coherence violations found post-run (must be empty).
    pub coherence_violations: Vec<String>,
}

impl RunReport {
    /// Speedup relative to a single-host run time.
    pub fn speedup(&self, t1: Ns) -> f64 {
        t1 as f64 / self.virtual_time.max(1) as f64
    }

    /// Parallel efficiency relative to a single-host run time.
    pub fn efficiency(&self, t1: Ns) -> f64 {
        self.speedup(t1) / self.hosts as f64
    }
}

/// Post-run validation for the release-consistency mode: after the final
/// synchronization every present copy must byte-for-byte match the home
/// copy (all dirty data flushed, all stale copies invalidated or
/// refetched).
pub(crate) fn check_rc_consistency(
    mpt: &Mpt,
    geo: &Geometry,
    states: &[Arc<HostState>],
) -> Vec<String> {
    let mut violations = Vec::new();
    let home = &states[0];
    for mp in mpt.iter() {
        let priv_base = mp.priv_base(geo);
        let home_bytes = home
            .space
            .priv_read(priv_base, mp.len)
            .expect("home copy in range");
        for st in &states[1..] {
            let present = mp.vpages(geo).all(|vp| st.space.prot(vp) != Prot::NoAccess);
            if !present {
                continue;
            }
            let local = st
                .space
                .priv_read(priv_base, mp.len)
                .expect("local copy in range");
            if local != home_bytes {
                violations.push(format!(
                    "{}: copy on {} diverges from the home copy",
                    mp.id, st.host
                ));
            }
        }
    }
    violations
}

/// Post-run validation of the Single-Writer/Multiple-Readers invariant:
/// for every minipage, across all hosts, there is at most one writable
/// copy, and never both a writable copy and read copies.
pub(crate) fn check_coherence(mpt: &Mpt, geo: &Geometry, states: &[Arc<HostState>]) -> Vec<String> {
    let mut violations = Vec::new();
    for mp in mpt.iter() {
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for st in states {
            // A minipage's vpages move together; mixed protection within
            // one minipage on one host is itself a violation.
            let prots: Vec<Prot> = mp.vpages(geo).map(|vp| st.space.prot(vp)).collect();
            if prots.windows(2).any(|w| w[0] != w[1]) {
                violations.push(format!(
                    "{}: mixed vpage protections {:?} on {}",
                    mp.id, prots, st.host
                ));
            }
            match prots[0] {
                Prot::ReadWrite => writers.push(st.host),
                Prot::ReadOnly => readers.push(st.host),
                Prot::NoAccess => {}
            }
        }
        if writers.len() > 1 {
            violations.push(format!("{}: multiple writers {:?}", mp.id, writers));
        }
        if writers.len() == 1 && !readers.is_empty() {
            violations.push(format!(
                "{}: writer {} coexists with readers {:?}",
                mp.id, writers[0], readers
            ));
        }
    }
    violations
}
