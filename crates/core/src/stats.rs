//! Run reports: everything the paper's tables and figures need.

use crate::hlrc::Consistency;
use crate::home::HomeTable;
use crate::host::HostState;
use crate::manager::ManagerShard;
use multiview::{AllocStats, Minipage};
use serde::{Deserialize, Serialize};
use sim_core::{HostId, LogHistogram, Ns, TimeBreakdown};
use sim_mem::{Geometry, Prot};
use std::sync::Arc;

/// Per-application-thread outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostReport {
    /// The host this thread ran on.
    pub host: HostId,
    /// The application thread index within the host.
    pub thread: usize,
    /// The thread's final virtual time.
    pub end_vt: Ns,
    /// Where its virtual time went (Figure 6 right).
    pub breakdown: TimeBreakdown,
    /// Read faults taken by this host.
    pub read_faults: u64,
    /// Write faults taken by this host.
    pub write_faults: u64,
    /// Fault service times (fault entry to resume) of this thread.
    pub fault_latency: LogHistogram,
}

/// Per-shard manager-side counters: where the management load landed.
///
/// Under the centralized policy only the manager host's shard shows
/// activity; the distributed policies spread it, and the spread (in
/// particular the peak `competing_requests`) is the Figure 7 hot-spot
/// measurement per shard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardStats {
    /// The host this shard ran on.
    pub host: HostId,
    /// Competing requests queued at this shard.
    pub competing_requests: u64,
    /// Invalidation requests this shard fanned out.
    pub invalidations_sent: u64,
    /// Release-consistency diffs applied at this shard.
    pub rc_diffs: u64,
    /// Directory entries that materialized here (minipages homed here
    /// that saw any remote traffic).
    pub directory_entries: usize,
}

/// Wire-fault activity of one run; present only when the cluster ran
/// with active [`WireFaults`](crate::WireFaults).
#[derive(Clone, Debug, Serialize)]
pub struct NetFaultStats {
    /// Transmissions the fault plane discarded (each costs one
    /// retransmission round-trip of added latency).
    pub drops: u64,
    /// Retransmissions the reliable channel charged for.
    pub retransmits: u64,
    /// Duplicate copies injected and physically delivered.
    pub dups_delivered: u64,
    /// Duplicates (and stale retransmissions) the receive side discarded.
    pub dups_suppressed: u64,
    /// Packets delivered out of order by the fault plane.
    pub reorders: u64,
    /// Packets that exhausted their retransmit budget and were never
    /// delivered (0 on any run that completed cleanly).
    pub expired: u64,
    /// Latency the fault plane added per delivered packet (backoff
    /// penalties plus jitter; only packets with a nonzero penalty).
    pub delay: LogHistogram,
}

/// The outcome of one cluster run.
#[derive(Clone, Debug, Serialize)]
pub struct RunReport {
    /// Number of hosts.
    pub hosts: usize,
    /// Parallel virtual completion time: max over application threads.
    pub virtual_time: Ns,
    /// Per-host reports.
    pub per_host: Vec<HostReport>,
    /// Merged breakdown over all hosts.
    pub breakdown: TimeBreakdown,
    /// Total read faults.
    pub read_faults: u64,
    /// Total write faults.
    pub write_faults: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Invalidations received across hosts.
    pub invalidations: u64,
    /// Competing requests queued across all manager shards (Figure 7).
    pub competing_requests: u64,
    /// Barriers completed (Table 2).
    pub barriers: u64,
    /// Lock acquisitions (Table 2).
    pub lock_acquires: u64,
    /// Push broadcasts performed.
    pub pushes: u64,
    /// Messages on the wire.
    pub messages: u64,
    /// Payload bytes on the wire (communication volume).
    pub payload_bytes: u64,
    /// Allocator statistics (Table 2's memory size / views / granularity).
    pub alloc: AllocStats,
    /// Release-consistency diffs applied at the homes (0 under SW/MR).
    pub rc_diffs: u64,
    /// The home policy the run used (e.g. `"centralized"`).
    pub policy: &'static str,
    /// Per-shard manager-side counters, indexed by host.
    pub shards: Vec<ShardStats>,
    /// Coherence violations found post-run (must be empty).
    pub coherence_violations: Vec<String>,
    /// Fault service times (fault entry to resume) over all application
    /// threads.
    pub fault_latency: LogHistogram,
    /// Arrival→service-start delays at the DSM servers (poll/sweeper
    /// delay plus queueing behind earlier handlers).
    pub server_queue_delay: LogHistogram,
    /// Invalidation round-trips at the manager shards: fan-out to last
    /// confirmation, per completed round.
    pub inv_round_trip: LogHistogram,
    /// Typed protocol errors the run degraded through (empty on a clean
    /// wire): server-side handler failures first, then failed application
    /// waits, each rendered as its `ProtocolError` display form.
    pub protocol_errors: Vec<String>,
    /// Wire-fault counters; `None` unless the run injected faults.
    pub net_faults: Option<NetFaultStats>,
    /// Trace events the per-thread rings could not hold, per host
    /// (`(host, dropped)`, hosts without drops omitted; empty on any
    /// untraced run). `repro trace` and `repro diagnose` refuse to trust
    /// a log with a nonzero entry here.
    pub trace_dropped: Vec<(u16, u64)>,
    /// Sharing diagnostics; `None` unless the run enabled
    /// [`ClusterConfig::diag`](crate::ClusterConfig).
    pub diag: Option<crate::diag::DiagReport>,
    /// Online adaptation actions; `None` unless the run enabled
    /// [`ClusterConfig::adapt`](crate::ClusterConfig).
    pub adapt: Option<crate::adapt::AdaptReport>,
}

impl RunReport {
    /// Speedup relative to a single-host run time.
    pub fn speedup(&self, t1: Ns) -> f64 {
        t1 as f64 / self.virtual_time.max(1) as f64
    }

    /// Median fault service time (ns); `None` if the run took no faults.
    pub fn fault_latency_p50(&self) -> Option<Ns> {
        self.fault_latency.p50()
    }

    /// 95th-percentile fault service time (ns).
    pub fn fault_latency_p95(&self) -> Option<Ns> {
        self.fault_latency.p95()
    }

    /// 99th-percentile fault service time (ns).
    pub fn fault_latency_p99(&self) -> Option<Ns> {
        self.fault_latency.p99()
    }

    /// Parallel efficiency relative to a single-host run time.
    pub fn efficiency(&self, t1: Ns) -> f64 {
        self.speedup(t1) / self.hosts as f64
    }

    /// The largest per-shard competing-request count: the hot-spot metric
    /// the distributed policies exist to flatten.
    pub fn peak_shard_competing(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.competing_requests)
            .max()
            .unwrap_or(0)
    }

    /// The report as a JSON document (machine-readable run output; the
    /// `repro --json` flag).
    pub fn to_json(&self) -> String {
        use sim_core::Category;
        let mut s = String::with_capacity(4096);
        s.push('{');
        push_kv(&mut s, "hosts", &self.hosts.to_string());
        push_kv(&mut s, "virtual_time_ns", &self.virtual_time.to_string());
        push_kv(&mut s, "policy", &format!("\"{}\"", self.policy));
        push_kv(&mut s, "read_faults", &self.read_faults.to_string());
        push_kv(&mut s, "write_faults", &self.write_faults.to_string());
        push_kv(&mut s, "prefetches", &self.prefetches.to_string());
        push_kv(&mut s, "invalidations", &self.invalidations.to_string());
        push_kv(
            &mut s,
            "competing_requests",
            &self.competing_requests.to_string(),
        );
        push_kv(&mut s, "barriers", &self.barriers.to_string());
        push_kv(&mut s, "lock_acquires", &self.lock_acquires.to_string());
        push_kv(&mut s, "pushes", &self.pushes.to_string());
        push_kv(&mut s, "messages", &self.messages.to_string());
        push_kv(&mut s, "payload_bytes", &self.payload_bytes.to_string());
        push_kv(&mut s, "rc_diffs", &self.rc_diffs.to_string());
        let bd: Vec<String> = Category::ALL
            .iter()
            .map(|&c| format!("\"{c:?}\":{}", self.breakdown.get(c)))
            .collect();
        push_kv(&mut s, "breakdown_ns", &format!("{{{}}}", bd.join(",")));
        push_kv(&mut s, "fault_latency", &hist_json(&self.fault_latency));
        push_kv(
            &mut s,
            "server_queue_delay",
            &hist_json(&self.server_queue_delay),
        );
        push_kv(&mut s, "inv_round_trip", &hist_json(&self.inv_round_trip));
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|sh| {
                format!(
                    "{{\"host\":{},\"competing_requests\":{},\"invalidations_sent\":{},\
                     \"rc_diffs\":{},\"directory_entries\":{}}}",
                    sh.host.index(),
                    sh.competing_requests,
                    sh.invalidations_sent,
                    sh.rc_diffs,
                    sh.directory_entries
                )
            })
            .collect();
        push_kv(&mut s, "shards", &format!("[{}]", shards.join(",")));
        let hosts: Vec<String> = self
            .per_host
            .iter()
            .map(|h| {
                format!(
                    "{{\"host\":{},\"thread\":{},\"end_vt\":{},\"read_faults\":{},\
                     \"write_faults\":{}}}",
                    h.host.index(),
                    h.thread,
                    h.end_vt,
                    h.read_faults,
                    h.write_faults
                )
            })
            .collect();
        push_kv(&mut s, "per_host", &format!("[{}]", hosts.join(",")));
        let viol: Vec<String> = self
            .coherence_violations
            .iter()
            .map(|v| format!("\"{}\"", sim_core::trace::esc(v)))
            .collect();
        push_kv(
            &mut s,
            "coherence_violations",
            &format!("[{}]", viol.join(",")),
        );
        // Fault-plane fields appear only on fault-injecting runs, keeping
        // the disabled-plane JSON byte-for-byte what it always was.
        if !self.protocol_errors.is_empty() {
            let errs: Vec<String> = self
                .protocol_errors
                .iter()
                .map(|e| format!("\"{}\"", sim_core::trace::esc(e)))
                .collect();
            push_kv(&mut s, "protocol_errors", &format!("[{}]", errs.join(",")));
        }
        if let Some(nf) = &self.net_faults {
            push_kv(
                &mut s,
                "net_faults",
                &format!(
                    "{{\"drops\":{},\"retransmits\":{},\"dups_delivered\":{},\
                     \"dups_suppressed\":{},\"reorders\":{},\"expired\":{},\
                     \"delay\":{}}}",
                    nf.drops,
                    nf.retransmits,
                    nf.dups_delivered,
                    nf.dups_suppressed,
                    nf.reorders,
                    nf.expired,
                    hist_json(&nf.delay),
                ),
            );
        }
        // Likewise, diagnostics fields appear only when the run recorded
        // something, keeping the default report byte-for-byte stable.
        if !self.trace_dropped.is_empty() {
            let drops: Vec<String> = self
                .trace_dropped
                .iter()
                .map(|(h, n)| format!("[{h},{n}]"))
                .collect();
            push_kv(&mut s, "trace_dropped", &format!("[{}]", drops.join(",")));
        }
        if let Some(d) = &self.diag {
            push_kv(&mut s, "diag", &d.to_json());
        }
        if let Some(a) = &self.adapt {
            push_kv(&mut s, "adapt", &a.to_json());
        }
        s.push('}');
        s.push('\n');
        s
    }
}

fn push_kv(out: &mut String, key: &str, val: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push_str(&format!("\"{key}\":{val}"));
}

/// Count/mean/extremes/percentiles of one latency histogram as JSON.
fn hist_json(h: &LogHistogram) -> String {
    fn opt(v: Option<Ns>) -> String {
        v.map_or_else(|| "null".into(), |x| x.to_string())
    }
    format!(
        "{{\"count\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{},\
         \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
        h.count(),
        opt(h.min()),
        h.mean()
            .map_or_else(|| "null".into(), |m| format!("{m:.1}")),
        opt(h.max()),
        opt(h.p50()),
        opt(h.p95()),
        opt(h.p99()),
    )
}

/// Post-run validation for the release-consistency mode: after the final
/// synchronization every present copy must byte-for-byte match its
/// minipage's home copy (all dirty data flushed, all stale copies
/// invalidated or refetched).
pub(crate) fn check_rc_consistency(
    minipages: &[Minipage],
    geo: &Geometry,
    states: &[Arc<HostState>],
    home: &HomeTable,
) -> Vec<String> {
    let mut violations = Vec::new();
    for mp in minipages {
        let home_host = home.home(mp.id);
        let priv_base = mp.priv_base(geo);
        let home_bytes = states[home_host.index()]
            .space
            .priv_read(priv_base, mp.len)
            .expect("home copy in range");
        for st in states {
            if st.host == home_host {
                continue;
            }
            let present = mp.vpages(geo).all(|vp| st.space.prot(vp) != Prot::NoAccess);
            if !present {
                continue;
            }
            let local = st
                .space
                .priv_read(priv_base, mp.len)
                .expect("local copy in range");
            if local != home_bytes {
                violations.push(format!(
                    "{}: copy on {} diverges from the home copy on {}",
                    mp.id, st.host, home_host
                ));
            }
        }
    }
    violations
}

/// Post-run validation of the Single-Writer/Multiple-Readers invariant:
/// for every minipage, across all hosts, there is at most one writable
/// copy, and never both a writable copy and read copies.
pub(crate) fn check_coherence(
    minipages: &[Minipage],
    geo: &Geometry,
    states: &[Arc<HostState>],
) -> Vec<String> {
    let mut violations = Vec::new();
    for mp in minipages {
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for st in states {
            // A minipage's vpages move together; mixed protection within
            // one minipage on one host is itself a violation.
            let prots: Vec<Prot> = mp.vpages(geo).map(|vp| st.space.prot(vp)).collect();
            if prots.windows(2).any(|w| w[0] != w[1]) {
                violations.push(format!(
                    "{}: mixed vpage protections {:?} on {}",
                    mp.id, prots, st.host
                ));
            }
            match prots[0] {
                Prot::ReadWrite => writers.push(st.host),
                Prot::ReadOnly => readers.push(st.host),
                Prot::NoAccess => {}
            }
        }
        if writers.len() > 1 {
            violations.push(format!("{}: multiple writers {:?}", mp.id, writers));
        }
        if writers.len() == 1 && !readers.is_empty() {
            violations.push(format!(
                "{}: writer {} coexists with readers {:?}",
                mp.id, writers[0], readers
            ));
        }
    }
    violations
}

/// Post-run validation of the directory shards: every service window must
/// have closed, every queued request drained, every invalidation round
/// completed. Under SW/MR an exclusive owner must also be the sole
/// copyset member (HLRC keeps `owner = Some(home)` on fresh entries while
/// readers join the copyset, so that check is mode-specific).
pub(crate) fn check_directories(shards: &[ManagerShard], consistency: Consistency) -> Vec<String> {
    let mut violations = Vec::new();
    for shard in shards {
        for (id, e) in shard.directory().iter() {
            let tag = format!("mp{} @ shard {}", id, shard.me());
            if e.in_service {
                violations.push(format!("{tag}: service window still open"));
            }
            if !e.queue.is_empty() {
                violations.push(format!("{tag}: {} requests still queued", e.queue.len()));
            }
            if e.inv_pending != 0 {
                violations.push(format!(
                    "{tag}: {} invalidation replies outstanding",
                    e.inv_pending
                ));
            }
            if e.pending_write.is_some() {
                violations.push(format!("{tag}: a write is still parked"));
            }
            if consistency == Consistency::SequentialSwMr {
                if let Some(owner) = e.owner {
                    if e.copyset != 1u64 << owner.index() {
                        violations.push(format!(
                            "{tag}: owner {} but copyset {:#b}",
                            owner, e.copyset
                        ));
                    }
                }
            }
        }
    }
    violations
}
