//! Host-side state and the application-facing [`HostCtx`].
//!
//! Application threads "invoke a wrapper routine that installs the
//! millipage exception handler and calls the original main thread routine"
//! (§3.5.1). In the simulation the exception handler is the fault-retry
//! loop inside [`HostCtx`]: every shared access is protection-checked, a
//! failing check raises the Figure 3 fault path (request to the manager,
//! block, retry, ack), and every virtual nanosecond is attributed to a
//! Figure 6 category.

use crate::diag::DiagSink;
use crate::diff::Twin;
use crate::error::ProtocolError;
use crate::hlrc::{Consistency, MpInfo, RcDirty, RcState};
use crate::home::{HomePolicyKind, HomeTable};
use crate::msg::{Completion, MsgKind, Pmsg};
use crate::shared::{decode_slice, encode_slice, Pod, SharedCell, SharedVec};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use sim_core::clock::{BusyWindow, Clock, Ns};
use sim_core::sched::{BlockOutcome, SchedThread};
use sim_core::trace::{TraceKind, TraceRecorder, NO_MP};
use sim_core::{Category, CostModel, Counter, HostId, LogHistogram, TimeBreakdown};
use sim_mem::{Access, AccessError, AccessFault, AccessTlb, AddressSpace, VAddr};
use sim_net::Network;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Largest [`Pod`] element size: lets the typed accessors stage elements
/// in a stack buffer instead of allocating per access.
const POD_MAX: usize = 8;

/// A one-shot rendezvous between a blocked application thread and the DSM
/// server thread that completes its request.
///
/// A waiter resolves exactly once: either fulfilled with a [`Completion`]
/// or failed with a typed [`ProtocolError`] (nacked request, cancelled
/// run). Pre-fault-plane a request that never completed hung its thread
/// forever; failure is now a first-class outcome.
#[derive(Default)]
pub(crate) struct Waiter {
    slot: Mutex<Option<Result<Completion, ProtocolError>>>,
    cv: Condvar,
}

impl Waiter {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Server side: publishes the completion and wakes the waiter.
    pub(crate) fn fulfill(&self, c: Completion) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(Ok(c));
        }
        self.cv.notify_all();
    }

    /// Fails the rendezvous with a typed error (a fulfilled waiter keeps
    /// its completion — failure never clobbers a result already won).
    pub(crate) fn fail(&self, e: ProtocolError) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(Err(e));
        }
        self.cv.notify_all();
    }

    /// Non-blocking probe: the resolution, if the rendezvous already
    /// completed. Used by the deterministic scheduler's cooperative wait
    /// in place of parking on the condvar.
    pub(crate) fn try_result(&self) -> Option<Result<Completion, ProtocolError>> {
        self.slot.lock().clone()
    }

    /// Application side: blocks until fulfilled or failed.
    pub(crate) fn wait(&self) -> Result<Completion, ProtocolError> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(r) = slot.clone() {
                return r;
            }
            self.cv.wait(&mut slot);
        }
    }

    /// Like [`wait`](Self::wait) but gives up after `timeout` of wall
    /// clock, returning `None`. The wall-clock backstop exists for runs
    /// that disabled every deterministic failure path; virtual time never
    /// advances while a thread is parked here.
    pub(crate) fn wait_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Result<Completion, ProtocolError>> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(r) = slot.clone() {
                return Some(r);
            }
            if self.cv.wait_for(&mut slot, timeout).timed_out() {
                return slot.clone();
            }
        }
    }
}

/// Event counters one host accumulates (shared by its threads).
#[derive(Clone, Default, Debug)]
pub(crate) struct HostCounters {
    pub read_faults: Counter,
    pub write_faults: Counter,
    pub prefetch_requests: Counter,
    pub invalidations_received: Counter,
    pub pushes_received: Counter,
}

/// State shared between one host's application threads and its DSM server
/// thread.
pub(crate) struct HostState {
    pub host: HostId,
    pub space: AddressSpace,
    /// The application's most recent compute burst (the server's "was
    /// the host busy computing at this virtual time?" test, §3.5.1).
    pub busy: BusyWindow,
    /// Blocked requests by event id.
    pub waiters: Mutex<HashMap<u64, Arc<Waiter>>>,
    /// Outstanding prefetches by covered global vpage.
    pub prefetch_waiters: Mutex<HashMap<usize, Arc<Waiter>>>,
    /// Release-consistency state (boundary cache + twins; unused under
    /// the sequential-consistency protocol apart from boundary learning).
    pub rc: Mutex<RcState>,
    pub counters: HostCounters,
    /// Sharing-diagnostics sink this host's threads record faults and
    /// received invalidations into (inert unless diagnostics are on).
    pub diag: DiagSink,
    /// Set when the run failed somewhere and the cluster is tearing down:
    /// no new wait may begin, and every outstanding wait has been (or is
    /// about to be) failed with [`ProtocolError::Cancelled`].
    pub aborted: AtomicBool,
}

impl HostState {
    pub(crate) fn new(host: HostId, space: AddressSpace, diag: DiagSink) -> Arc<Self> {
        Arc::new(Self {
            host,
            space,
            busy: BusyWindow::new(),
            waiters: Mutex::new(HashMap::new()),
            prefetch_waiters: Mutex::new(HashMap::new()),
            rc: Mutex::new(RcState::default()),
            counters: HostCounters::default(),
            diag,
            aborted: AtomicBool::new(false),
        })
    }

    /// Registers a waiter under a fresh event id drawn from `events`.
    pub(crate) fn register_waiter(&self, events: &AtomicU64) -> (u64, Arc<Waiter>) {
        let ev = events.fetch_add(1, Ordering::Relaxed);
        let w = Waiter::new();
        // One critical section: checking `aborted` under the same lock the
        // cancel sweep drains under means either the sweep ran first (we
        // see the flag and never publish) or we publish first (the sweep
        // finds and fails the waiter). The old publish-then-recheck dance
        // took the lock twice per registration on the fault hot path.
        let cancelled = {
            let mut ws = self.waiters.lock();
            if self.aborted.load(Ordering::Acquire) {
                true
            } else {
                ws.insert(ev, Arc::clone(&w));
                false
            }
        };
        if cancelled {
            w.fail(ProtocolError::Cancelled {
                host: self.host,
                what: "request registered during shutdown",
            });
        }
        (ev, w)
    }

    /// Fails every outstanding wait on this host so its application
    /// threads unblock and the cluster can shut down instead of hanging.
    pub(crate) fn cancel_pending(&self) {
        self.aborted.store(true, Ordering::Release);
        for (_, w) in self.waiters.lock().drain() {
            w.fail(ProtocolError::Cancelled {
                host: self.host,
                what: "pending request",
            });
        }
        for (_, w) in self.prefetch_waiters.lock().drain() {
            w.fail(ProtocolError::Cancelled {
                host: self.host,
                what: "pending prefetch",
            });
        }
    }
}

/// The application's view of the DSM on one simulated host.
///
/// All shared-memory access, synchronization and timing flows through this
/// handle. One `HostCtx` belongs to one application thread.
pub struct HostCtx {
    pub(crate) host: HostId,
    pub(crate) hosts: usize,
    pub(crate) thread: usize,
    /// The cluster's home map: routes each minipage's protocol traffic to
    /// its home shard and names the manager host for synchronization and
    /// allocation services.
    pub(crate) home: Arc<HomeTable>,
    pub(crate) state: Arc<HostState>,
    pub(crate) net: Network<Pmsg>,
    pub(crate) cost: CostModel,
    pub(crate) clock: Clock,
    pub(crate) breakdown: TimeBreakdown,
    pub(crate) events: Arc<AtomicU64>,
    pub(crate) pending_acks: Vec<VAddr>,
    pub(crate) consistency: Consistency,
    pub(crate) timed_from: Ns,
    pub(crate) breakdown_mark: TimeBreakdown,
    /// Protocol event recorder for this application thread (inert when
    /// tracing is off).
    pub(crate) trace: TraceRecorder,
    /// Fault service times (request to resume) of this thread.
    pub(crate) fault_hist: LogHistogram,
    /// Wall-clock backstop on blocking waits. `None` (the default, and
    /// always the case with the fault plane disabled) blocks forever, as
    /// the pre-fault-plane code did; under injected faults a bounded wait
    /// turns a lost-reply hang into a typed [`ProtocolError::Timeout`].
    pub(crate) request_timeout: Option<std::time::Duration>,
    /// This thread's handle into the deterministic scheduler (inert in
    /// the default free-threaded mode).
    pub(crate) sched: SchedThread,
    /// Per-thread software TLB over the host's address space: caches the
    /// last few `(vpage → protection, page)` resolutions so the
    /// non-faulting common case skips the address decode and protection
    /// load. Entries are validated against the space's protection
    /// generation under the page lock, so the cache changes wall-clock
    /// cost only — never which accesses fault (see
    /// `sim_mem::AddressSpace`'s module docs).
    pub(crate) tlb: AccessTlb,
}

impl HostCtx {
    /// This host's id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Number of hosts in the cluster.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// This application thread's index within its host (0 when the host
    /// runs a single application thread).
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Publishes a scheduler action: this thread just mutated state a
    /// blocked peer may be waiting on outside the network path (e.g. the
    /// cluster cancelling pending waiters after an application failure).
    pub(crate) fn sched_action(&self) {
        self.sched.action();
    }

    /// Current virtual time of this application thread.
    pub fn now(&self) -> Ns {
        self.clock.now()
    }

    /// The per-category time breakdown so far.
    pub fn breakdown(&self) -> &TimeBreakdown {
        &self.breakdown
    }

    /// Starts (or restarts) this thread's timed region. The paper's
    /// benchmarks initialize their data in parallel and measure only the
    /// computation that follows; applications call this right after their
    /// initialization barrier.
    pub fn timer_reset(&mut self) {
        self.timed_from = self.clock.now();
        self.breakdown_mark = self.breakdown;
    }

    /// Virtual time elapsed in the timed region.
    pub fn timed(&self) -> Ns {
        self.clock.now() - self.timed_from
    }

    /// The breakdown of the timed region only.
    pub fn timed_breakdown(&self) -> TimeBreakdown {
        self.breakdown.since(&self.breakdown_mark)
    }

    /// Charges `ns` of application computation (Figure 6 "Comp").
    pub fn compute(&mut self, ns: Ns) {
        let t0 = self.clock.now();
        self.clock.advance(ns);
        self.breakdown.charge(Category::Comp, ns);
        self.state.busy.record(t0, self.clock.now());
    }

    /// Advances the clock by `ns` of local CPU work and records it in the
    /// busy window (protocol-side work on the application thread).
    fn charge_busy(&mut self, ns: Ns) {
        let t0 = self.clock.now();
        self.clock.advance(ns);
        self.state.busy.record(t0, self.clock.now());
    }

    /// Blocks on `w` until the DSM server fulfills or fails the event.
    /// The host's published clock stays at the block-entry time, so the
    /// server's busy test reads the host as idle from that virtual moment
    /// on. A failed wait unwinds the application thread with the typed
    /// error as payload; the cluster catches it, cancels the other hosts'
    /// pending waits, and reports the error instead of hanging.
    fn blocking_wait(&mut self, w: &Waiter, what: &'static str) -> Completion {
        let res = if self.sched.enabled() {
            // Cooperative wait: yield the schedule until the server
            // resolves the rendezvous. A poisoned scheduler means no
            // schedulable thread can ever fulfill it — the explored
            // interleaving deadlocked, which is a typed finding.
            match self.sched.block_until(self.clock.now(), || w.try_result()) {
                BlockOutcome::Ready(r) => r,
                BlockOutcome::Poisoned => Err(ProtocolError::Deadlock {
                    host: self.host,
                    what,
                }),
            }
        } else {
            match self.request_timeout {
                None => w.wait(),
                Some(d) => w.wait_timeout(d).unwrap_or(Err(ProtocolError::Timeout {
                    host: self.host,
                    what,
                    event: 0,
                })),
            }
        };
        match res {
            Ok(c) => c,
            Err(e) => {
                if matches!(e, ProtocolError::Timeout { .. }) {
                    self.trace
                        .emit(self.clock.now(), TraceKind::TimeoutFired, |ev| ev);
                }
                std::panic::panic_any(e)
            }
        }
    }

    /// Routes `addr`'s protocol traffic to its home shard. Distributed
    /// policies translate through the local MPT replica, which costs one
    /// `mpt_lookup` on the application thread; `cat` attributes that time
    /// when the caller's surrounding code does not already cover it with
    /// a category charge. The centralized policy routes straight to the
    /// manager with no lookup and no cost, like the original protocol.
    fn route_home(&mut self, addr: VAddr, cat: Option<Category>) -> HostId {
        let (dest, looked_up) = self.home.route(addr);
        if looked_up {
            self.charge_busy(self.cost.mpt_lookup);
            if let Some(cat) = cat {
                self.breakdown.charge(cat, self.cost.mpt_lookup);
            }
        }
        dest
    }

    /// Sends `msg` from this thread, tracing the wire event when enabled.
    /// Under injected faults the reliable channel retransmits lost copies
    /// transparently; a message that exhausts its retransmit budget
    /// unwinds this thread with a typed [`ProtocolError::Timeout`] rather
    /// than leaving it blocked on a request that never left the host.
    fn send(&mut self, dest: HostId, msg: Pmsg, payload: usize) {
        let event = msg.event;
        if self.trace.enabled() {
            let mp = msg.minipage.0;
            self.trace.emit(self.clock.now(), TraceKind::MsgSend, |e| {
                e.with_peer(dest)
                    .with_event(event)
                    .with_mp(mp)
                    .with_bytes(payload)
            });
        }
        let receipt = self
            .net
            .send_receipt(self.host, dest, msg, payload, self.clock.now());
        if receipt.drops > 0 && self.trace.enabled() {
            for retry in 1..=receipt.drops {
                self.trace
                    .emit(self.clock.now(), TraceKind::PktDropped, |e| {
                        e.with_peer(dest).with_event(event).with_aux(retry)
                    });
                if receipt.delivered || retry < receipt.drops {
                    self.trace
                        .emit(self.clock.now(), TraceKind::Retransmit, |e| {
                            e.with_peer(dest).with_event(event).with_aux(retry)
                        });
                }
            }
        }
        if !receipt.delivered {
            self.trace
                .emit(self.clock.now(), TraceKind::TimeoutFired, |e| {
                    e.with_peer(dest).with_event(event)
                });
            std::panic::panic_any(ProtocolError::Timeout {
                host: self.host,
                what: "request send",
                event,
            });
        }
        // Yield point: the message is on the wire; give the schedule a
        // chance to run its receiver before this thread proceeds.
        self.sched.yield_now(self.clock.now());
    }

    /// The minipage id at `addr`, for trace records only (callers gate on
    /// `trace.enabled()`; the lookup is replica-local and free).
    fn trace_mp(&self, addr: VAddr) -> u32 {
        self.home.translate(addr).map_or(NO_MP, |mp| mp.id.0)
    }

    /// Records one serviced fault into the diagnostics table, attributed
    /// to the minipage and (for writes) the faulting byte offset. The
    /// replica-local translation runs only when diagnostics are on, so
    /// the disabled cost stays one branch. Callers bump the matching
    /// `HostCounters` fault counter at the same site, which is what keeps
    /// diag counts and report counters equal by construction.
    fn diag_fault(&self, addr: VAddr, write: bool) {
        if !self.state.diag.enabled() {
            return;
        }
        if let Some(mp) = self.home.translate(addr) {
            let off = addr.0 - mp.base.0;
            if write {
                self.state.diag.write_fault(mp.id.0, self.host.0, off, 1);
            } else {
                self.state.diag.read_fault(mp.id.0, self.host.0);
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation (§3.2's malloc-like API, via manager RPC).
    // ------------------------------------------------------------------

    /// Allocates `bytes` of shared memory; returns its address.
    pub fn alloc_bytes(&mut self, bytes: usize) -> VAddr {
        let t0 = self.clock.now();
        let (ev, w) = self.state.register_waiter(&self.events);
        let msg = Pmsg::new(MsgKind::AllocRequest, self.host, ev).with_aux(bytes as u64);
        let mgr = self.home.manager();
        self.send(mgr, msg, 0);
        let c = self.blocking_wait(&w, "shared allocation");
        self.clock.merge(c.resume_vt);
        self.breakdown.charge(Category::Comp, self.clock.now() - t0);
        c.addr
    }

    /// Allocates a shared vector of `len` elements.
    pub fn alloc_vec<T: Pod>(&mut self, len: usize) -> SharedVec<T> {
        SharedVec::from_raw(self.alloc_bytes(len * T::SIZE), len)
    }

    /// Allocates a single shared cell.
    pub fn alloc_cell<T: Pod>(&mut self) -> SharedCell<T> {
        SharedCell::from_raw(self.alloc_bytes(T::SIZE))
    }

    // ------------------------------------------------------------------
    // Typed access.
    // ------------------------------------------------------------------

    /// Reads element `i`.
    pub fn get<T: Pod>(&mut self, sv: &SharedVec<T>, i: usize) -> T {
        let mut buf = [0u8; POD_MAX];
        self.read_bytes_at(sv.addr_of(i), &mut buf[..T::SIZE]);
        T::from_bytes(&buf[..T::SIZE])
    }

    /// Writes element `i`.
    pub fn set<T: Pod>(&mut self, sv: &SharedVec<T>, i: usize, v: T) {
        let mut buf = [0u8; POD_MAX];
        v.to_bytes(&mut buf[..T::SIZE]);
        self.write_bytes_at(sv.addr_of(i), &buf[..T::SIZE]);
    }

    /// Reads elements `range` into a fresh vector.
    pub fn read_range<T: Pod>(&mut self, sv: &SharedVec<T>, range: Range<usize>) -> Vec<T> {
        let (addr, bytes) = sv.range_bytes(range.start, range.end);
        if bytes == 0 {
            return Vec::new();
        }
        let mut buf = vec![0u8; bytes];
        self.read_bytes_at(addr, &mut buf);
        decode_slice(&buf)
    }

    /// Writes `vals` starting at element `start`.
    pub fn write_range<T: Pod>(&mut self, sv: &SharedVec<T>, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        let (addr, bytes) = sv.range_bytes(start, start + vals.len());
        let buf = encode_slice(vals);
        debug_assert_eq!(buf.len(), bytes);
        self.write_bytes_at(addr, &buf);
    }

    /// Reads the cell.
    pub fn cell_get<T: Pod>(&mut self, c: &SharedCell<T>) -> T {
        let mut buf = [0u8; POD_MAX];
        self.read_bytes_at(c.addr(), &mut buf[..T::SIZE]);
        T::from_bytes(&buf[..T::SIZE])
    }

    /// Writes the cell.
    pub fn cell_set<T: Pod>(&mut self, c: &SharedCell<T>, v: T) {
        let mut buf = [0u8; POD_MAX];
        v.to_bytes(&mut buf[..T::SIZE]);
        self.write_bytes_at(c.addr(), &buf[..T::SIZE]);
    }

    /// Segmented read: commits page by page, like a hardware memcpy whose
    /// loads fault and resume per instruction. An access never needs two
    /// minipages resident *simultaneously*, which keeps heavily contended
    /// multi-minipage ranges live (per-page atomicity, as on real
    /// hardware).
    fn read_bytes_at(&mut self, addr: VAddr, buf: &mut [u8]) {
        // TLB fast path: the whole access inside one cached, readable
        // vpage — no address decode, no fault-retry machinery.
        if let Some(e) = self.tlb.lookup(addr, buf.len(), Access::Read) {
            if self.state.space.tlb_read(&e, addr, buf) {
                self.account_access(buf.len());
                return;
            }
            self.tlb.evict(e.vpage());
        }
        let page = self.state.space.geometry().page_size();
        let remap = self.home.mpt().adapt_gen() != 0;
        let mut off = 0usize;
        while off < buf.len() {
            let mut seg_addr = addr.add(off);
            let into_page = (seg_addr.0 % page as u64) as usize;
            let mut take = (page - into_page).min(buf.len() - off);
            if remap {
                if let Some((a, cap)) = self.remap_segment(seg_addr) {
                    seg_addr = a;
                    take = take.min(cap);
                }
            }
            let dst = &mut buf[off..off + take];
            self.checked(seg_addr, take, Access::Read, |space| {
                space.read(seg_addr, dst)
            });
            self.tlb_refill(seg_addr);
            off += take;
        }
    }

    /// Segmented write; see [`read_bytes_at`](Self::read_bytes_at).
    fn write_bytes_at(&mut self, addr: VAddr, data: &[u8]) {
        if let Some(e) = self.tlb.lookup(addr, data.len(), Access::Write) {
            if self.state.space.tlb_write(&e, addr, data) {
                self.account_access(data.len());
                return;
            }
            self.tlb.evict(e.vpage());
        }
        let page = self.state.space.geometry().page_size();
        let remap = self.home.mpt().adapt_gen() != 0;
        let mut off = 0usize;
        while off < data.len() {
            let mut seg_addr = addr.add(off);
            let into_page = (seg_addr.0 % page as u64) as usize;
            let mut take = (page - into_page).min(data.len() - off);
            if remap {
                if let Some((a, cap)) = self.remap_segment(seg_addr) {
                    seg_addr = a;
                    take = take.min(cap);
                }
            }
            let src = &data[off..off + take];
            self.checked(seg_addr, take, Access::Write, |space| {
                space.write(seg_addr, src)
            });
            self.tlb_refill(seg_addr);
            off += take;
        }
    }

    /// After an adaptation action rewrote the MPT, application pointers
    /// may still name a retired view (its vpages are permanently
    /// NoAccess). Resolves `addr` through the redirect overlay to the
    /// active minipage covering the same physical byte and returns the
    /// rebased address in that minipage's view plus the bytes remaining
    /// to its end. Offsets within a page are identical across views, so
    /// the caller's page-boundary arithmetic stays valid; only the
    /// minipage-end cap is new.
    fn remap_segment(&self, addr: VAddr) -> Option<(VAddr, usize)> {
        let mp = self.home.translate(addr)?;
        let geo = self.state.space.geometry();
        let loc = geo.decode(addr)?;
        let byte = loc.page * geo.page_size() + loc.offset;
        let into = byte - mp.phys_range(geo.page_size()).start;
        Some((mp.base.add(into), mp.len - into))
    }

    /// Caches the vpage resolution of a segment that just completed on
    /// the slow path, so the next access to it takes the fast path.
    fn tlb_refill(&mut self, addr: VAddr) {
        if let Some(e) = self.state.space.tlb_fill(addr) {
            self.tlb.insert(e);
        }
    }

    // ------------------------------------------------------------------
    // Synchronization (§3.4: "common synchronization calls such as
    // barriers and locks").
    // ------------------------------------------------------------------

    /// Global barrier across all hosts. Under release consistency a
    /// barrier is a release + acquire: dirty minipages flush first.
    pub fn barrier(&mut self) {
        self.rc_flush();
        let t0 = self.clock.now();
        let (ev, w) = self.state.register_waiter(&self.events);
        self.trace
            .emit(t0, TraceKind::BarrierEnter, |e| e.with_event(ev));
        let msg = Pmsg::new(MsgKind::BarrierEnter, self.host, ev);
        let mgr = self.home.manager();
        self.send(mgr, msg, 0);
        let c = self.blocking_wait(&w, "barrier release");
        self.clock.merge(c.resume_vt);
        self.trace
            .emit(self.clock.now(), TraceKind::BarrierResume, |e| {
                e.with_event(ev)
            });
        self.breakdown
            .charge(Category::Synch, self.clock.now() - t0);
    }

    /// Acquires the queue lock `id` (blocking).
    pub fn lock(&mut self, id: u64) {
        let t0 = self.clock.now();
        let (ev, w) = self.state.register_waiter(&self.events);
        self.trace
            .emit(t0, TraceKind::LockAcquireBegin, |e| e.with_event(id));
        let msg = Pmsg::new(MsgKind::LockAcquire, self.host, ev).with_aux(id);
        let mgr = self.home.manager();
        self.send(mgr, msg, 0);
        let c = self.blocking_wait(&w, "lock grant");
        self.clock.merge(c.resume_vt);
        self.trace
            .emit(self.clock.now(), TraceKind::LockResume, |e| {
                e.with_event(id)
            });
        self.breakdown
            .charge(Category::Synch, self.clock.now() - t0);
    }

    /// Releases the queue lock `id` (fire-and-forget). Under release
    /// consistency the release flushes dirty minipages first, so the next
    /// acquirer observes them.
    pub fn unlock(&mut self, id: u64) {
        self.rc_flush();
        self.trace
            .emit(self.clock.now(), TraceKind::LockRelease, |e| {
                e.with_event(id)
            });
        let msg = Pmsg::new(MsgKind::LockRelease, self.host, 0).with_aux(id);
        let mgr = self.home.manager();
        self.send(mgr, msg, 0);
    }

    // ------------------------------------------------------------------
    // Prefetch (§4.3.1: LU's two prefetch calls) and push (§4.3: TSP's
    // best-bound broadcast).
    // ------------------------------------------------------------------

    /// Issues a non-blocking read prefetch for one allocation's bytes.
    /// A later access that arrives before the data blocks in the
    /// "Prefetch" category instead of taking a full read fault.
    pub fn prefetch_bytes(&mut self, addr: VAddr, len: usize) {
        let geo = self.state.space.geometry();
        let Some((_, vpages)) = geo.vpages_covering(addr, len) else {
            panic!("prefetch outside the shared region: {addr}+{len}");
        };
        // Skip when data is already present or a prefetch is in flight.
        // Like `register_waiter`, the shutdown check lives inside the same
        // critical section as the publication: the cancel sweep either ran
        // first (we see the flag, publish nothing, send nothing) or finds
        // the published waiter and fails it — one lock either way.
        {
            let mut pf = self.state.prefetch_waiters.lock();
            let first = vpages.start;
            if self.state.space.prot(first) != sim_mem::Prot::NoAccess || pf.contains_key(&first) {
                return;
            }
            if self.state.aborted.load(Ordering::Acquire) {
                return;
            }
            let w = Waiter::new();
            for vp in vpages {
                pf.entry(vp).or_insert_with(|| Arc::clone(&w));
            }
        }
        self.state.counters.prefetch_requests.bump();
        let ev = self.events.fetch_add(1, Ordering::Relaxed);
        let mut msg = Pmsg::new(MsgKind::ReadRequest, self.host, ev).with_addr(addr);
        msg.prefetch = true;
        let dest = self.route_home(addr, Some(Category::Comp));
        self.send(dest, msg, 0);
    }

    /// Prefetches a whole shared vector.
    pub fn prefetch_vec<T: Pod>(&mut self, sv: &SharedVec<T>) {
        if !sv.is_empty() {
            self.prefetch_bytes(sv.base(), sv.byte_len());
        }
    }

    /// Fetches a group of shared vectors as one coarse-grain unit (§5's
    /// composed views): read prefetches for every absent member go out
    /// back to back, then the thread waits for the stragglers, so the
    /// fetch latencies overlap instead of serializing fault by fault.
    ///
    /// WATER's read phase is the paper's own example: "the read phase in
    /// WATER could benefit from a coarse grain operation mode, whereas
    /// the later write phase would accelerate in a fine grain mode".
    pub fn fetch_group<T: Pod>(&mut self, members: &[SharedVec<T>]) {
        // Pipeline the requests.
        for sv in members {
            self.prefetch_vec(sv);
        }
        // Collect the outstanding waiters and drain them.
        let t0 = self.clock.now();
        let mut pending: Vec<Arc<Waiter>> = Vec::new();
        {
            let pf = self.state.prefetch_waiters.lock();
            for sv in members {
                if sv.is_empty() {
                    continue;
                }
                let Some(vp) = self.state.space.geometry().vpage_of(sv.base()) else {
                    continue;
                };
                if let Some(w) = pf.get(&vp) {
                    if !pending.iter().any(|p| Arc::ptr_eq(p, w)) {
                        pending.push(Arc::clone(w));
                    }
                }
            }
        }
        for w in pending {
            let c = self.blocking_wait(&w, "prefetch group");
            self.clock.merge(c.resume_vt);
        }
        if self.clock.now() > t0 {
            self.breakdown
                .charge(Category::Prefetch, self.clock.now() - t0);
        }
    }

    /// Pushes read copies of the cell's minipage to every host (§4.3:
    /// "pushes readable copies of the new value to all hosts").
    ///
    /// The caller must hold the writable copy (i.e. have just written it);
    /// the method downgrades the local copy to read-only and ships the
    /// data through the manager.
    pub fn push_cell<T: Pod>(&mut self, c: &SharedCell<T>) {
        self.push_bytes(c.addr(), T::SIZE);
    }

    /// Pushes read copies of the minipage containing `[addr, addr+len)`.
    pub fn push_bytes(&mut self, addr: VAddr, len: usize) {
        assert_eq!(
            self.consistency,
            Consistency::SequentialSwMr,
            "push requires the SW/MR protocol's exclusive ownership"
        );
        // Ensure we really hold the writable copy (fault it in if not).
        self.checked(addr, len, Access::Write, |space| {
            space.check(addr, len, Access::Write)
        });
        let geo = self.state.space.geometry();
        let (_, vpages) = geo
            .vpages_covering(addr, len)
            .expect("validated by the check above");
        let data = self
            .state
            .space
            .priv_read(geo.to_priv(addr).expect("shared address"), len)
            .expect("validated range");
        // Downgrade our own copy before publishing, preserving SW/MR.
        for vp in vpages {
            self.state
                .space
                .set_prot(vp, sim_mem::Prot::ReadOnly)
                .expect("application vpage");
            self.charge_busy(self.cost.set_protection);
            self.breakdown
                .charge(Category::Comp, self.cost.set_protection);
        }
        if self.trace.enabled() {
            let mp = self.trace_mp(addr);
            self.trace
                .emit(self.clock.now(), TraceKind::Downgrade, |e| e.with_mp(mp));
        }
        let mut msg = Pmsg::new(MsgKind::PushRequest, self.host, 0).with_addr(addr);
        msg.data = Bytes::from(data);
        let payload = msg.payload_bytes();
        let dest = self.route_home(addr, Some(Category::Comp));
        self.send(dest, msg, payload);
    }

    // ------------------------------------------------------------------
    // The fault-retry loop (the millipage exception handler).
    // ------------------------------------------------------------------

    /// Runs `attempt` against the address space, resolving faults through
    /// the DSM protocol until it succeeds; then flushes pending acks and
    /// charges the local access cost.
    fn checked<R>(
        &mut self,
        addr: VAddr,
        len: usize,
        access: Access,
        mut attempt: impl FnMut(&AddressSpace) -> Result<R, AccessError>,
    ) -> R {
        let mut spins = 0u32;
        loop {
            match attempt(&self.state.space) {
                Ok(r) => {
                    self.account_access(len);
                    return r;
                }
                Err(AccessError::Fault(f)) => {
                    debug_assert_eq!(f.access, access);
                    self.service_fault(f);
                    spins += 1;
                    assert!(spins < 10_000, "livelock: fault at {addr} never resolves");
                }
                Err(AccessError::Mem(e)) => {
                    panic!("shared-memory access bug at {addr}+{len}: {e}")
                }
            }
        }
    }

    /// The virtual-time charge of one completed shared access — identical
    /// whether the copy went through the TLB fast path or the checked
    /// slow path, which is what keeps the TLB invisible to virtual time.
    fn account_access(&mut self, len: usize) {
        let cost = self.cost.copy_time(len);
        let t0 = self.clock.now();
        self.clock.advance(cost);
        self.breakdown.charge(Category::Comp, cost);
        self.state.busy.record(t0, self.clock.now());
        self.flush_acks();
    }

    /// Figure 3 "On Read or Write Fault".
    fn service_fault(&mut self, f: AccessFault) {
        // Yield point: a fault is where the hardware would trap out of
        // the application — a natural interleaving boundary.
        self.sched.yield_now(self.clock.now());
        if self.sched.enabled() {
            // The yield may have let the server resolve this very fault
            // (a prefetch reply or push installing the page between the
            // trap and the handler). Retry the access instead of
            // requesting a copy the host already holds — the real kernel
            // path does the same for a fault on a since-mapped page.
            let p = self.state.space.prot(f.vpage);
            let resolved = match f.access {
                Access::Read => p != sim_mem::Prot::NoAccess,
                Access::Write => p == sim_mem::Prot::ReadWrite,
            };
            if resolved {
                return;
            }
        }
        // Close any service window we still hold before requesting the
        // next minipage. A multi-minipage operation (possible under the
        // page-grain baseline) would otherwise hold minipage A's window
        // while blocking on minipage B — and a peer doing the reverse
        // deadlocks with us. The real system cannot express this state:
        // each hardware fault is a single instruction, acked before the
        // next fault can occur.
        self.flush_acks();
        if self.consistency == Consistency::HomeEagerRc && f.access == Access::Write {
            self.rc_write_fault(f);
            return;
        }
        let t0 = self.clock.now();
        // If a prefetch for this vpage is in flight, wait for it instead
        // of issuing a second (competing) request.
        let pf = self.state.prefetch_waiters.lock().get(&f.vpage).cloned();
        if let Some(w) = pf {
            let c = self.blocking_wait(&w, "prefetch completion");
            self.clock.merge(c.resume_vt);
            self.breakdown
                .charge(Category::Prefetch, self.clock.now() - t0);
            return;
        }
        let (kind, cat, begin_kind, end_kind) = match f.access {
            Access::Read => {
                self.state.counters.read_faults.bump();
                (
                    MsgKind::ReadRequest,
                    Category::ReadFault,
                    TraceKind::ReadFaultBegin,
                    TraceKind::ReadFaultEnd,
                )
            }
            Access::Write => {
                self.state.counters.write_faults.bump();
                (
                    MsgKind::WriteRequest,
                    Category::WriteFault,
                    TraceKind::WriteFaultBegin,
                    TraceKind::WriteFaultEnd,
                )
            }
        };
        self.diag_fault(f.addr, f.access == Access::Write);
        let traced_mp = if self.trace.enabled() {
            let mp = self.trace_mp(f.addr);
            self.trace.emit(t0, begin_kind, |e| e.with_mp(mp));
            mp
        } else {
            NO_MP
        };
        // The kernel delivers the access fault to the handler...
        self.charge_busy(self.cost.access_fault);
        // ...which routes the request to the minipage's home shard and
        // waits on its event. The whole span lands in the fault category.
        let dest = self.route_home(f.addr, None);
        let (ev, w) = self.state.register_waiter(&self.events);
        let msg = Pmsg::new(kind, self.host, ev).with_addr(f.addr);
        self.send(dest, msg, 0);
        let c = self.blocking_wait(&w, "fault service");
        self.clock.merge(c.resume_vt);
        self.fault_hist.record(self.clock.now() - t0);
        self.trace.emit(self.clock.now(), end_kind, |e| {
            e.with_mp(traced_mp).with_event(ev)
        });
        self.breakdown.charge(cat, self.clock.now() - t0);
        // The ack goes out only after the retried access completes, so the
        // service window at the manager covers the access (§3.3). The
        // release-consistency protocol opens no service windows.
        if self.consistency == Consistency::SequentialSwMr {
            self.pending_acks.push(f.addr);
        }
    }

    /// Write miss under release consistency: ensure a readable copy, twin
    /// it, and upgrade the protection locally — no ownership transfer.
    fn rc_write_fault(&mut self, f: AccessFault) {
        let t0 = self.clock.now();
        self.state.counters.write_faults.bump();
        self.diag_fault(f.addr, true);
        let traced_mp = if self.trace.enabled() {
            let mp = self.trace_mp(f.addr);
            self.trace
                .emit(t0, TraceKind::WriteFaultBegin, |e| e.with_mp(mp));
            mp
        } else {
            NO_MP
        };
        self.charge_busy(self.cost.access_fault);
        // Wait for an in-flight prefetch, or fetch a read copy from home.
        let pf = self.state.prefetch_waiters.lock().get(&f.vpage).cloned();
        if let Some(w) = pf {
            let c = self.blocking_wait(&w, "prefetch completion");
            self.clock.merge(c.resume_vt);
        } else if self.state.space.prot(f.vpage) == sim_mem::Prot::NoAccess {
            let dest = self.route_home(f.addr, None);
            let (ev, w) = self.state.register_waiter(&self.events);
            let msg = Pmsg::new(MsgKind::ReadRequest, self.host, ev).with_addr(f.addr);
            self.send(dest, msg, 0);
            let c = self.blocking_wait(&w, "rc read fetch");
            self.clock.merge(c.resume_vt);
        }
        // The reply taught us the minipage boundaries (home-allocated
        // minipages are pre-learned at the manager host).
        let info: MpInfo = {
            let rc = self.state.rc.lock();
            *rc.boundaries
                .get(&f.vpage)
                .expect("boundaries cached by the fetch or at allocation")
        };
        let fresh_twin = {
            let mut rc = self.state.rc.lock();
            if let std::collections::hash_map::Entry::Vacant(e) = rc.dirty.entry(info.id.0) {
                let data = self
                    .state
                    .space
                    .priv_read(info.priv_base, info.len)
                    .expect("translated minipage in range");
                e.insert(RcDirty {
                    info,
                    twin: Twin::capture(&data),
                });
                true
            } else {
                false
            }
        };
        if fresh_twin {
            self.charge_busy(self.cost.copy_time(info.len));
        }
        // Local upgrade: the MMU-level act MultiView makes cheap.
        let vpages = self
            .state
            .space
            .geometry()
            .vpages_covering(info.base, info.len)
            .expect("translated minipage in range")
            .1;
        for vp in vpages {
            self.state
                .space
                .set_prot(vp, sim_mem::Prot::ReadWrite)
                .expect("application vpage");
            self.charge_busy(self.cost.set_protection);
        }
        self.fault_hist.record(self.clock.now() - t0);
        self.trace
            .emit(self.clock.now(), TraceKind::WriteFaultEnd, |e| {
                e.with_mp(traced_mp)
            });
        self.breakdown
            .charge(Category::WriteFault, self.clock.now() - t0);
    }

    /// Release-point flush (release consistency only): diff every dirty
    /// minipage against its twin, downgrade the local copy, and ship the
    /// diffs to their homes.
    ///
    /// Under the centralized policy the diffs are fire-and-forget:
    /// ordering piggybacks on the FIFO channel to the single manager (see
    /// the `hlrc` module docs). With distributed homes the diff and the
    /// upcoming barrier/lock message travel on *different* channels, so
    /// each diff carries an event and the release blocks until every home
    /// confirms with [`MsgKind::RcDiffAck`] that the diff is applied and
    /// all stale copies are invalidated. The diffs still go out back to
    /// back first, so their round-trips overlap.
    fn rc_flush(&mut self) {
        if self.consistency != Consistency::HomeEagerRc {
            return;
        }
        let dirty: Vec<RcDirty> = {
            let mut rc = self.state.rc.lock();
            if rc.dirty.is_empty() {
                return;
            }
            let mut dirty: Vec<RcDirty> = rc.dirty.drain().map(|(_, d)| d).collect();
            // HashMap drain order is nondeterministic; ship diffs in
            // minipage order so the flush sequence (and everything
            // downstream of it — traces, costs, home arrival order) is a
            // pure function of the schedule.
            dirty.sort_by_key(|d| d.info.id.0);
            dirty
        };
        let t0 = self.clock.now();
        let distributed = self.home.kind() != HomePolicyKind::Centralized;
        let mut pending: Vec<(u64, Arc<Waiter>)> = Vec::new();
        for d in dirty {
            // Snapshot + invalidate atomically per page, then diff. The
            // local copy is dropped (not downgraded): a concurrent
            // invalidation from another flusher could otherwise race this
            // downgrade and leave a stale read-only survivor. TreadMarks
            // invalidates at synchronization points the same way.
            let data = self
                .state
                .space
                .snapshot_and_protect(d.info.base, d.info.len, sim_mem::Prot::NoAccess)
                .expect("translated minipage in range");
            let diff = d.twin.diff(&data);
            self.charge_busy(self.cost.diff_time(d.info.len));
            self.charge_busy(self.cost.set_protection);
            self.trace
                .emit(self.clock.now(), TraceKind::InvalidateLocal, |e| {
                    e.with_mp(d.info.id.0)
                });
            if diff.is_empty() {
                continue;
            }
            let ev = if distributed {
                let (ev, w) = self.state.register_waiter(&self.events);
                pending.push((ev, w));
                ev
            } else {
                0
            };
            let mut msg = Pmsg::new(MsgKind::RcDiff, self.host, ev).with_addr(d.info.base);
            msg.minipage = d.info.id;
            msg.base = d.info.base;
            msg.len = d.info.len;
            msg.priv_base = d.info.priv_base;
            msg.data = Bytes::from(diff.encode());
            let payload = msg.payload_bytes();
            self.trace
                .emit(self.clock.now(), TraceKind::RcDiffSend, |e| {
                    e.with_mp(d.info.id.0)
                        .with_event(ev)
                        .with_bytes(payload)
                        .with_aux(u32::from(distributed))
                });
            // The boundary cache already names the minipage, so the home
            // comes from the id map — no MPT lookup to charge.
            let dest = self.home.home(d.info.id);
            self.send(dest, msg, payload);
        }
        for (ev, w) in pending {
            let c = self.blocking_wait(&w, "rc diff ack");
            self.clock.merge(c.resume_vt);
            self.trace
                .emit(self.clock.now(), TraceKind::RcDiffAckRecv, |e| {
                    e.with_event(ev)
                });
        }
        self.breakdown
            .charge(Category::Synch, self.clock.now() - t0);
    }

    /// Sends the post-access acks of §3.3.
    fn flush_acks(&mut self) {
        if self.pending_acks.is_empty() {
            return;
        }
        let acks = std::mem::take(&mut self.pending_acks);
        for addr in acks {
            let msg = Pmsg::new(MsgKind::Ack, self.host, 0).with_addr(addr);
            let dest = self.route_home(addr, Some(Category::Comp));
            self.send(dest, msg, 0);
        }
    }
}
