//! Cluster assembly: spawn servers and application threads, run, report.
//!
//! §3.4: "only a single instance of the application should be executed on
//! each host". [`run`] plays the role of starting that executable
//! concurrently on every host of the testbed: it spawns one DSM server
//! thread and one application thread per simulated host, runs the
//! `setup` closure once (the manager initializing shared structures before
//! the computation starts), hands every application thread the same shared
//! handle bundle, and assembles a [`RunReport`] when everything joins.

use crate::diag::{build_report, DiagSink, DiagTable, LinkStat};
use crate::error::ProtocolError;
use crate::faults::WireFaults;
use crate::hlrc::Consistency;
use crate::home::{HomePolicyKind, HomeTable};
use crate::host::{HostCtx, HostState};
use crate::manager::{ManagerShard, ManagerStats};
use crate::msg::{MsgKind, Pmsg};
use crate::server::{server_loop, ServerOutcome};
use crate::shared::{encode_slice, Pod, SharedCell, SharedVec};
use crate::stats::{
    check_coherence, check_directories, check_rc_consistency, HostReport, NetFaultStats, RunReport,
    ShardStats,
};
use multiview::{AllocMode, Allocator};
use sim_core::clock::Clock;
use sim_core::sched::{ParallelConfig, SchedMode, SchedThread, Scheduler, ThreadKey};
use sim_core::trace::{Tracer, Track};
use sim_core::{CostModel, HostId, LogHistogram, SplitMix64, TimeBreakdown};
use sim_mem::{AddressSpace, Geometry, VAddr};
use sim_net::{Network, ServerTimeline};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Configuration of a simulated Millipage cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of hosts (the paper's testbed: 1–8).
    pub hosts: usize,
    /// Application views ("the initial setting of the maximal number of
    /// views", §3.2).
    pub views: usize,
    /// Memory-object size in 4 KB pages.
    pub pages: usize,
    /// Platform cost model.
    pub cost: CostModel,
    /// Allocation policy (fine grain, chunked, or the page-grain baseline).
    pub alloc_mode: AllocMode,
    /// Application threads per host (§3.4: "only a single instance of
    /// the application should be executed on each host, even if this host
    /// is a multi-processor (SMP) machine" — the instance itself may be
    /// multithreaded).
    pub threads_per_host: usize,
    /// Coherence protocol: the paper's SW/MR sequential consistency or
    /// the §5 home-based eager release-consistency extension.
    pub consistency: Consistency,
    /// How minipages are distributed over manager shards (§5: "this
    /// problem can be solved by distributing the minipage management
    /// among several managers"). The default reproduces the paper's
    /// single centralized manager exactly.
    pub home_policy: HomePolicyKind,
    /// The host running the shared allocator and the synchronization
    /// services (and, under the centralized policy, every minipage).
    pub manager: usize,
    /// Seed for every stochastic model component.
    pub seed: u64,
    /// Protocol event tracer. Disabled by default (recording then costs
    /// one branch per instrumentation point); pass
    /// [`Tracer::enabled`] and drain it after [`run`] returns to get the
    /// merged event log.
    pub tracer: Tracer,
    /// Seeded wire-fault injection (drop / duplicate / jitter / reorder
    /// plus scripted one-shot faults). Disabled by default, in which case
    /// the network takes the exact pre-fault-plane code path.
    pub faults: WireFaults,
    /// Wall-clock backstop on blocking application waits. `None` blocks
    /// forever except under an active fault plane, where it defaults to
    /// 30 s so a lost-beyond-recovery reply surfaces as a typed
    /// [`ProtocolError::Timeout`] instead of a hang. Ignored in
    /// deterministic mode, where the scheduler's deadlock detection
    /// replaces every wall-clock backstop.
    pub request_timeout: Option<std::time::Duration>,
    /// Cooperative deterministic scheduling (see `sim_core::sched`). Off
    /// by default — the free-threaded optimistic execution — unless the
    /// `MILLIPAGE_DET_SCHED` environment variable is set, which turns on
    /// the canonical virtual-time schedule for every run (how CI runs the
    /// integration suite deterministically without touching each test).
    pub sched: SchedMode,
    /// Conservative parallel simulation: partition the hosts across N OS
    /// worker threads, each running ahead to a safety horizon derived from
    /// the cost model's latency floor (see `sim_core::sched` and DESIGN.md
    /// §14). Requires the canonical virtual-time schedule (`sched` on with
    /// the default policy); the exploration policies (Random/PCT/Replay)
    /// reject it at scheduler construction, and with `sched` off it is
    /// ignored (free-threaded runs are already multi-core). The observable
    /// schedule is byte-identical to the sequential one at the same seed.
    /// Defaults to `None`, or to `MILLIPAGE_SIM_WORKERS` workers when that
    /// environment variable is set to an integer ≥ 2.
    pub parallel: Option<ParallelConfig>,
    /// Per-minipage sharing diagnostics (see [`crate::diag`]): heat
    /// counters on the fault and invalidation paths, merged into
    /// [`RunReport::diag`] with ranked detector findings. Off by default —
    /// a disabled sink costs one branch per instrumentation point and
    /// leaves every existing report byte-for-byte unchanged.
    pub diag: bool,
    /// Online adaptation (see [`crate::adapt`]): act on the diagnostics
    /// at barrier quiesce points — split falsely shared minipages, merge
    /// ping-ponging siblings, migrate homes to their dominant writer.
    /// Disabled by default; most actions also need `diag: true` to have
    /// anything to plan from.
    pub adapt: crate::adapt::AdaptConfig,
    /// Deliberately re-introduces the fixed PR-3 stale-reinstall bug (a
    /// home host installing its own serve-time snapshot over concurrently
    /// applied release diffs). Exists solely so the schedule-exploration
    /// harness can demonstrate it catches and shrinks the bug; never set
    /// this outside those tests.
    #[doc(hidden)]
    pub bug_stale_reinstall: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            hosts: 8,
            views: 32,
            pages: 4096, // 16 MB shared.
            cost: CostModel::default(),
            alloc_mode: AllocMode::FINE,
            threads_per_host: 1,
            consistency: Consistency::SequentialSwMr,
            home_policy: HomePolicyKind::Centralized,
            manager: 0,
            seed: 0x4D69_6C6C_6950_6167, // "MilliPag"
            tracer: Tracer::disabled(),
            faults: WireFaults::disabled(),
            request_timeout: None,
            sched: if std::env::var_os("MILLIPAGE_DET_SCHED").is_some() {
                SchedMode::deterministic()
            } else {
                SchedMode::off()
            },
            parallel: std::env::var("MILLIPAGE_SIM_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&w| w >= 2)
                .map(ParallelConfig::workers),
            diag: false,
            adapt: crate::adapt::AdaptConfig::default(),
            bug_stale_reinstall: false,
        }
    }
}

/// Pre-run allocation context handed to the `setup` closure.
///
/// Setup runs logically on the manager at virtual time zero, before the
/// application threads start; its writes are free (they model the program
/// initializing data before the timed region).
pub struct SetupCtx<'a> {
    mgr: &'a mut ManagerShard,
}

impl<'a> SetupCtx<'a> {
    /// Wraps the manager shard for a pre-run setup phase (used by every
    /// backend's assembly code).
    pub(crate) fn new(mgr: &'a mut ManagerShard) -> Self {
        Self { mgr }
    }

    /// Allocates `bytes` of shared memory. Setup allocations are issued
    /// by the manager host, so first-touch homes them there.
    pub fn alloc_bytes(&mut self, bytes: usize) -> VAddr {
        let me = self.mgr.me();
        self.mgr.do_alloc(bytes, me, 0)
    }

    /// Allocates a shared vector of `len` elements.
    pub fn alloc_vec<T: Pod>(&mut self, len: usize) -> SharedVec<T> {
        SharedVec::from_raw(self.alloc_bytes(len * T::SIZE), len)
    }

    /// Allocates and initializes a shared vector.
    pub fn alloc_vec_init<T: Pod>(&mut self, vals: &[T]) -> SharedVec<T> {
        let sv = self.alloc_vec(vals.len());
        self.write_vec(&sv, 0, vals);
        sv
    }

    /// Allocates a single shared cell.
    pub fn alloc_cell<T: Pod>(&mut self) -> SharedCell<T> {
        SharedCell::from_raw(self.alloc_bytes(T::SIZE))
    }

    /// Allocates and initializes a shared cell.
    pub fn alloc_cell_init<T: Pod>(&mut self, v: T) -> SharedCell<T> {
        let c = self.alloc_cell();
        self.write_cell(&c, v);
        c
    }

    /// Ends the current allocation chunk (§4.4): the next allocation opens
    /// a fresh minipage even if its size matches.
    pub fn finish_chunk(&mut self) {
        self.mgr.finish_chunk();
    }

    /// Starts the next allocation on a fresh physical page (separating
    /// logically distinct structures, like distinct `malloc` arenas).
    pub fn new_page(&mut self) {
        self.mgr.retire_page();
    }

    /// Initializes `vals` at element `start` (free, pre-run). The bytes
    /// land in the home host's copy of every minipage the range crosses.
    pub fn write_vec<T: Pod>(&mut self, sv: &SharedVec<T>, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        let (addr, _) = sv.range_bytes(start, start + vals.len());
        let bytes = encode_slice(vals);
        self.mgr.init_write(addr, &bytes);
    }

    /// Initializes the cell (free, pre-run).
    pub fn write_cell<T: Pod>(&mut self, c: &SharedCell<T>, v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.to_bytes(&mut buf);
        self.mgr.init_write(c.addr(), &buf);
    }
}

/// Runs a parallel application on a simulated Millipage cluster.
///
/// `setup` allocates and initializes shared structures (once, pre-run) and
/// returns the handle bundle every host receives; `app` is the per-host
/// program. Returns the assembled [`RunReport`].
///
/// # Panics
///
/// Panics if the configuration is out of range or an application thread
/// panics.
pub fn run<T, F>(cfg: ClusterConfig, setup: impl FnOnce(&mut SetupCtx) -> T, app: F) -> RunReport
where
    T: Send + Sync,
    F: Fn(&mut HostCtx, &T) + Send + Sync,
{
    assert!(
        cfg.hosts >= 1 && cfg.hosts <= HostId::MAX_HOSTS,
        "host count {} out of range",
        cfg.hosts
    );
    assert!(
        cfg.threads_per_host >= 1,
        "need at least one application thread"
    );
    assert!(
        cfg.manager < cfg.hosts,
        "manager host {} out of range",
        cfg.manager
    );
    let geo = Geometry::new(cfg.pages, cfg.views);
    // One slot per application-view vpage bounds the minipage ids any
    // allocation order can produce, so the table never overflows.
    let diag_table = cfg
        .diag
        .then(|| DiagTable::with_slots(cfg.hosts, geo.priv_view() * geo.pages()));
    let diag_sink = diag_table
        .as_ref()
        .map(|t| DiagSink::new(Arc::clone(t)))
        .unwrap_or_default();
    let states: Vec<Arc<HostState>> = (0..cfg.hosts)
        .map(|h| {
            HostState::new(
                HostId(h as u16),
                AddressSpace::new(geo.clone()),
                diag_sink.clone(),
            )
        })
        .collect();
    let (net, endpoints) =
        Network::<Pmsg>::with_faults(cfg.hosts, cfg.cost.clone(), cfg.faults.to_plane());
    let manager_id = HostId(cfg.manager as u16);
    // Deterministic mode replaces wall-clock backstops outright: virtual
    // threads legitimately sit parked for unbounded real time while the
    // schedule runs elsewhere, and a schedule nobody can advance is
    // detected as a deadlock instead of timed out.
    let request_timeout = if cfg.sched.is_on() {
        None
    } else {
        cfg.request_timeout.or_else(|| {
            cfg.faults
                .is_active()
                .then(|| std::time::Duration::from_secs(30))
        })
    };
    // Slot order (servers, then application threads, in host order) is
    // the decision-log numbering; keep it stable across runs.
    let sched = {
        let mut keys = Vec::with_capacity(cfg.hosts * (1 + cfg.threads_per_host));
        for h in 0..cfg.hosts {
            keys.push(ThreadKey::server(HostId(h as u16)));
        }
        for h in 0..cfg.hosts {
            for t in 0..cfg.threads_per_host {
                keys.push(ThreadKey::app(HostId(h as u16), t as u16));
            }
        }
        match &cfg.parallel {
            // The exploration policies (Random/PCT/Replay) are inherently
            // sequential — their whole point is to own the global
            // interleaving — so a parallel request (e.g. the
            // MILLIPAGE_SIM_WORKERS environment default) quietly falls
            // back to the sequential scheduler for them rather than
            // poisoning every exploration run.
            Some(p) if cfg.sched.is_on() && cfg.sched.is_virtual_time() => {
                let map = p
                    .partition_map
                    .clone()
                    .unwrap_or_else(|| ParallelConfig::default_map(cfg.hosts, p.workers));
                let lookahead = p.lookahead.unwrap_or_else(|| cfg.cost.min_remote_latency());
                Scheduler::new_parallel(&cfg.sched, keys, map, p.workers, lookahead)
            }
            _ => Scheduler::new(&cfg.sched, keys),
        }
    };
    net.attach_scheduler(&sched);
    let home = Arc::new(HomeTable::new(
        cfg.home_policy,
        cfg.hosts,
        manager_id,
        geo.clone(),
    ));
    // Every host runs a manager shard; the manager host's shard also
    // carries the shared allocator and the synchronization services. The
    // shards see the cluster's memory only through the backend trait.
    let cluster_mem: Arc<dyn crate::backend::ClusterMemory> =
        Arc::new(crate::backend::SimClusterMemory::new(states.clone()));
    let mut shards: Vec<Option<ManagerShard>> = (0..cfg.hosts)
        .map(|h| {
            let allocator = (h == cfg.manager).then(|| Allocator::new(geo.clone(), cfg.alloc_mode));
            Some(ManagerShard::new(
                HostId(h as u16),
                cfg.hosts,
                cfg.hosts * cfg.threads_per_host,
                cfg.cost.clone(),
                cfg.consistency,
                allocator,
                Arc::clone(&home),
                Arc::clone(&cluster_mem),
                cfg.tracer.recorder(HostId(h as u16), Track::Shard),
                diag_sink.clone(),
                cfg.adapt.clone(),
            ))
        })
        .collect();
    let shared = {
        let mut sctx = SetupCtx {
            mgr: shards[cfg.manager].as_mut().expect("shard present"),
        };
        setup(&mut sctx)
    };

    let mut rng = SplitMix64::new(cfg.seed);
    let shared_ref = &shared;
    let app_ref = &app;

    let states_ref = &states;
    let (host_reports, outcomes, app_failures) = std::thread::scope(|scope| {
        let mut server_handles = Vec::with_capacity(cfg.hosts);
        for (h, ep) in endpoints.into_iter().enumerate() {
            let state = Arc::clone(&states[h]);
            let cost = cfg.cost.clone();
            let timeline = ServerTimeline::new(cfg.cost.clone(), rng.fork(h as u64));
            let shard = shards[h].take().expect("shard present");
            let consistency = cfg.consistency;
            // The server's own sends (serves, replies, fan-outs) get
            // recorded at the endpoint; handler-level events go through the
            // loop's recorder.
            ep.attach_tracer(cfg.tracer.recorder(HostId(h as u16), Track::Server));
            let rec = cfg.tracer.recorder(HostId(h as u16), Track::Server);
            let sched = sched.clone();
            let bug = cfg.bug_stale_reinstall;
            server_handles.push(
                std::thread::Builder::new()
                    .name(format!("mv-server-{h}"))
                    .spawn_scoped(scope, move || {
                        // Attach on the spawned thread: it parks until the
                        // whole thread set is registered and the policy
                        // picks it.
                        let st = sched.attach(ThreadKey::server(HostId(h as u16)));
                        server_loop(ep, state, cost, consistency, timeline, shard, rec, st, bug)
                    })
                    .expect("spawn server thread"),
            );
        }
        let mut app_handles = Vec::with_capacity(cfg.hosts * cfg.threads_per_host);
        for h in 0..cfg.hosts {
            for t in 0..cfg.threads_per_host {
                // Event ids are correlation keys, not a global order: give
                // every application thread its own disjoint range (2^40
                // ids each) so allocation never crosses threads. A shared
                // counter would interleave differently under partitioned
                // execution and leak the partitioning into message and
                // trace bytes.
                let events = Arc::new(AtomicU64::new(
                    ((h * cfg.threads_per_host + t + 1) as u64) << 40,
                ));
                let mut ctx = HostCtx {
                    host: HostId(h as u16),
                    hosts: cfg.hosts,
                    thread: t,
                    home: Arc::clone(&home),
                    state: Arc::clone(&states[h]),
                    net: net.clone(),
                    cost: cfg.cost.clone(),
                    clock: Clock::new(),
                    breakdown: TimeBreakdown::new(),
                    events,
                    pending_acks: Vec::new(),
                    consistency: cfg.consistency,
                    timed_from: 0,
                    breakdown_mark: TimeBreakdown::new(),
                    trace: cfg.tracer.recorder(HostId(h as u16), Track::App(t as u16)),
                    fault_hist: LogHistogram::new(),
                    request_timeout,
                    sched: SchedThread::disabled(),
                    tlb: sim_mem::AccessTlb::new(),
                };
                let sched = sched.clone();
                let builder = std::thread::Builder::new().name(format!("mv-host-{h}.{t}"));
                app_handles.push(
                    builder
                        .spawn_scoped(scope, move || {
                            ctx.sched = sched.attach(ThreadKey::app(HostId(h as u16), t as u16));
                            // Catch the unwind here so a failed thread can cancel
                            // its siblings' pending waits *before* anyone tries to
                            // join: joining a thread that is parked on a waiter
                            // nobody will ever fulfill would hang the cluster (and
                            // pre-fault-plane, did).
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    app_ref(&mut ctx, shared_ref);
                                }));
                            let failure = match result {
                                Ok(()) => None,
                                Err(payload) => {
                                    for st in states_ref {
                                        st.cancel_pending();
                                    }
                                    // Cancelled waiters are scheduler-visible state:
                                    // blocked siblings must re-check and unwind.
                                    ctx.sched_action();
                                    Some(payload)
                                }
                            };
                            (
                                HostReport {
                                    host: ctx.host,
                                    thread: t,
                                    end_vt: ctx.now(),
                                    breakdown: *ctx.breakdown(),
                                    read_faults: 0, // Filled from host counters below.
                                    write_faults: 0,
                                    fault_latency: std::mem::take(&mut ctx.fault_hist),
                                },
                                failure,
                            )
                        })
                        .expect("spawn app thread"),
                );
            }
        }
        let mut app_failures: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
        let host_reports: Vec<HostReport> = app_handles
            .into_iter()
            .map(|h| {
                let (rep, failure) = h.join().expect("application thread panicked");
                app_failures.extend(failure);
                rep
            })
            .collect();
        // All application work is done (or cancelled); stop the servers —
        // unconditionally, so a failed run still tears down cleanly. FIFO
        // per sender guarantees the Shutdown trails every earlier
        // application message. In deterministic mode the (unscheduled)
        // main thread first waits for the scheduled world to quiesce, so
        // the shutdown injection point — and with it the whole run,
        // teardown included — is a pure function of the schedule.
        sched.quiesce_then(|| {
            for h in 0..cfg.hosts {
                net.send(
                    manager_id,
                    HostId(h as u16),
                    Pmsg::new(MsgKind::Shutdown, manager_id, 0),
                    0,
                    0,
                );
            }
        });
        let outcomes: Vec<ServerOutcome> = server_handles
            .into_iter()
            .map(|h| h.join().expect("server thread panicked"))
            .collect();
        (host_reports, outcomes, app_failures)
    });

    let mut protocol_errors: Vec<String> = Vec::new();
    let mut server_queue_delay = LogHistogram::new();
    let mut shards: Vec<ManagerShard> = outcomes
        .into_iter()
        .map(|o| {
            server_queue_delay.merge(&o.queue_delay);
            protocol_errors.extend(o.errors);
            o.shard
        })
        .collect();
    // Split the failures: typed protocol errors are reported on the run,
    // anything else is a genuine application bug and resumes unwinding now
    // that every server has shut down cleanly.
    let mut hard_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for payload in app_failures {
        match payload.downcast::<ProtocolError>() {
            Ok(e) => protocol_errors.push(e.to_string()),
            Err(other) => hard_panic = Some(other),
        }
    }
    if let Some(p) = hard_panic {
        std::panic::resume_unwind(p);
    }
    shards.sort_by_key(|s| s.me().index());

    let mut per_host = host_reports;
    let mut fault_latency = LogHistogram::new();
    for rep in &per_host {
        fault_latency.merge(&rep.fault_latency);
    }
    let mut breakdown = TimeBreakdown::new();
    let mut read_faults = 0;
    let mut write_faults = 0;
    let mut prefetches = 0;
    let mut invalidations = 0;
    for st in &states {
        read_faults += st.counters.read_faults.get();
        write_faults += st.counters.write_faults.get();
        prefetches += st.counters.prefetch_requests.get();
        invalidations += st.counters.invalidations_received.get();
    }
    for rep in per_host.iter_mut() {
        // Fault counters are per host (threads share the fault path).
        let st = &states[rep.host.index()];
        rep.read_faults = st.counters.read_faults.get();
        rep.write_faults = st.counters.write_faults.get();
        breakdown.merge(&rep.breakdown);
    }
    // Manager-side counters accumulate wherever the minipage's home shard
    // ran; sum them (barriers and locks only ever tick on the manager
    // host, directory counters on every home).
    let mut mstats = ManagerStats::default();
    let mut competing = 0u64;
    let mut inv_round_trip = LogHistogram::new();
    let mut shard_reports = Vec::with_capacity(shards.len());
    for s in &shards {
        inv_round_trip.merge(s.inv_round_trip());
        let st = s.stats();
        mstats.barriers += st.barriers;
        mstats.lock_acquires += st.lock_acquires;
        mstats.invalidations_sent += st.invalidations_sent;
        mstats.pushes += st.pushes;
        mstats.stale_pushes += st.stale_pushes;
        mstats.rc_diffs += st.rc_diffs;
        competing += s.competing_requests();
        shard_reports.push(ShardStats {
            host: s.me(),
            competing_requests: s.competing_requests(),
            invalidations_sent: st.invalidations_sent,
            rc_diffs: st.rc_diffs,
            directory_entries: s.directory().len(),
        });
    }
    let net_faults = net.fault_active().then(|| {
        let ns = net.stats();
        NetFaultStats {
            drops: ns.pkts_dropped.get(),
            retransmits: ns.retransmits.get(),
            dups_delivered: ns.dups_delivered.get(),
            dups_suppressed: ns.dups_suppressed.get(),
            reorders: ns.reorders.get(),
            expired: ns.expired.get(),
            delay: net.fault_delay(),
        }
    });
    let minipages = home.mpt().snapshot();
    let mut violations = match cfg.consistency {
        Consistency::SequentialSwMr => check_coherence(&minipages, &geo, &states),
        Consistency::HomeEagerRc => check_rc_consistency(&minipages, &geo, &states, &home),
    };
    violations.extend(check_directories(&shards, cfg.consistency));
    // Any adaptation action must leave the MPT geometry sound: active
    // minipages disjoint, no physical byte orphaned, every retired vpage
    // redirecting to the active owner of its bytes.
    if home.mpt().adapt_gen() != 0 {
        violations.extend(home.mpt().geometry_violations(&geo));
    }
    let mut adapt_report = crate::adapt::AdaptReport::default();
    for s in &shards {
        adapt_report.absorb(s.adapt_report().clone());
    }
    let adapt = cfg.adapt.enabled.then_some(adapt_report);
    let alloc = shards[cfg.manager].alloc_stats();
    // The shards carry the last live trace recorders; dropping them
    // flushes their rings, so the per-host dropped-event counts read
    // below are final.
    drop(shards);
    let trace_dropped = cfg.tracer.dropped_by_host();
    let diag = diag_table.map(|t| {
        let links = net
            .link_traffic()
            .into_iter()
            .map(|(from, to, messages, bytes)| LinkStat {
                from,
                to,
                messages,
                bytes,
            })
            .collect();
        build_report(&t, &minipages, &geo, &home, links)
    });
    RunReport {
        hosts: cfg.hosts,
        virtual_time: per_host.iter().map(|r| r.end_vt).max().unwrap_or(0),
        breakdown,
        read_faults,
        write_faults,
        prefetches,
        invalidations,
        competing_requests: competing,
        barriers: mstats.barriers,
        lock_acquires: mstats.lock_acquires,
        pushes: mstats.pushes,
        messages: net.stats().messages.get(),
        payload_bytes: net.stats().payload_bytes.get(),
        alloc,
        rc_diffs: mstats.rc_diffs,
        policy: home.policy_name(),
        shards: shard_reports,
        coherence_violations: violations,
        fault_latency,
        server_queue_delay,
        inv_round_trip,
        protocol_errors,
        net_faults,
        trace_dropped,
        diag,
        adapt,
        per_host,
    }
}
