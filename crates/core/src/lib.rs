//! Millipage — a thin-layer fine-grain page-based DSM (§3 of the paper).
//!
//! Millipage implements **Sequential Consistency** through the
//! Single-Writer/Multiple-Readers protocol of Figure 3: at any point in
//! time, for any minipage, there are either read copies or a single
//! writable copy. The DSM layer is deliberately *thin*: no page twinning,
//! no diffs, no code instrumentation, no queuing at non-manager hosts —
//! just a simple protocol handling access faults, made possible by
//! MultiView's per-minipage protection.
//!
//! The crate runs a whole simulated cluster inside one process:
//!
//! * [`ClusterConfig`] + [`run`] spawn one DSM server thread and one
//!   application thread per simulated host;
//! * application code receives a [`HostCtx`] and uses the malloc-like
//!   allocation API, typed [`SharedVec`]/[`SharedCell`] accessors,
//!   [`HostCtx::barrier`], [`HostCtx::lock`]/[`HostCtx::unlock`],
//!   [`HostCtx::prefetch_vec`] and [`HostCtx::push_cell`];
//! * every virtual nanosecond is attributed to a Figure 6 category, and a
//!   [`RunReport`] collects the counters every experiment needs.
//!
//! Extensions from §5 of the paper: run-length diffs ([`diff`]) and a
//! home-based eager release-consistency mode ([`hlrc`]) used for the
//! SC-vs-relaxed ablation.

pub mod adapt;
pub mod audit;
mod backend;
mod cluster;
pub mod diag;
pub mod diff;
mod directory;
mod dsm;
mod error;
pub mod explore;
mod faults;
pub mod hlrc;
mod home;
mod host;
#[cfg(target_os = "linux")]
pub mod hostrun;
mod manager;
mod msg;
mod server;
mod shared;
mod stats;

pub use adapt::{AdaptAction, AdaptConfig, AdaptEvent, AdaptReport};
pub use backend::{AccessKind, MemFault, MemoryBackend, PageProt, ProtoClock, Transport};
pub use cluster::{run, ClusterConfig, SetupCtx};
pub use diag::{trace_counts, DiagReport, DiagSink, DiagTable, Finding, LinkStat, MinipageDiag};
pub use directory::{Directory, DirectoryEntry};
pub use dsm::Dsm;
pub use error::ProtocolError;
pub use faults::{WireFault, WireFaultKind, WireFaults};
pub use hlrc::Consistency;
pub use home::{Centralized, FirstTouch, HomePolicy, HomePolicyKind, HomeTable, Interleaved};
pub use host::HostCtx;
#[cfg(target_os = "linux")]
pub use hostrun::{run_host, HostDsmCtx, HostRunConfig, HostRunReport};
pub use manager::{ManagerShard, ManagerStats};
pub use msg::{MsgKind, Pmsg};
pub use shared::{Pod, SharedCell, SharedVec};
pub use stats::{HostReport, NetFaultStats, RunReport, ShardStats};

pub use audit::{audit, AuditMode};

pub use explore::{
    explore, explore_adapt_points, replay_repro, AdaptSweepOutcome, ExploreOpts, ExploreOutcome,
    MinimizedRepro,
};
pub use sim_core::sched::{ParallelConfig, SchedMode, SchedPolicy};

// Re-exports the applications and harnesses keep reaching for.
pub use multiview::{AllocMode, AllocStats};
pub use sim_core::{
    Category, ChromeTrace, CostModel, HostId, LogHistogram, Ns, TimeBreakdown, TraceEvent,
    TraceKind, TraceLog, Tracer, Track, VAddr,
};
