//! The manager's directory: per-minipage copysets and service windows.
//!
//! §3.3: the manager "is in charge of maintaining the directory information
//! of minipage and minipage copy locations ... Requests which arrive while
//! an earlier request to the same minipage is still in process are queued
//! in the manager."

use crate::msg::Pmsg;
use sim_core::{HostId, Ns};
use std::collections::{HashMap, VecDeque};

/// Directory state of one minipage.
#[derive(Debug, Clone, Default)]
pub struct DirectoryEntry {
    /// Bitmask of hosts holding a copy (readers, or the single writer).
    pub copyset: u64,
    /// The host holding the writable copy, if any.
    pub owner: Option<HostId>,
    /// A request for this minipage is being serviced; newcomers queue.
    pub in_service: bool,
    /// Requests queued behind the service window ("competing requests",
    /// the Figure 7 metric).
    pub queue: VecDeque<Pmsg>,
    /// Outstanding invalidation acknowledgements for a pending write.
    pub inv_pending: u32,
    /// Virtual time the pending invalidation round was fanned out
    /// (measures the invalidation round-trip when the last reply lands).
    pub inv_sent_vt: Ns,
    /// The write request waiting for the invalidations to complete.
    pub pending_write: Option<Pmsg>,
}

impl DirectoryEntry {
    /// Entry for a freshly allocated minipage whose data sits at `home`
    /// with a writable copy.
    pub fn fresh(home: HostId) -> Self {
        Self {
            copyset: 1u64 << home.index(),
            owner: Some(home),
            ..Self::default()
        }
    }

    /// Hosts in the copyset.
    pub fn holders(&self) -> impl Iterator<Item = HostId> + '_ {
        let mask = self.copyset;
        (0..64u16).filter_map(move |i| (mask >> i & 1 == 1).then_some(HostId(i)))
    }

    /// Number of copies.
    pub fn copies(&self) -> u32 {
        self.copyset.count_ones()
    }

    /// Whether `h` holds a copy.
    pub fn holds(&self, h: HostId) -> bool {
        self.copyset >> h.index() & 1 == 1
    }

    /// Adds `h` to the copyset.
    pub fn add(&mut self, h: HostId) {
        self.copyset |= 1 << h.index();
    }

    /// Removes `h` from the copyset.
    pub fn remove(&mut self, h: HostId) {
        self.copyset &= !(1 << h.index());
    }

    /// Figure 3's `find_replica`: the preferred source for a transfer —
    /// the writer if one exists, otherwise the lowest-numbered reader.
    pub fn find_replica(&self) -> Option<HostId> {
        if let Some(o) = self.owner {
            return Some(o);
        }
        (self.copyset != 0).then(|| HostId(self.copyset.trailing_zeros() as u16))
    }
}

/// One manager shard's slice of the directory: only the minipages homed
/// at this host ever get entries here.
///
/// Entries are sparse (the shard of host *h* never sees ids homed
/// elsewhere) and materialize lazily on first touch as
/// [`DirectoryEntry::fresh`]`(me)` — exactly the state every minipage has
/// at allocation: one writable copy sitting at its home. Lazy creation
/// keeps allocation local: the allocator host never has to reach into
/// remote shards to pre-register entries.
#[derive(Debug)]
pub struct Directory {
    me: HostId,
    entries: HashMap<usize, DirectoryEntry>,
    competing: u64,
}

impl Directory {
    /// An empty directory slice for the shard running on `me`.
    pub fn new(me: HostId) -> Self {
        Self {
            me,
            entries: HashMap::new(),
            competing: 0,
        }
    }

    /// Entry accessor; materializes the fresh at-home entry on first
    /// touch.
    pub fn entry(&mut self, id: usize) -> &mut DirectoryEntry {
        let me = self.me;
        self.entries
            .entry(id)
            .or_insert_with(|| DirectoryEntry::fresh(me))
    }

    /// Read-only entry accessor; `None` if the minipage was never touched
    /// (it is still in its fresh at-home state).
    pub fn entry_ref(&self, id: usize) -> Option<&DirectoryEntry> {
        self.entries.get(&id)
    }

    /// Number of materialized entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry has materialized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the materialized entries (post-run invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &DirectoryEntry)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Opens the service window for `id`; if one is already open, queues
    /// the request, bumps the competing-request counter (Figure 7), and
    /// returns `false`.
    pub fn begin_service(&mut self, id: usize, pending: Pmsg) -> bool {
        let e = self.entry(id);
        if e.in_service {
            e.queue.push_back(pending);
            self.competing += 1;
            false
        } else {
            e.in_service = true;
            true
        }
    }

    /// Closes the service window for `id` and pops the next queued request
    /// (which the manager must then process).
    pub fn end_service(&mut self, id: usize) -> Option<Pmsg> {
        let e = self.entry(id);
        e.in_service = false;
        e.queue.pop_front()
    }

    /// Drops the entry for `id` (adaptation: the minipage was retired or
    /// re-homed, so this shard's slice no longer tracks it). The next
    /// touch — here for a split child, at the new home after a migration
    /// — rematerializes the fresh at-home state.
    pub fn forget(&mut self, id: usize) -> Option<DirectoryEntry> {
        self.entries.remove(&id)
    }

    /// Competing requests observed at this shard (Figure 7's metric).
    pub fn competing_requests(&self) -> u64 {
        self.competing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;

    fn req(from: u16) -> Pmsg {
        Pmsg::new(MsgKind::ReadRequest, HostId(from), from as u64)
    }

    #[test]
    fn fresh_entry_has_home_as_writer() {
        let e = DirectoryEntry::fresh(HostId(0));
        assert_eq!(e.copies(), 1);
        assert!(e.holds(HostId(0)));
        assert_eq!(e.owner, Some(HostId(0)));
        assert_eq!(e.find_replica(), Some(HostId(0)));
    }

    #[test]
    fn copyset_add_remove_holders() {
        let mut e = DirectoryEntry::fresh(HostId(2));
        e.add(HostId(5));
        e.add(HostId(7));
        assert_eq!(e.copies(), 3);
        let hs: Vec<_> = e.holders().collect();
        assert_eq!(hs, vec![HostId(2), HostId(5), HostId(7)]);
        e.remove(HostId(5));
        assert!(!e.holds(HostId(5)));
        assert_eq!(e.copies(), 2);
    }

    #[test]
    fn find_replica_prefers_owner() {
        let mut e = DirectoryEntry::fresh(HostId(3));
        e.add(HostId(0));
        e.owner = Some(HostId(3));
        assert_eq!(e.find_replica(), Some(HostId(3)));
        e.owner = None;
        assert_eq!(e.find_replica(), Some(HostId(0)));
        e.copyset = 0;
        assert_eq!(e.find_replica(), None);
    }

    #[test]
    fn service_window_queues_and_counts_competing() {
        let mut d = Directory::new(HostId(0));
        assert!(d.begin_service(0, req(1)));
        assert!(!d.begin_service(0, req(2)));
        assert!(!d.begin_service(0, req(3)));
        assert_eq!(d.competing_requests(), 2);
        let next = d.end_service(0).unwrap();
        assert_eq!(next.from, HostId(2));
        // end_service closed the window; the manager reopens it when it
        // processes `next`.
        assert!(d.begin_service(0, req(4)));
        let next2 = d.end_service(0).unwrap();
        assert_eq!(next2.from, HostId(3));
        assert!(d.end_service(0).is_none());
    }

    #[test]
    fn entries_materialize_lazily_at_home() {
        let mut d = Directory::new(HostId(1));
        assert!(d.is_empty());
        assert!(d.entry_ref(3).is_none());
        // First touch materializes the fresh at-home state.
        assert!(d.entry(3).holds(HostId(1)));
        assert_eq!(d.entry(3).owner, Some(HostId(1)));
        assert_eq!(d.len(), 1);
        assert!(d.entry_ref(3).is_some());
        // Ids are sparse: touching 7 does not drag 4..=6 into existence.
        d.entry(7);
        assert_eq!(d.len(), 2);
        let mut ids: Vec<_> = d.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 7]);
    }
}
