//! Typed handles onto shared memory.
//!
//! §3.2: "Allocating from the shared memory is performed via a malloc-like
//! API. The returned pointer ... can then be used in the usual way." The
//! simulation cannot hand out raw pointers (access must be checked the way
//! the MMU would check it), so applications hold [`SharedVec`] /
//! [`SharedCell`] handles — plain `Copy` values wrapping a shared virtual
//! address — and access them through [`HostCtx`](crate::HostCtx) methods.

use sim_mem::VAddr;
use std::marker::PhantomData;

/// Element types storable in shared memory.
///
/// Values are serialized little-endian into the shared byte store, so the
/// trait is safe to implement: no transmutation occurs. Implementations
/// exist for the primitive integer and floating-point types.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Decodes a value from exactly [`SIZE`](Pod::SIZE) bytes.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != SIZE`.
    fn from_bytes(b: &[u8]) -> Self;

    /// Encodes the value into exactly [`SIZE`](Pod::SIZE) bytes.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != SIZE`.
    fn to_bytes(self, out: &mut [u8]);
}

macro_rules! impl_pod {
    ($($t:ty),* $(,)?) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn from_bytes(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("exact size"))
            }

            fn to_bytes(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Decodes a packed little-endian array.
pub(crate) fn decode_slice<T: Pod>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(bytes.len() % T::SIZE, 0, "partial element");
    bytes.chunks_exact(T::SIZE).map(T::from_bytes).collect()
}

/// Encodes a value slice into packed little-endian bytes.
pub(crate) fn encode_slice<T: Pod>(vals: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len() * T::SIZE];
    for (v, chunk) in vals.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        v.to_bytes(chunk);
    }
    out
}

/// A shared array of `n` elements of `T`, allocated with one `malloc` call
/// (and therefore living in one minipage unless it exceeds a page).
#[derive(Debug)]
pub struct SharedVec<T> {
    base: VAddr,
    len: usize,
    _elem: PhantomData<fn() -> T>,
}

// Manual impls: handles are plain addresses, independent of `T`'s traits.
impl<T> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedVec<T> {}

impl<T: Pod> SharedVec<T> {
    /// Wraps a base address returned by the allocator. Public so hosts
    /// can exchange handles through shared memory as plain addresses
    /// (the DSM equivalent of passing a pointer) and rebuild them on the
    /// receiving side.
    pub fn from_raw(base: VAddr, len: usize) -> Self {
        Self {
            base,
            len,
            _elem: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address (for [`HostCtx::prefetch_vec`](crate::HostCtx::prefetch_vec)).
    pub fn base(&self) -> VAddr {
        self.base
    }

    /// Total bytes covered.
    pub fn byte_len(&self) -> usize {
        self.len * T::SIZE
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn addr_of(&self, i: usize) -> VAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.base.add(i * T::SIZE)
    }

    /// Address and byte length of the subrange `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn range_bytes(&self, start: usize, end: usize) -> (VAddr, usize) {
        assert!(start <= end && end <= self.len, "range {start}..{end} bad");
        (self.base.add(start * T::SIZE), (end - start) * T::SIZE)
    }
}

/// A single shared value of `T` (a one-element [`SharedVec`]).
#[derive(Debug)]
pub struct SharedCell<T> {
    addr: VAddr,
    _elem: PhantomData<fn() -> T>,
}

impl<T> Clone for SharedCell<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedCell<T> {}

impl<T: Pod> SharedCell<T> {
    /// Wraps an allocator-provided address. Public for the same
    /// handle-exchange reason as [`SharedVec::from_raw`].
    pub fn from_raw(addr: VAddr) -> Self {
        Self {
            addr,
            _elem: PhantomData,
        }
    }

    /// The cell's address.
    pub fn addr(&self) -> VAddr {
        self.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = [0u8; 8];
        42.5f64.to_bytes(&mut buf);
        assert_eq!(f64::from_bytes(&buf), 42.5);
        let mut b4 = [0u8; 4];
        (-7i32).to_bytes(&mut b4);
        assert_eq!(i32::from_bytes(&b4), -7);
    }

    #[test]
    fn slice_encode_decode_roundtrip() {
        let xs = [1.5f32, -2.25, 1e10, 0.0];
        let bytes = encode_slice(&xs);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_slice::<f32>(&bytes), xs);
    }

    #[test]
    fn shared_vec_addressing() {
        let sv = SharedVec::<f64>::from_raw(VAddr(0x1000), 10);
        assert_eq!(sv.len(), 10);
        assert_eq!(sv.byte_len(), 80);
        assert_eq!(sv.addr_of(0), VAddr(0x1000));
        assert_eq!(sv.addr_of(3), VAddr(0x1018));
        let (a, l) = sv.range_bytes(2, 5);
        assert_eq!(a, VAddr(0x1010));
        assert_eq!(l, 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_vec_bounds_checked() {
        let sv = SharedVec::<u32>::from_raw(VAddr(0x1000), 4);
        let _ = sv.addr_of(4);
    }

    #[test]
    fn handles_are_copy() {
        let sv = SharedVec::<u8>::from_raw(VAddr(0x10), 1);
        let sv2 = sv;
        assert_eq!(sv.base(), sv2.base());
        let c = SharedCell::<i64>::from_raw(VAddr(0x20));
        let c2 = c;
        assert_eq!(c.addr(), c2.addr());
    }
}
