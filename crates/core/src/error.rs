//! Typed protocol failures.
//!
//! Pre-fault-plane, `core::{server,manager}` assumed FM's reliable wire and
//! enforced every protocol invariant with `unwrap()`/`expect()`: a lost
//! peer, an exhausted retransmit budget, or a malformed reply killed the
//! DSM server thread outright, and every application thread blocked on it
//! hung forever. [`ProtocolError`] replaces those aborts: handlers degrade
//! by recording the error (surfaced on `RunReport::protocol_errors`),
//! nacking the requester where one is blocked, and cancelling the
//! cluster's outstanding waiters so a failed run terminates cleanly.

use sim_core::HostId;

/// A protocol-level failure that is reported instead of panicking the
/// server thread or hanging the cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A request outlived its retransmit budget (or the configured
    /// wall-clock backstop): the wire gave up on the message.
    Timeout {
        /// Host that gave up.
        host: HostId,
        /// What was being waited for / sent.
        what: &'static str,
        /// Protocol event id, or 0.
        event: u64,
    },
    /// A peer's endpoint is gone; the message can never be handled.
    Disconnected {
        /// Host that observed the dead peer.
        host: HostId,
    },
    /// A reply arrived for which no waiter is registered (stale or
    /// duplicated beyond what the dedup layer can pair up).
    NoWaiter {
        /// Host that received the orphan reply.
        host: HostId,
        /// The reply's protocol event id.
        event: u64,
        /// The reply's message kind.
        kind: &'static str,
    },
    /// A message named an address or range no minipage covers.
    BadTranslation {
        /// Host that failed the translation.
        host: HostId,
        /// The offending global address.
        addr: usize,
        /// Which lookup failed.
        what: &'static str,
    },
    /// A message body failed validation (e.g. an undecodable diff).
    Malformed {
        /// Host that rejected the message.
        host: HostId,
        /// What was wrong.
        what: &'static str,
    },
    /// The directory has no copy holder for a minipage that must have one.
    MissingReplica {
        /// Home shard host.
        host: HostId,
        /// The copyless minipage.
        minipage: u32,
    },
    /// Directory state contradicts the message (no pending write for an
    /// invalidation reply, release of an unheld lock, …).
    BadState {
        /// Host whose directory disagreed.
        host: HostId,
        /// The contradiction.
        what: &'static str,
    },
    /// A message kind arrived somewhere it cannot be handled.
    Unroutable {
        /// Receiving host.
        host: HostId,
        /// The unexpected message kind.
        kind: &'static str,
    },
    /// The peer's server reported it could not serve the request
    /// (carried back by a `Nack` message).
    Nacked {
        /// Host whose request was refused.
        host: HostId,
        /// The nacked protocol event id.
        event: u64,
    },
    /// The run failed elsewhere and this thread's pending waits were
    /// cancelled so the cluster could shut down instead of hanging.
    Cancelled {
        /// Host whose wait was cancelled.
        host: HostId,
        /// What the thread was waiting on.
        what: &'static str,
    },
    /// The deterministic scheduler found no runnable thread while this one
    /// was still blocked: the explored schedule deadlocked. Only produced
    /// in deterministic mode, where a deadlocking interleaving is a
    /// finding, not a hang.
    Deadlock {
        /// Host whose wait can never complete.
        host: HostId,
        /// What the thread was waiting on.
        what: &'static str,
    },
    /// A real-memory backend operation failed (`mmap`, `mprotect`,
    /// transport socket, fault-handler registry). Only produced by the
    /// host backend; the simulator's memory cannot fail this way.
    Backend {
        /// Host whose backend failed.
        host: HostId,
        /// The failing operation.
        what: &'static str,
        /// OS error code, or 0 when the failure is not a syscall.
        errno: i32,
    },
}

impl ProtocolError {
    /// The host the error was observed on.
    pub fn host(&self) -> HostId {
        match *self {
            ProtocolError::Timeout { host, .. }
            | ProtocolError::Disconnected { host }
            | ProtocolError::NoWaiter { host, .. }
            | ProtocolError::BadTranslation { host, .. }
            | ProtocolError::Malformed { host, .. }
            | ProtocolError::MissingReplica { host, .. }
            | ProtocolError::BadState { host, .. }
            | ProtocolError::Unroutable { host, .. }
            | ProtocolError::Nacked { host, .. }
            | ProtocolError::Cancelled { host, .. }
            | ProtocolError::Deadlock { host, .. }
            | ProtocolError::Backend { host, .. } => host,
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Timeout { host, what, event } => {
                write!(f, "{host}: {what} timed out (event {event})")
            }
            ProtocolError::Disconnected { host } => {
                write!(f, "{host}: peer endpoint disconnected")
            }
            ProtocolError::NoWaiter { host, event, kind } => {
                write!(f, "{host}: {kind} reply for event {event} has no waiter")
            }
            ProtocolError::BadTranslation { host, addr, what } => {
                write!(f, "{host}: {what} at address {addr} hits no minipage")
            }
            ProtocolError::Malformed { host, what } => {
                write!(f, "{host}: malformed message: {what}")
            }
            ProtocolError::MissingReplica { host, minipage } => {
                write!(f, "{host}: minipage {minipage} has no copy holder")
            }
            ProtocolError::BadState { host, what } => {
                write!(f, "{host}: inconsistent directory state: {what}")
            }
            ProtocolError::Unroutable { host, kind } => {
                write!(f, "{host}: {kind} cannot be handled here")
            }
            ProtocolError::Nacked { host, event } => {
                write!(
                    f,
                    "{host}: request for event {event} was nacked by the server"
                )
            }
            ProtocolError::Cancelled { host, what } => {
                write!(f, "{host}: {what} cancelled by cluster shutdown")
            }
            ProtocolError::Deadlock { host, what } => {
                write!(
                    f,
                    "{host}: {what} deadlocked under the deterministic schedule"
                )
            }
            ProtocolError::Backend { host, what, errno } => {
                if *errno != 0 {
                    let e = std::io::Error::from_raw_os_error(*errno);
                    write!(f, "{host}: backend {what} failed: {e}")
                } else {
                    write!(f, "{host}: backend {what} failed")
                }
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_host_accessor() {
        let e = ProtocolError::Timeout {
            host: HostId(3),
            what: "read fault",
            event: 42,
        };
        assert_eq!(e.host(), HostId(3));
        assert_eq!(e.to_string(), "h3: read fault timed out (event 42)");
        let e = ProtocolError::Nacked {
            host: HostId(0),
            event: 7,
        };
        assert!(e.to_string().contains("nacked"));
    }
}
