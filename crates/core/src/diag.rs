//! Sharing diagnostics: per-minipage heat statistics and pathology
//! detectors, shared by both backends.
//!
//! The ROADMAP's adaptive-granularity item (split/merge minipages online,
//! migrate homes to the dominant writer) needs per-minipage access
//! accounting before any policy can act on it. This module provides that
//! measurement layer:
//!
//! * [`DiagTable`] — a lock-free, pre-allocated, fixed-capacity table of
//!   relaxed atomics. Every counter update is a single
//!   `fetch_add`/`fetch_min`/`fetch_max` on a pre-allocated `AtomicU64`,
//!   which keeps the host backend's SIGSEGV resolver path legal: the
//!   resolver runs in signal context and may only touch async-signal-safe
//!   state (see `hostmv::fault`'s module docs). Per minipage the table
//!   keeps one *lane* per host (read/write faults, invalidations
//!   received, two bounded packed write extents) plus shard-side counters
//!   (invalidations fanned out, diff bytes, last writer, inter-host
//!   write-ownership alternations).
//! * [`DiagSink`] — the cheap handle threaded through the protocol, in
//!   the same style as the tracer: a disabled sink costs one branch per
//!   instrumentation point and leaves every report byte-for-byte what it
//!   was.
//! * [`DiagReport`] — the merged per-minipage statistics plus the ranked
//!   findings of three detectors (ping-pong, false sharing, hot home) and
//!   the per-link wire traffic.
//! * [`trace_counts`] — the same per-minipage counters re-derived from a
//!   PR-2 trace stream, so `repro diagnose` can self-check that the
//!   lock-free counters and the trace plane agree event for event.
//!
//! # Detector definitions
//!
//! * **Ping-pong**: write ownership of one minipage alternated between
//!   ≥ 2 hosts at least [`PING_PONG_MIN_ALTERNATIONS`] times. Under SW/MR
//!   an alternation is recorded when the directory forwards the writable
//!   copy to a different host than the previous writer; under HLRC, when
//!   a release diff arrives from a different host than the previous
//!   flusher. Ranked by alternation count.
//! * **False sharing**: ≥ 2 hosts wrote *pairwise-disjoint* byte ranges
//!   of one minipage (each with at least [`FALSE_SHARING_MIN_WRITES`]
//!   write faults). Extents come from fault offsets (SW/MR) and diff-run
//!   extents (HLRC); overlapping extents mean the hosts contend for the
//!   same bytes — true sharing — and are deliberately excluded. Ranked by
//!   write faults + invalidations fanned out (the traffic a split would
//!   remove).
//! * **Hot home**: one host's shard serves more than [`HOT_HOME_SKEW`] ×
//!   the mean fault load of the hosts that actually home active minipages
//!   (summed over the minipages homed there). When a single host homes
//!   everything (Centralized), the detector instead checks per-minipage
//!   concentration at that host, and single-host clusters never produce
//!   findings. Loads below [`HOT_HOME_MIN_LOAD`] are never flagged,
//!   whatever the ratio. Ranked by load.

use crate::home::HomeTable;
use multiview::Minipage;
use serde::Serialize;
use sim_core::trace::{esc, NO_MP};
use sim_core::{TraceEvent, TraceKind, Track};
use sim_mem::Geometry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Default table capacity ([`DiagTable::new`]): minipages with ids at or
/// above the capacity record into the overflow counter instead of a
/// dedicated slot. The backends size their tables from the geometry
/// instead ([`DiagTable::with_slots`] with one slot per application-view
/// vpage — an upper bound on minipage ids, since every minipage occupies
/// at least one vpage), so no shipped run overflows.
pub const DIAG_SLOTS: usize = 4096;

/// Ping-pong detector threshold: minimum inter-host write-ownership
/// alternations (any alternation implies ≥ 2 distinct writers).
pub const PING_PONG_MIN_ALTERNATIONS: u64 = 4;

/// False-sharing detector threshold: minimum write faults per
/// participating host.
pub const FALSE_SHARING_MIN_WRITES: u64 = 2;

/// Hot-home detector threshold: a home is hot when its fault load exceeds
/// this multiple of the mean per-host load.
pub const HOT_HOME_SKEW: f64 = 1.5;

/// Minimum remote-fault load before a home (or, at a sole home, a single
/// minipage) can be flagged hot. Skew alone is not evidence: a handful of
/// cold-start faults can exceed any ratio threshold, and a finding built
/// on them would send the adaptation engine chasing noise.
pub const HOT_HOME_MIN_LOAD: u64 = 8;

/// "No writer yet" marker in the last-writer cell.
const NO_WRITER: u64 = u64::MAX;

// Per-(slot, host) lane layout. The two extent lanes each hold one packed
// byte range `(start << 32) | end` or [`EXT_EMPTY`]; keeping *two* bounded
// slots (instead of a single min/max hull) is what lets one host record two
// distant write ranges without manufacturing an artificial overlap that
// would suppress the false-sharing detector.
const L_READ: usize = 0;
const L_WRITE: usize = 1;
const L_INV: usize = 2;
const L_EXT0: usize = 3;
const L_EXT1: usize = 4;
const HOST_LANES: usize = 5;

/// "No extent recorded" marker in a packed extent cell. `u64::MAX` decodes
/// as the empty range `[u32::MAX, u32::MAX)`, which no real write produces
/// (extents always have `end > start`).
const EXT_EMPTY: u64 = u64::MAX;

/// Bound on CAS retries in [`DiagTable::write_extent`]: the updater must
/// stay legal in signal context, so it cannot spin unboundedly; past the
/// cap the update is dropped (a statistical loss, never a safety one).
const EXT_CAS_CAP: usize = 64;

#[inline]
fn ext_pack(start: u64, end: u64) -> u64 {
    (start.min(u32::MAX as u64) << 32) | end.min(u32::MAX as u64)
}

#[inline]
fn ext_unpack(cell: u64) -> Option<(u64, u64)> {
    if cell == EXT_EMPTY {
        return None;
    }
    Some((cell >> 32, cell & u32::MAX as u64))
}
// Per-slot (shard-side) lane layout, after the host lanes.
const S_INV_SENT: usize = 0;
const S_DIFF_BYTES: usize = 1;
const S_LAST_WRITER: usize = 2;
const S_ALTERNATIONS: usize = 3;
const SLOT_LANES: usize = 4;

/// The lock-free statistics table. Pre-allocated at run start; every
/// update is one relaxed atomic RMW, so both the simulator's threads and
/// the host backend's signal-context resolver may record into it.
pub struct DiagTable {
    hosts: usize,
    slots: usize,
    /// `slots × (hosts · HOST_LANES + SLOT_LANES)` cells.
    cells: Vec<AtomicU64>,
    /// `hosts × hosts × 2` wire counters (messages, bytes), indexed
    /// `(from · hosts + to) · 2`.
    links: Vec<AtomicU64>,
    /// Events on minipages beyond the table capacity.
    overflow: AtomicU64,
}

impl DiagTable {
    /// A zeroed table for a cluster of `hosts` hosts at the default
    /// capacity ([`DIAG_SLOTS`]).
    pub fn new(hosts: usize) -> Arc<Self> {
        Self::with_slots(hosts, DIAG_SLOTS)
    }

    /// A zeroed table with room for minipage ids `0..slots`. The backends
    /// pass the geometry's application-view vpage count, which bounds the
    /// minipage ids any allocation order can produce.
    pub fn with_slots(hosts: usize, slots: usize) -> Arc<Self> {
        let stride = hosts * HOST_LANES + SLOT_LANES;
        let cells: Vec<AtomicU64> = (0..slots * stride)
            .map(|i| {
                let lane = i % stride;
                // Write-extent minima start at MAX so fetch_min works;
                // the last-writer cell starts at the "none" marker.
                let init = if lane < hosts * HOST_LANES {
                    match lane % HOST_LANES {
                        L_EXT0 | L_EXT1 => EXT_EMPTY,
                        _ => 0,
                    }
                } else if lane - hosts * HOST_LANES == S_LAST_WRITER {
                    NO_WRITER
                } else {
                    0
                };
                AtomicU64::new(init)
            })
            .collect();
        Arc::new(Self {
            hosts,
            slots,
            cells,
            links: (0..hosts * hosts * 2).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
        })
    }

    /// Number of hosts the table was sized for.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    #[inline]
    fn stride(&self) -> usize {
        self.hosts * HOST_LANES + SLOT_LANES
    }

    /// Cell index of `lane` in host `host`'s lane group of slot `mp`, or
    /// `None` (overflow counted) for out-of-range minipages.
    #[inline]
    fn host_cell(&self, mp: u32, host: u16, lane: usize) -> Option<usize> {
        let slot = mp as usize;
        if slot >= self.slots || (host as usize) >= self.hosts {
            self.overflow.fetch_add(1, Relaxed);
            return None;
        }
        Some(slot * self.stride() + host as usize * HOST_LANES + lane)
    }

    /// Cell index of the shard-side `lane` of slot `mp`.
    #[inline]
    fn slot_cell(&self, mp: u32, lane: usize) -> Option<usize> {
        let slot = mp as usize;
        if slot >= self.slots {
            self.overflow.fetch_add(1, Relaxed);
            return None;
        }
        Some(slot * self.stride() + self.hosts * HOST_LANES + lane)
    }

    /// Records a read fault taken by `host` on minipage `mp`.
    #[inline]
    pub fn read_fault(&self, mp: u32, host: u16) {
        if let Some(i) = self.host_cell(mp, host, L_READ) {
            self.cells[i].fetch_add(1, Relaxed);
        }
    }

    /// Records a write fault by `host` at byte `off` (extent `len`) of
    /// minipage `mp`.
    #[inline]
    pub fn write_fault(&self, mp: u32, host: u16, off: u64, len: u64) {
        if let Some(i) = self.host_cell(mp, host, L_WRITE) {
            self.cells[i].fetch_add(1, Relaxed);
        }
        self.write_extent(mp, host, off, len);
    }

    /// Records `host`'s write of `[off, off + len)` on `mp` into one of
    /// the two bounded extent slots: merge into an overlapping-or-touching
    /// extent, else claim an empty slot, else widen the nearest extent.
    /// Every path is a bounded sequence of relaxed CAS attempts on
    /// pre-allocated cells, so the host backend's signal-context resolver
    /// may call it; past [`EXT_CAS_CAP`] the update is dropped.
    pub fn write_extent(&self, mp: u32, host: u16, off: u64, len: u64) {
        let (Some(i0), Some(i1)) = (
            self.host_cell(mp, host, L_EXT0),
            self.host_cell(mp, host, L_EXT1),
        ) else {
            return;
        };
        let (s, e) = (off, off + len.max(1));
        for _ in 0..EXT_CAS_CAP {
            let cur = [self.cells[i0].load(Relaxed), self.cells[i1].load(Relaxed)];
            // Pick the slot to update: an extent the new range overlaps or
            // touches, else an empty slot, else the nearest extent.
            let mut pick: Option<(usize, u64)> = None;
            for (k, &cell) in cur.iter().enumerate() {
                if let Some((cs, ce)) = ext_unpack(cell) {
                    if s <= ce && cs <= e {
                        pick = Some((k, ext_pack(cs.min(s), ce.max(e))));
                        break;
                    }
                }
            }
            if pick.is_none() {
                pick = cur
                    .iter()
                    .position(|&c| c == EXT_EMPTY)
                    .map(|k| (k, ext_pack(s, e)));
            }
            let (k, next) = pick.unwrap_or_else(|| {
                // Both slots hold disjoint extents; widen whichever is
                // closer to the new range.
                let gap = |cell: u64| {
                    let (cs, ce) = ext_unpack(cell).expect("slot full");
                    if e < cs {
                        cs - e
                    } else {
                        s.saturating_sub(ce)
                    }
                };
                let k = usize::from(gap(cur[1]) < gap(cur[0]));
                let (cs, ce) = ext_unpack(cur[k]).expect("slot full");
                (k, ext_pack(cs.min(s), ce.max(e)))
            });
            let cell = if k == 0 {
                &self.cells[i0]
            } else {
                &self.cells[i1]
            };
            if cell
                .compare_exchange_weak(cur[k], next, Relaxed, Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Records an invalidation received (and applied) by `host`.
    #[inline]
    pub fn inv_recv(&self, mp: u32, host: u16) {
        if let Some(i) = self.host_cell(mp, host, L_INV) {
            self.cells[i].fetch_add(1, Relaxed);
        }
    }

    /// Records `n` invalidations fanned out by `mp`'s home shard.
    #[inline]
    pub fn inv_sent(&self, mp: u32, n: u64) {
        if let Some(i) = self.slot_cell(mp, S_INV_SENT) {
            self.cells[i].fetch_add(n, Relaxed);
        }
    }

    /// Records `bytes` of encoded release-diff data applied at the home.
    #[inline]
    pub fn diff_bytes(&self, mp: u32, bytes: u64) {
        if let Some(i) = self.slot_cell(mp, S_DIFF_BYTES) {
            self.cells[i].fetch_add(bytes, Relaxed);
        }
    }

    /// Records `host` becoming the current writer of `mp`, counting an
    /// alternation when the previous writer was a different host. Only the
    /// minipage's home shard calls this (one shard per minipage), so the
    /// load/store pair cannot race with itself.
    #[inline]
    pub fn writer(&self, mp: u32, host: u16) {
        let Some(last) = self.slot_cell(mp, S_LAST_WRITER) else {
            return;
        };
        let prev = self.cells[last].load(Relaxed);
        if prev == host as u64 {
            return;
        }
        if prev != NO_WRITER {
            if let Some(alt) = self.slot_cell(mp, S_ALTERNATIONS) {
                self.cells[alt].fetch_add(1, Relaxed);
            }
        }
        self.cells[last].store(host as u64, Relaxed);
    }

    /// Resets every lane of minipage `mp` to its initial state. The adapt
    /// engine calls this on each split/merge/home-migration so the first
    /// post-action write does not record a phantom alternation against the
    /// pre-action writer (which would re-flag a freshly fixed minipage and
    /// oscillate the adapt loop). Callers must quiesce the minipage first
    /// (no in-flight faults); adaptation actions run at barrier quorum,
    /// which guarantees exactly that.
    pub fn reset_slot(&self, mp: u32) {
        let slot = mp as usize;
        if slot >= self.slots {
            return;
        }
        for host in 0..self.hosts {
            for lane in 0..HOST_LANES {
                let init = match lane {
                    L_EXT0 | L_EXT1 => EXT_EMPTY,
                    _ => 0,
                };
                self.cells[slot * self.stride() + host * HOST_LANES + lane].store(init, Relaxed);
            }
        }
        for lane in 0..SLOT_LANES {
            let init = if lane == S_LAST_WRITER { NO_WRITER } else { 0 };
            self.cells[slot * self.stride() + self.hosts * HOST_LANES + lane].store(init, Relaxed);
        }
    }

    /// Records one wire message of `bytes` payload on the `from → to`
    /// link (used by the host backend's transport; the simulator reads
    /// its fabric's per-link counters instead).
    #[inline]
    pub fn wire_send(&self, from: u16, to: u16, bytes: u64) {
        let (f, t) = (from as usize, to as usize);
        if f >= self.hosts || t >= self.hosts {
            return;
        }
        let i = (f * self.hosts + t) * 2;
        self.links[i].fetch_add(1, Relaxed);
        self.links[i + 1].fetch_add(bytes, Relaxed);
    }

    /// The per-link wire traffic recorded through [`wire_send`], links
    /// with no traffic omitted.
    pub fn link_stats(&self) -> Vec<LinkStat> {
        let mut out = Vec::new();
        for from in 0..self.hosts {
            for to in 0..self.hosts {
                let i = (from * self.hosts + to) * 2;
                let (m, b) = (self.links[i].load(Relaxed), self.links[i + 1].load(Relaxed));
                if m > 0 {
                    out.push(LinkStat {
                        from: from as u16,
                        to: to as u16,
                        messages: m,
                        bytes: b,
                    });
                }
            }
        }
        out
    }

    fn host_lane(&self, mp: u32, host: usize, lane: usize) -> u64 {
        self.cells[mp as usize * self.stride() + host * HOST_LANES + lane].load(Relaxed)
    }

    /// The recorded write extents of `(mp, host)`, sorted by start.
    fn host_extents(&self, mp: u32, host: usize) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = [L_EXT0, L_EXT1]
            .iter()
            .filter_map(|&lane| ext_unpack(self.host_lane(mp, host, lane)))
            .collect();
        out.sort_unstable();
        out
    }

    fn slot_lane(&self, mp: u32, lane: usize) -> u64 {
        self.cells[mp as usize * self.stride() + self.hosts * HOST_LANES + lane].load(Relaxed)
    }
}

/// The cheap diagnostics handle threaded through the protocol. Cloning
/// shares the table; the default sink is disabled and every recording
/// method is a single branch.
#[derive(Clone, Default)]
pub struct DiagSink(Option<Arc<DiagTable>>);

impl std::fmt::Debug for DiagSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(t) => write!(f, "DiagSink(enabled, {} slots)", t.slots),
            None => write!(f, "DiagSink(disabled)"),
        }
    }
}

impl DiagSink {
    /// A disabled sink (the default): recording is a no-op.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A sink recording into `table`.
    pub fn new(table: Arc<DiagTable>) -> Self {
        Self(Some(table))
    }

    /// Whether recording does anything; instrumentation points use this to
    /// skip computing minipage ids when diagnostics are off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying table, if enabled.
    pub fn table(&self) -> Option<&Arc<DiagTable>> {
        self.0.as_ref()
    }

    /// See [`DiagTable::read_fault`].
    #[inline]
    pub fn read_fault(&self, mp: u32, host: u16) {
        if let Some(t) = &self.0 {
            t.read_fault(mp, host);
        }
    }

    /// See [`DiagTable::write_fault`].
    #[inline]
    pub fn write_fault(&self, mp: u32, host: u16, off: u64, len: u64) {
        if let Some(t) = &self.0 {
            t.write_fault(mp, host, off, len);
        }
    }

    /// See [`DiagTable::write_extent`].
    #[inline]
    pub fn write_extent(&self, mp: u32, host: u16, off: u64, len: u64) {
        if let Some(t) = &self.0 {
            t.write_extent(mp, host, off, len);
        }
    }

    /// See [`DiagTable::inv_recv`].
    #[inline]
    pub fn inv_recv(&self, mp: u32, host: u16) {
        if let Some(t) = &self.0 {
            t.inv_recv(mp, host);
        }
    }

    /// See [`DiagTable::inv_sent`].
    #[inline]
    pub fn inv_sent(&self, mp: u32, n: u64) {
        if let Some(t) = &self.0 {
            t.inv_sent(mp, n);
        }
    }

    /// See [`DiagTable::diff_bytes`].
    #[inline]
    pub fn diff_bytes(&self, mp: u32, bytes: u64) {
        if let Some(t) = &self.0 {
            t.diff_bytes(mp, bytes);
        }
    }

    /// See [`DiagTable::writer`].
    #[inline]
    pub fn writer(&self, mp: u32, host: u16) {
        if let Some(t) = &self.0 {
            t.writer(mp, host);
        }
    }

    /// See [`DiagTable::reset_slot`].
    #[inline]
    pub fn reset_slot(&self, mp: u32) {
        if let Some(t) = &self.0 {
            t.reset_slot(mp);
        }
    }

    /// See [`DiagTable::wire_send`].
    #[inline]
    pub fn wire_send(&self, from: u16, to: u16, bytes: u64) {
        if let Some(t) = &self.0 {
            t.wire_send(from, to, bytes);
        }
    }
}

/// One host's lane of a minipage's statistics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HostLane {
    /// The host.
    pub host: u16,
    /// Read faults this host took on the minipage.
    pub read_faults: u64,
    /// Write faults this host took on the minipage.
    pub write_faults: u64,
    /// Invalidations this host received for the minipage.
    pub inv_recv: u64,
    /// Byte ranges `[start, end)` of the host's recorded writes, sorted,
    /// empty if it never wrote. At most two bounded extents are kept (see
    /// the lane layout), so two distant write ranges stay distinct instead
    /// of collapsing into one hull that would fake an overlap.
    pub write_extents: Vec<(u64, u64)>,
}

impl HostLane {
    /// The convex hull of the recorded extents, or `None` if the host
    /// never wrote (display/heatmap convenience).
    pub fn write_hull(&self) -> Option<(u64, u64)> {
        let first = self.write_extents.first()?;
        let last = self.write_extents.last()?;
        Some((first.0, last.1))
    }
}

/// Merged statistics of one minipage.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct MinipageDiag {
    /// Minipage id.
    pub mp: u32,
    /// Length in bytes.
    pub len: usize,
    /// Home host.
    pub home: u16,
    /// First global vpage the minipage occupies (heatmap row).
    pub first_vpage: usize,
    /// Number of vpages spanned.
    pub vpages: usize,
    /// Invalidations the home shard fanned out for this minipage.
    pub inv_sent: u64,
    /// Encoded release-diff bytes applied at the home.
    pub diff_bytes: u64,
    /// Inter-host write-ownership alternations.
    pub alternations: u64,
    /// The most recent writer, if any.
    pub last_writer: Option<u16>,
    /// Per-host lanes (dense, one per host).
    pub per_host: Vec<HostLane>,
}

impl MinipageDiag {
    /// Total read faults across hosts.
    pub fn read_faults(&self) -> u64 {
        self.per_host.iter().map(|l| l.read_faults).sum()
    }

    /// Total write faults across hosts.
    pub fn write_faults(&self) -> u64 {
        self.per_host.iter().map(|l| l.write_faults).sum()
    }

    /// Total invalidations received across hosts.
    pub fn inv_recv(&self) -> u64 {
        self.per_host.iter().map(|l| l.inv_recv).sum()
    }

    /// Total faults (the heat metric).
    pub fn faults(&self) -> u64 {
        self.read_faults() + self.write_faults()
    }

    fn any_activity(&self) -> bool {
        self.inv_sent > 0
            || self.diff_bytes > 0
            || self.alternations > 0
            || self.last_writer.is_some()
            || self.per_host.iter().any(|l| {
                l.read_faults + l.write_faults + l.inv_recv > 0 || !l.write_extents.is_empty()
            })
    }
}

/// One ranked detector finding.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Finding {
    /// Detector name (`"ping-pong"`, `"false-sharing"`, `"hot-home"`).
    pub detector: &'static str,
    /// The minipage the finding is about (for hot-home: the hottest
    /// minipage homed at the hot host).
    pub mp: u32,
    /// The host the finding is about (hot-home: the hot home; others: the
    /// last writer).
    pub host: u16,
    /// Ranking score (alternations / removable traffic / fault load).
    pub score: u64,
    /// Human-readable evidence: hosts, rates, byte ranges.
    pub evidence: String,
}

/// Per-link wire traffic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct LinkStat {
    /// Sending host.
    pub from: u16,
    /// Receiving host.
    pub to: u16,
    /// Messages sent on the link.
    pub messages: u64,
    /// Payload bytes sent on the link.
    pub bytes: u64,
}

/// The merged diagnostics of one run: per-minipage statistics, ranked
/// detector findings, and per-link wire traffic.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DiagReport {
    /// Minipages with any recorded activity, in id order.
    pub minipages: Vec<MinipageDiag>,
    /// Ping-pong findings, worst first.
    pub ping_pong: Vec<Finding>,
    /// False-sharing findings, worst first.
    pub false_sharing: Vec<Finding>,
    /// Hot-home findings, worst first.
    pub hot_home: Vec<Finding>,
    /// Per-link wire traffic (links with no traffic omitted).
    pub links: Vec<LinkStat>,
    /// Events on minipages beyond the table capacity (0 in any run this
    /// repository ships).
    pub overflow: u64,
}

/// Builds the merged report: reads the table, attaches allocation
/// metadata, and runs the detectors. `links` carries the per-link wire
/// traffic from whichever transport the run used.
pub(crate) fn build_report(
    table: &DiagTable,
    minipages: &[Minipage],
    geo: &Geometry,
    home: &HomeTable,
    links: Vec<LinkStat>,
) -> DiagReport {
    let hosts = table.hosts;
    let mut merged = Vec::new();
    for mp in minipages {
        let id = mp.id.0;
        if id as usize >= table.slots {
            continue; // Overflow slots carry no attribution.
        }
        let per_host = (0..hosts)
            .map(|h| HostLane {
                host: h as u16,
                read_faults: table.host_lane(id, h, L_READ),
                write_faults: table.host_lane(id, h, L_WRITE),
                inv_recv: table.host_lane(id, h, L_INV),
                write_extents: table.host_extents(id, h),
            })
            .collect();
        let last = table.slot_lane(id, S_LAST_WRITER);
        let vpages = mp.vpages(geo);
        let d = MinipageDiag {
            mp: id,
            len: mp.len,
            home: home.home(mp.id).0,
            first_vpage: vpages.start,
            vpages: vpages.len(),
            inv_sent: table.slot_lane(id, S_INV_SENT),
            diff_bytes: table.slot_lane(id, S_DIFF_BYTES),
            alternations: table.slot_lane(id, S_ALTERNATIONS),
            last_writer: (last != NO_WRITER).then_some(last as u16),
            per_host,
        };
        if d.any_activity() {
            merged.push(d);
        }
    }
    merged.sort_by_key(|d| d.mp);
    DiagReport {
        ping_pong: detect_ping_pong(&merged),
        false_sharing: detect_false_sharing(&merged),
        hot_home: detect_hot_home(&merged, hosts),
        minipages: merged,
        links,
        overflow: table.overflow.load(Relaxed),
    }
}

fn writing_hosts(d: &MinipageDiag) -> Vec<u16> {
    d.per_host
        .iter()
        .filter(|l| l.write_faults > 0 || !l.write_extents.is_empty())
        .map(|l| l.host)
        .collect()
}

/// Ping-pong detector: see the module docs for the definition.
pub fn detect_ping_pong(minipages: &[MinipageDiag]) -> Vec<Finding> {
    let mut out: Vec<Finding> = minipages
        .iter()
        .filter(|d| d.alternations >= PING_PONG_MIN_ALTERNATIONS)
        .map(|d| {
            let writers = writing_hosts(d);
            let rate = d.alternations as f64 / d.write_faults().max(1) as f64;
            Finding {
                detector: "ping-pong",
                mp: d.mp,
                host: d.last_writer.unwrap_or(u16::MAX),
                score: d.alternations,
                evidence: format!(
                    "ownership alternated {} times between hosts {:?} \
                     ({:.2} alternations/write-fault, {} invalidations fanned out)",
                    d.alternations, writers, rate, d.inv_sent
                ),
            }
        })
        .collect();
    out.sort_by_key(|f| (std::cmp::Reverse(f.score), f.mp));
    out
}

/// False-sharing detector: see the module docs for the definition.
pub fn detect_false_sharing(minipages: &[MinipageDiag]) -> Vec<Finding> {
    let mut out = Vec::new();
    for d in minipages {
        let lanes: Vec<&HostLane> = d
            .per_host
            .iter()
            .filter(|l| !l.write_extents.is_empty() && l.write_faults >= FALSE_SHARING_MIN_WRITES)
            .collect();
        if lanes.len() < 2 {
            continue;
        }
        // Pairwise-disjoint across hosts: no extent of host A may overlap
        // any extent of host B. A host's *own* extents being far apart is
        // fine — that is exactly the case the bounded extent slots exist to
        // preserve.
        let disjoint = lanes.iter().enumerate().all(|(i, a)| {
            lanes.iter().skip(i + 1).all(|b| {
                a.write_extents
                    .iter()
                    .all(|&(a0, a1)| b.write_extents.iter().all(|&(b0, b1)| a1 <= b0 || b1 <= a0))
            })
        });
        if !disjoint {
            continue;
        }
        let ranges: Vec<String> = lanes
            .iter()
            .map(|l| {
                let exts: Vec<String> = l
                    .write_extents
                    .iter()
                    .map(|&(s, e)| format!("[{s},{e})"))
                    .collect();
                format!("h{}:{}", l.host, exts.join("+"))
            })
            .collect();
        let score = d.write_faults() + d.inv_sent;
        out.push(Finding {
            detector: "false-sharing",
            mp: d.mp,
            host: d.last_writer.unwrap_or(u16::MAX),
            score,
            evidence: format!(
                "{} hosts wrote disjoint byte ranges {} of a {}-byte minipage \
                 ({} write faults + {} invalidations a split would remove)",
                lanes.len(),
                ranges.join(" "),
                d.len,
                d.write_faults(),
                d.inv_sent
            ),
        });
    }
    out.sort_by_key(|f| (std::cmp::Reverse(f.score), f.mp));
    out
}

/// Faults on `d` taken by hosts other than its home — the load the home
/// shard serves over the wire. The home's own faults are local (served
/// in place wherever the minipage lives), so counting them would re-flag
/// a home that was just migrated to its dominant writer.
fn remote_faults(d: &MinipageDiag) -> u64 {
    d.per_host
        .iter()
        .filter(|l| l.host != d.home)
        .map(|l| l.read_faults + l.write_faults)
        .sum()
}

/// Hot-home detector: see the module docs for the definition.
///
/// Load is the *remote* fault load per home — faults taken by hosts other
/// than the minipage's home, i.e. the service traffic that actually
/// crosses the wire to that shard. The home's own faults are excluded:
/// they are local no matter where the minipage is homed, so counting
/// them would re-flag a minipage freshly migrated to its dominant
/// writer. The skew baseline is the mean load over hosts that actually
/// *home* active minipages, not over all hosts — idle hosts would dilute
/// the denominator and make any centralized layout look hot even under
/// perfectly uniform load. When exactly one host homes everything
/// (Centralized), a host-level mean is meaningless, so the detector falls
/// back to a per-minipage concentration check at that host: is one
/// minipage drawing more than [`HOT_HOME_SKEW`] × the mean per-minipage
/// load? Single-host clusters have no remote faults and produce no
/// findings at all.
pub fn detect_hot_home(minipages: &[MinipageDiag], hosts: usize) -> Vec<Finding> {
    if hosts < 2 {
        return Vec::new();
    }
    let mut load = vec![0u64; hosts];
    let mut homed = vec![0usize; hosts];
    let mut hottest: Vec<Option<(u64, u32)>> = vec![None; hosts];
    for d in minipages {
        let h = d.home as usize;
        if h >= hosts {
            continue;
        }
        let remote = remote_faults(d);
        load[h] += remote;
        homed[h] += 1;
        if hottest[h].is_none_or(|(f, _)| remote > f) {
            hottest[h] = Some((remote, d.mp));
        }
    }
    let total: u64 = load.iter().sum();
    let homing: Vec<usize> = (0..hosts).filter(|&h| homed[h] > 0).collect();
    let mut out: Vec<Finding> = if homing.len() >= 2 {
        let mean = total as f64 / homing.len() as f64;
        homing
            .iter()
            .copied()
            .filter(|&h| load[h] >= HOT_HOME_MIN_LOAD && load[h] as f64 > HOT_HOME_SKEW * mean)
            .map(|h| Finding {
                detector: "hot-home",
                mp: hottest[h].map_or(NO_MP, |(_, mp)| mp),
                host: h as u16,
                score: load[h],
                evidence: format!(
                    "home h{h} serves {} of {total} remote faults across {} minipages \
                     ({:.1}x the mean load of the {} homing hosts); hottest minipage mp{}",
                    load[h],
                    homed[h],
                    load[h] as f64 / mean.max(1.0),
                    homing.len(),
                    hottest[h].map_or(NO_MP, |(_, mp)| mp),
                ),
            })
            .collect()
    } else if let Some(&h) = homing.first() {
        // Single homing host: flag it only when one minipage concentrates
        // the load (the thing home migration or a split could fix), never
        // merely for being the only home.
        let active = minipages
            .iter()
            .filter(|d| d.home as usize == h && remote_faults(d) > 0)
            .count();
        let mean_mp = total as f64 / active.max(1) as f64;
        let hot = hottest[h].filter(|&(f, _)| {
            active >= 2 && f >= HOT_HOME_MIN_LOAD && f as f64 > HOT_HOME_SKEW * mean_mp
        });
        hot.map(|(f, mp)| Finding {
            detector: "hot-home",
            mp,
            host: h as u16,
            score: load[h],
            evidence: format!(
                "sole home h{h} serves all {total} remote faults; minipage mp{mp} draws {f} \
                 ({:.1}x the mean per-minipage load across {active} active minipages)",
                f as f64 / mean_mp.max(1.0),
            ),
        })
        .into_iter()
        .collect()
    } else {
        Vec::new()
    };
    out.sort_by_key(|f| (std::cmp::Reverse(f.score), f.host));
    out
}

impl DiagReport {
    /// The per-`(minipage, host)` counters `[read_faults, write_faults,
    /// inv_recv]`, for comparison against [`trace_counts`] or another
    /// backend's report. Zero triples are omitted.
    pub fn counts(&self) -> BTreeMap<(u32, u16), [u64; 3]> {
        let mut m = BTreeMap::new();
        for d in &self.minipages {
            for l in &d.per_host {
                let c = [l.read_faults, l.write_faults, l.inv_recv];
                if c != [0, 0, 0] {
                    m.insert((d.mp, l.host), c);
                }
            }
        }
        m
    }

    /// A canonical string of every ranked finding, for equality checks
    /// between runs (the `repro diagnose` traced-vs-stats self-check).
    pub fn findings_fingerprint(&self) -> String {
        let mut s = String::new();
        for f in self
            .ping_pong
            .iter()
            .chain(&self.false_sharing)
            .chain(&self.hot_home)
        {
            s.push_str(&format!(
                "{}|mp{}|h{}|{}|{}\n",
                f.detector, f.mp, f.host, f.score, f.evidence
            ));
        }
        s
    }

    /// The vpage × host fault heatmap as CSV rows
    /// (`app,mp,vpage,host,read_faults,write_faults`), appended to `out`.
    /// Counts are attributed to the minipage's first vpage.
    pub fn heatmap_csv(&self, app: &str, out: &mut String) {
        for d in &self.minipages {
            for l in &d.per_host {
                if l.read_faults + l.write_faults == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{app},{},{},{},{},{}\n",
                    d.mp, d.first_vpage, l.host, l.read_faults, l.write_faults
                ));
            }
        }
    }

    /// The report as a JSON value (embedded under `"diag"` in
    /// [`RunReport::to_json`](crate::RunReport::to_json)).
    pub fn to_json(&self) -> String {
        let mp_json = |d: &MinipageDiag| {
            let lanes: Vec<String> = d
                .per_host
                .iter()
                .filter(|l| {
                    l.read_faults + l.write_faults + l.inv_recv > 0 || !l.write_extents.is_empty()
                })
                .map(|l| {
                    let exts: Vec<String> = l
                        .write_extents
                        .iter()
                        .map(|&(s, e)| format!("[{s},{e}]"))
                        .collect();
                    format!(
                        "{{\"host\":{},\"read_faults\":{},\"write_faults\":{},\
                         \"inv_recv\":{},\"write_extents\":[{}]}}",
                        l.host,
                        l.read_faults,
                        l.write_faults,
                        l.inv_recv,
                        exts.join(",")
                    )
                })
                .collect();
            format!(
                "{{\"mp\":{},\"len\":{},\"home\":{},\"first_vpage\":{},\"vpages\":{},\
                 \"inv_sent\":{},\"diff_bytes\":{},\"alternations\":{},\"last_writer\":{},\
                 \"per_host\":[{}]}}",
                d.mp,
                d.len,
                d.home,
                d.first_vpage,
                d.vpages,
                d.inv_sent,
                d.diff_bytes,
                d.alternations,
                d.last_writer.map_or("null".into(), |w| w.to_string()),
                lanes.join(",")
            )
        };
        let findings_json = |fs: &[Finding]| {
            let items: Vec<String> = fs
                .iter()
                .map(|f| {
                    format!(
                        "{{\"detector\":\"{}\",\"mp\":{},\"host\":{},\"score\":{},\
                         \"evidence\":\"{}\"}}",
                        f.detector,
                        f.mp,
                        f.host,
                        f.score,
                        esc(&f.evidence)
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        };
        let links: Vec<String> = self
            .links
            .iter()
            .map(|l| {
                format!(
                    "{{\"from\":{},\"to\":{},\"messages\":{},\"bytes\":{}}}",
                    l.from, l.to, l.messages, l.bytes
                )
            })
            .collect();
        let mps: Vec<String> = self.minipages.iter().map(mp_json).collect();
        format!(
            "{{\"minipages\":[{}],\"ping_pong\":{},\"false_sharing\":{},\"hot_home\":{},\
             \"links\":[{}],\"overflow\":{}}}",
            mps.join(","),
            findings_json(&self.ping_pong),
            findings_json(&self.false_sharing),
            findings_json(&self.hot_home),
            links.join(","),
            self.overflow
        )
    }
}

/// Per-`(minipage, host)` counters re-derived from a trace stream:
/// `[read_faults, write_faults, inv_recv]`, zero triples omitted — the
/// same shape [`DiagReport::counts`] produces, so the two can be compared
/// with `==`.
///
/// Fault counts come from the `ReadFaultBegin`/`WriteFaultBegin` events
/// the application threads record; received invalidations from the
/// `InvalidateLocal` events the *server* track records with `aux == 1`
/// (the marker `handle_invalidate` attaches — the copy drops a server
/// performs while *serving* a write and an application thread's own
/// release-flush drops carry no marker, and neither counts as a received
/// invalidation).
pub fn trace_counts(events: &[TraceEvent]) -> BTreeMap<(u32, u16), [u64; 3]> {
    let mut m: BTreeMap<(u32, u16), [u64; 3]> = BTreeMap::new();
    for e in events {
        if e.mp == NO_MP {
            continue;
        }
        let lane = match e.kind {
            TraceKind::ReadFaultBegin => 0,
            TraceKind::WriteFaultBegin => 1,
            TraceKind::InvalidateLocal if e.track == Track::Server && e.aux == 1 => 2,
            _ => continue,
        };
        m.entry((e.mp, e.host)).or_default()[lane] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(host: u16, reads: u64, writes: u64, ext: Option<(u64, u64)>) -> HostLane {
        HostLane {
            host,
            read_faults: reads,
            write_faults: writes,
            inv_recv: 0,
            write_extents: ext.into_iter().collect(),
        }
    }

    fn mp(id: u32, home: u16, alternations: u64, lanes: Vec<HostLane>) -> MinipageDiag {
        MinipageDiag {
            mp: id,
            len: 64,
            home,
            first_vpage: id as usize,
            vpages: 1,
            inv_sent: 0,
            diff_bytes: 0,
            alternations,
            last_writer: lanes.iter().find(|l| l.write_faults > 0).map(|l| l.host),
            per_host: lanes,
        }
    }

    #[test]
    fn table_records_and_merges() {
        let t = DiagTable::new(2);
        t.read_fault(3, 0);
        t.write_fault(3, 1, 8, 4);
        t.inv_recv(3, 0);
        t.inv_sent(3, 2);
        t.writer(3, 0);
        t.writer(3, 1);
        t.writer(3, 1);
        t.writer(3, 0);
        assert_eq!(t.host_lane(3, 0, L_READ), 1);
        assert_eq!(t.host_lane(3, 1, L_WRITE), 1);
        assert_eq!(t.host_extents(3, 1), vec![(8, 12)]);
        assert_eq!(t.host_lane(3, 0, L_INV), 1);
        assert_eq!(t.slot_lane(3, S_INV_SENT), 2);
        assert_eq!(t.slot_lane(3, S_ALTERNATIONS), 2);
    }

    /// Two distant write ranges from one host must stay two extents, not
    /// collapse into one hull; nearby writes merge into the existing
    /// extent; a third disjoint range widens the nearest slot only.
    #[test]
    fn extent_slots_keep_disjoint_ranges_distinct() {
        let t = DiagTable::new(2);
        t.write_extent(0, 0, 0, 8);
        t.write_extent(0, 0, 48, 8);
        assert_eq!(t.host_extents(0, 0), vec![(0, 8), (48, 56)]);
        // Touching range merges rather than widening across the gap.
        t.write_extent(0, 0, 8, 4);
        assert_eq!(t.host_extents(0, 0), vec![(0, 12), (48, 56)]);
        // Both slots full: a third range widens the nearest extent.
        t.write_extent(0, 0, 40, 2);
        assert_eq!(t.host_extents(0, 0), vec![(0, 12), (40, 56)]);
    }

    #[test]
    fn reset_slot_restores_initial_state() {
        let t = DiagTable::new(2);
        t.read_fault(5, 0);
        t.write_fault(5, 1, 8, 4);
        t.inv_recv(5, 0);
        t.inv_sent(5, 3);
        t.diff_bytes(5, 7);
        t.writer(5, 0);
        t.writer(5, 1);
        t.reset_slot(5);
        for h in 0..2 {
            assert_eq!(t.host_lane(5, h, L_READ), 0);
            assert_eq!(t.host_lane(5, h, L_WRITE), 0);
            assert_eq!(t.host_lane(5, h, L_INV), 0);
            assert!(t.host_extents(5, h).is_empty());
        }
        assert_eq!(t.slot_lane(5, S_INV_SENT), 0);
        assert_eq!(t.slot_lane(5, S_DIFF_BYTES), 0);
        assert_eq!(t.slot_lane(5, S_ALTERNATIONS), 0);
        assert_eq!(t.slot_lane(5, S_LAST_WRITER), NO_WRITER);
        // The first post-reset writer records no phantom alternation
        // against the pre-reset writer.
        t.writer(5, 0);
        assert_eq!(t.slot_lane(5, S_ALTERNATIONS), 0);
    }

    #[test]
    fn out_of_range_minipages_count_as_overflow() {
        let t = DiagTable::new(2);
        t.read_fault(DIAG_SLOTS as u32, 0);
        t.read_fault(NO_MP, 1);
        assert_eq!(t.overflow.load(Relaxed), 2);
    }

    #[test]
    fn ping_pong_requires_the_alternation_threshold() {
        let quiet = mp(
            0,
            0,
            PING_PONG_MIN_ALTERNATIONS - 1,
            vec![lane(0, 0, 3, None)],
        );
        let noisy = mp(1, 0, 9, vec![lane(0, 0, 5, None), lane(1, 0, 5, None)]);
        let noisier = mp(2, 0, 30, vec![lane(0, 0, 15, None), lane(1, 0, 15, None)]);
        let f = detect_ping_pong(&[quiet, noisy, noisier]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].mp, 2);
        assert_eq!(f[1].mp, 1);
    }

    #[test]
    fn false_sharing_needs_disjoint_extents() {
        // Disjoint halves: false sharing. Overlapping: true sharing.
        let fs = mp(
            0,
            0,
            8,
            vec![lane(0, 0, 4, Some((0, 16))), lane(1, 0, 4, Some((32, 48)))],
        );
        let ts = mp(
            1,
            0,
            8,
            vec![lane(0, 0, 4, Some((0, 16))), lane(1, 0, 4, Some((8, 24)))],
        );
        let single = mp(2, 0, 0, vec![lane(0, 0, 9, Some((0, 64)))]);
        let f = detect_false_sharing(&[fs, ts, single]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].mp, 0);
    }

    /// A host writing two distant ranges whose *hull* would swallow the
    /// other host's range is still false sharing when the actual extents
    /// are disjoint — the case the old min/max widening suppressed.
    #[test]
    fn false_sharing_survives_a_two_range_writer() {
        let mut straddled = mp(0, 0, 8, vec![lane(1, 0, 4, Some((24, 40)))]);
        straddled.per_host.push(HostLane {
            host: 0,
            read_faults: 0,
            write_faults: 4,
            inv_recv: 0,
            write_extents: vec![(0, 16), (48, 64)],
        });
        let f = detect_false_sharing(&[straddled]);
        assert_eq!(f.len(), 1, "two-range writer suppressed the finding");
        // But a genuine overlap with either range still disqualifies.
        let mut overlapping = mp(1, 0, 8, vec![lane(1, 0, 4, Some((8, 40)))]);
        overlapping.per_host.push(HostLane {
            host: 0,
            read_faults: 0,
            write_faults: 4,
            inv_recv: 0,
            write_extents: vec![(0, 16), (48, 64)],
        });
        assert!(detect_false_sharing(&[overlapping]).is_empty());
    }

    /// Centralized layouts under uniform load must not be flagged merely
    /// because one host homes everything (the old all-hosts mean let the
    /// sole home trivially exceed the skew threshold).
    #[test]
    fn hot_home_ignores_uniform_centralized_load() {
        for hosts in [1usize, 8] {
            let mps: Vec<MinipageDiag> = (0..8)
                .map(|i| {
                    mp(
                        i,
                        0,
                        0,
                        vec![lane((i as usize % hosts) as u16, 10, 0, None)],
                    )
                })
                .collect();
            let f = detect_hot_home(&mps, hosts);
            assert!(f.is_empty(), "{hosts} hosts, uniform load: {f:?}");
        }
    }

    /// A sole home *is* flagged when one minipage concentrates the load —
    /// the case migration or a split can actually fix.
    #[test]
    fn hot_home_flags_concentration_at_a_sole_home() {
        let mut mps = vec![mp(0, 0, 0, vec![lane(1, 100, 0, None)])];
        mps.extend((1..5).map(|i| mp(i, 0, 0, vec![lane(1, 5, 0, None)])));
        let f = detect_hot_home(&mps, 4);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].host, 0);
        assert_eq!(f[0].mp, 0);
    }

    #[test]
    fn hot_home_flags_the_skewed_host() {
        let mps = vec![
            mp(0, 1, 0, vec![lane(0, 100, 0, None)]),
            mp(1, 0, 0, vec![lane(1, 5, 0, None)]),
            mp(2, 2, 0, vec![lane(0, 5, 0, None)]),
        ];
        let f = detect_hot_home(&mps, 4);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].host, 1);
        assert_eq!(f[0].mp, 0);
    }

    /// Noise-level traffic never makes a hot home, however skewed the
    /// ratio: after a migration drains the planted load, the handful of
    /// cold-start faults left at the old home must not become a fresh
    /// finding for the adaptation engine to chase.
    #[test]
    fn hot_home_needs_minimum_load_not_just_skew() {
        // Two homes, 3 faults vs 0: a 2x skew on 3 total faults.
        let mps = vec![
            mp(0, 0, 0, vec![lane(1, 3, 0, None)]),
            mp(1, 1, 0, vec![lane(1, 0, 0, None)]),
        ];
        assert!(detect_hot_home(&mps, 4).is_empty());
        // Same shape at real load is flagged.
        let mps = vec![
            mp(0, 0, 0, vec![lane(1, 30, 0, None)]),
            mp(1, 1, 0, vec![lane(1, 0, 0, None)]),
        ];
        assert_eq!(detect_hot_home(&mps, 4).len(), 1);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let s = DiagSink::disabled();
        assert!(!s.enabled());
        s.read_fault(0, 0); // must not panic
        assert!(s.table().is_none());
    }

    #[test]
    fn trace_counts_filter_server_invalidations() {
        use sim_core::HostId;
        let mk = |kind, track, mp: u32, aux: u32| {
            let mut e = TraceEvent::new(0, HostId(1), track, kind).with_mp(mp);
            e.aux = aux;
            e
        };
        let events = vec![
            mk(TraceKind::ReadFaultBegin, Track::App(0), 7, 0),
            mk(TraceKind::WriteFaultBegin, Track::App(0), 7, 0),
            mk(TraceKind::InvalidateLocal, Track::Server, 7, 1),
            // Serving-side copy drop (no aux marker) and an app-track
            // release drop: neither is a received invalidation.
            mk(TraceKind::InvalidateLocal, Track::Server, 7, 0),
            mk(TraceKind::InvalidateLocal, Track::App(0), 7, 1),
        ];
        let m = trace_counts(&events);
        assert_eq!(m.get(&(7, 1)), Some(&[1, 1, 1]));
    }
}
