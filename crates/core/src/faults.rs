//! Core-owned wire-fault configuration.
//!
//! The cluster config used to expose `sim_net::FaultPlane` directly, which
//! leaked a backend type through `core`'s public API. [`WireFaults`] is the
//! protocol layer's own vocabulary for "how unreliable is the wire";
//! the sim transport converts it into its internal fault plane, and other
//! transports are free to ignore the knobs they cannot model (a real
//! socketpair does not inject drops).

use sim_core::{HostId, Ns};
use sim_net::{FaultPlane, ScriptedFault, ScriptedKind};

/// Default virtual-time retransmission timeout (≈ four small-message round
/// trips at the paper's 25 µs RTT).
pub const DEFAULT_RTO_NS: Ns = sim_net::DEFAULT_RTO_NS;

/// Default retransmit budget before a send surfaces as lost.
pub const DEFAULT_MAX_RETRANSMITS: u32 = sim_net::DEFAULT_MAX_RETRANSMITS;

/// Seeded wire-fault injection: per-link drop / duplicate / reorder /
/// jitter probabilities plus scripted one-shot faults, and the
/// reliable-channel parameters that compensate for them.
///
/// A disabled config is inert: the sim fabric takes the exact
/// pre-fault-plane code path, keeping traces byte-identical to a build
/// without fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct WireFaults {
    /// Probability that any single transmission is lost on the wire.
    pub drop: f64,
    /// Probability that a delivered packet is duplicated in flight.
    pub dup: f64,
    /// Probability that a delivered packet arrives out of order.
    pub reorder: f64,
    /// Uniform extra delivery delay in `[0, jitter_ns)` virtual ns.
    pub jitter_ns: Ns,
    /// Initial virtual-time retransmission timeout; doubles per retry.
    pub rto_ns: Ns,
    /// Retransmissions attempted before the send surfaces as lost.
    pub max_retransmits: u32,
    /// Seed for the per-link fault streams.
    pub seed: u64,
    /// One-shot scripted faults, matched at send time in order.
    pub scripted: Vec<WireFault>,
}

impl Default for WireFaults {
    fn default() -> Self {
        Self::disabled()
    }
}

impl WireFaults {
    /// A config that injects nothing and leaves the fabric untouched.
    pub fn disabled() -> Self {
        Self {
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            jitter_ns: 0,
            rto_ns: DEFAULT_RTO_NS,
            max_retransmits: DEFAULT_MAX_RETRANSMITS,
            seed: 0,
            scripted: Vec::new(),
        }
    }

    /// A probabilistic config with the default RTO and retransmit budget.
    pub fn lossy(seed: u64, drop: f64, dup: f64, reorder: f64) -> Self {
        Self {
            drop,
            dup,
            reorder,
            seed,
            ..Self::disabled()
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.jitter_ns > 0
            || !self.scripted.is_empty()
    }

    /// Conversion into the sim transport's internal fault plane.
    pub(crate) fn to_plane(&self) -> FaultPlane {
        FaultPlane {
            drop: self.drop,
            dup: self.dup,
            reorder: self.reorder,
            jitter_ns: self.jitter_ns,
            rto_ns: self.rto_ns,
            max_retransmits: self.max_retransmits,
            seed: self.seed,
            scripted: self
                .scripted
                .iter()
                .map(|s| ScriptedFault {
                    from: s.from,
                    to: s.to,
                    nth: s.nth,
                    kind: match s.kind {
                        WireFaultKind::DropOnce => ScriptedKind::DropOnce,
                        WireFaultKind::Blackhole => ScriptedKind::Blackhole,
                    },
                })
                .collect(),
        }
    }
}

/// What a scripted fault does to the packet it matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireFaultKind {
    /// Lose the first transmission; the retransmission proceeds normally.
    DropOnce,
    /// Lose every transmission: the send exhausts its retransmit budget
    /// and surfaces as a timeout at the protocol layer.
    Blackhole,
}

/// A one-shot fault targeting the `nth` matching packet on a link
/// (`None` filters match any host).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Sending host filter, or `None` for any sender.
    pub from: Option<HostId>,
    /// Destination host filter, or `None` for any destination.
    pub to: Option<HostId>,
    /// 1-based index of the matching packet to hit.
    pub nth: u64,
    /// What to do to it.
    pub kind: WireFaultKind,
}

impl WireFault {
    /// Loses the `nth` packet from `from` to `to` once.
    pub fn drop_nth(from: HostId, to: HostId, nth: u64) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            nth,
            kind: WireFaultKind::DropOnce,
        }
    }

    /// Permanently loses the `nth` packet from `from` to `to` (all
    /// retransmissions included).
    pub fn blackhole_nth(from: HostId, to: HostId, nth: u64) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            nth,
            kind: WireFaultKind::Blackhole,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_roundtrips() {
        let w = WireFaults::disabled();
        assert!(!w.is_active());
        assert!(!w.to_plane().is_active());
    }

    #[test]
    fn lossy_and_scripted_convert_faithfully() {
        let mut w = WireFaults::lossy(13, 0.01, 0.005, 0.02);
        w.scripted
            .push(WireFault::blackhole_nth(HostId(1), HostId(0), 3));
        w.scripted
            .push(WireFault::drop_nth(HostId(2), HostId(0), 1));
        assert!(w.is_active());
        let p = w.to_plane();
        assert_eq!(p.drop, 0.01);
        assert_eq!(p.seed, 13);
        assert_eq!(p.scripted.len(), 2);
        assert_eq!(p.scripted[0].kind, ScriptedKind::Blackhole);
        assert_eq!(p.scripted[1].kind, ScriptedKind::DropOnce);
        assert_eq!(p.scripted[0].nth, 3);
    }
}
