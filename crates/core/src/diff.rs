//! Twins and run-length diffs (§4.2's comparison point, §5's extension).
//!
//! Millipage deliberately needs **no** diffs — that is the thin-layer
//! thesis. The paper still measures them to argue the point: "a run-length
//! diff operation (as described in Munin) for 4 KB page takes 250 µs and
//! decreases linearly with the size of the page. Obviously, this time is
//! not negligible, and would have dominated the overhead if it were
//! required in the DSM protocol." This module provides the twin/diff
//! machinery so the reproduction can (a) measure that cost and (b) build
//! the §5 reduced-consistency extension ([`crate::hlrc`]).

/// A run-length diff: a list of `(offset, bytes)` runs that changed
/// between a twin and the current page contents.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<(u32, Vec<u8>)>,
    source_len: usize,
}

impl Diff {
    /// Computes the run-length diff turning `twin` into `current`.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length.
    pub fn compute(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), current.len(), "twin/current size mismatch");
        let mut runs = Vec::new();
        let mut i = 0;
        while i < twin.len() {
            if twin[i] == current[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < twin.len() && twin[i] != current[i] {
                i += 1;
            }
            runs.push((start as u32, current[start..i].to_vec()));
        }
        Self {
            runs,
            source_len: twin.len(),
        }
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `target` is shorter than the diffed buffer.
    pub fn apply(&self, target: &mut [u8]) {
        assert!(
            target.len() >= self.source_len,
            "target shorter than the diffed page"
        );
        for (off, bytes) in &self.runs {
            let off = *off as usize;
            target[off..off + bytes.len()].copy_from_slice(bytes);
        }
    }

    /// Iterates `(offset, bytes)` runs (used to apply a diff in place
    /// without a whole-page read-modify-write).
    pub fn iter_runs(&self) -> impl Iterator<Item = (usize, &[u8])> {
        self.runs.iter().map(|(o, b)| (*o as usize, b.as_slice()))
    }

    /// Number of changed runs.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Total changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Wire size: 8 bytes of run header per run plus the changed bytes
    /// (the encoding Munin-style systems ship at release time).
    pub fn wire_bytes(&self) -> usize {
        self.runs.len() * 8 + self.changed_bytes()
    }

    /// Serializes the diff for the wire: `[source_len u32][n u32]` then
    /// `n` runs of `[offset u32][len u32][bytes]`, little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.wire_bytes());
        out.extend_from_slice(&(self.source_len as u32).to_le_bytes());
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for (off, bytes) in &self.runs {
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Parses a diff serialized by [`encode`](Diff::encode). Returns
    /// `None` on malformed input.
    pub fn decode(mut b: &[u8]) -> Option<Diff> {
        fn take_u32(b: &mut &[u8]) -> Option<u32> {
            let (head, rest) = b.split_first_chunk::<4>()?;
            *b = rest;
            Some(u32::from_le_bytes(*head))
        }
        let source_len = take_u32(&mut b)? as usize;
        let n = take_u32(&mut b)? as usize;
        let mut runs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let off = take_u32(&mut b)?;
            let len = take_u32(&mut b)? as usize;
            if b.len() < len || (off as usize + len) > source_len {
                return None;
            }
            runs.push((off, b[..len].to_vec()));
            b = &b[len..];
        }
        if !b.is_empty() {
            return None;
        }
        Some(Diff { runs, source_len })
    }
}

/// A twin: the pristine copy made on the first write to a page, later
/// diffed against the current contents.
#[derive(Clone, Debug)]
pub struct Twin {
    original: Vec<u8>,
}

impl Twin {
    /// Snapshots `page`.
    pub fn capture(page: &[u8]) -> Self {
        Self {
            original: page.to_vec(),
        }
    }

    /// Length of the twinned region.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// Whether the twin is empty.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Diffs the twin against the page's current contents.
    pub fn diff(&self, current: &[u8]) -> Diff {
        Diff::compute(&self.original, current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = vec![7u8; 256];
        let d = Diff::compute(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.runs(), 0);
        assert_eq!(d.changed_bytes(), 0);
    }

    #[test]
    fn diff_apply_roundtrip() {
        let twin = (0..200u8).collect::<Vec<_>>();
        let mut cur = twin.clone();
        cur[3] = 99;
        cur[4] = 98;
        cur[150] = 1;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.runs(), 2);
        assert_eq!(d.changed_bytes(), 3);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn adjacent_changes_merge_into_one_run() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        for b in cur[10..20].iter_mut() {
            *b = 5;
        }
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.runs(), 1);
        assert_eq!(d.changed_bytes(), 10);
        assert_eq!(d.wire_bytes(), 8 + 10);
    }

    #[test]
    fn twin_captures_and_diffs() {
        let mut page = vec![1u8; 128];
        let twin = Twin::capture(&page);
        assert_eq!(twin.len(), 128);
        page[0] = 2;
        let d = twin.diff(&page);
        assert_eq!(d.changed_bytes(), 1);
    }

    #[test]
    fn diffs_from_disjoint_writers_compose() {
        // The Munin insight: two hosts writing disjoint parts of a page
        // can both diff against the twin and both diffs apply cleanly.
        let twin = vec![0u8; 100];
        let mut a = twin.clone();
        let mut b = twin.clone();
        a[5] = 1;
        b[60] = 2;
        let da = Diff::compute(&twin, &a);
        let db = Diff::compute(&twin, &b);
        let mut merged = twin.clone();
        da.apply(&mut merged);
        db.apply(&mut merged);
        assert_eq!(merged[5], 1);
        assert_eq!(merged[60], 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_panics() {
        let _ = Diff::compute(&[0u8; 4], &[0u8; 5]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let twin = vec![0u8; 300];
        let mut cur = twin.clone();
        cur[3] = 1;
        cur[200] = 2;
        cur[201] = 3;
        let d = Diff::compute(&twin, &cur);
        let bytes = d.encode();
        let d2 = Diff::decode(&bytes).expect("valid encoding");
        assert_eq!(d, d2);
        let mut rebuilt = twin.clone();
        d2.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Diff::decode(&[1, 2, 3]).is_none());
        // Truncated run payload.
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[10] = 9;
        let mut bytes = Diff::compute(&twin, &cur).encode();
        bytes.truncate(bytes.len() - 1);
        assert!(Diff::decode(&bytes).is_none());
        // Trailing junk.
        let mut bytes2 = Diff::compute(&twin, &cur).encode();
        bytes2.push(0);
        assert!(Diff::decode(&bytes2).is_none());
    }
}
