//! Twins and run-length diffs (§4.2's comparison point, §5's extension).
//!
//! Millipage deliberately needs **no** diffs — that is the thin-layer
//! thesis. The paper still measures them to argue the point: "a run-length
//! diff operation (as described in Munin) for 4 KB page takes 250 µs and
//! decreases linearly with the size of the page. Obviously, this time is
//! not negligible, and would have dominated the overhead if it were
//! required in the DSM protocol." This module provides the twin/diff
//! machinery so the reproduction can (a) measure that cost and (b) build
//! the §5 reduced-consistency extension ([`crate::hlrc`]).
//!
//! The *virtual* cost of a diff is what [`sim_core::cost::CostModel`]
//! charges (61 ns/byte, the paper's 250 µs/4 KB); the implementation here
//! only has to be fast in *wall-clock* terms. `compute` scans u64 words
//! and refines byte-by-byte only inside a mismatching word; a diff stores
//! all changed bytes in one contiguous [`Bytes`] buffer with runs indexing
//! into it, so `decode` is zero-copy over the wire buffer (runs borrow the
//! incoming `Bytes`; no per-run `Vec` is ever allocated).

use bytes::Bytes;

/// One changed run: `len` bytes at page offset `off`, stored at `pos`
/// in the diff's shared data buffer.
#[derive(Clone, Copy, Debug)]
struct Run {
    off: u32,
    len: u32,
    pos: u32,
}

/// A run-length diff: a list of `(offset, bytes)` runs that changed
/// between a twin and the current page contents.
#[derive(Clone, Debug, Default)]
pub struct Diff {
    runs: Vec<Run>,
    /// Backing store for every run's bytes: the gathered changed bytes
    /// after [`compute`](Diff::compute), the whole wire buffer after
    /// [`decode`](Diff::decode).
    data: Bytes,
    source_len: usize,
}

/// All-ones in each byte; `x - LO` borrows out of exactly the zero bytes.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bit of each byte.
const HI: u64 = 0x8080_8080_8080_8080;

/// Reads the u64 at `b[i..i + 8]` (caller guarantees the bounds).
#[inline]
fn word_at(b: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(b[i..i + 8].try_into().unwrap())
}

/// Buffers up to this take the byte-at-a-time path in
/// [`Diff::compute`]. Measured crossover: at two words or fewer the word
/// scan's setup — the `word_at` bounds checks and the two-phase
/// find-start/find-end loop, run per word on at most two words — costs
/// more than it saves, while from 32 B up it wins decisively. The hot
/// small case is the 8-byte cell minipage (every `SharedCell<u64>` diff
/// under HLRC), which sits squarely on the byte path.
const WORD_SCAN_MIN: usize = 16;

impl Diff {
    /// Computes the run-length diff turning `twin` into `current`.
    ///
    /// Scans u64 words: equal words are skipped in one compare; inside a
    /// mismatching word `trailing_zeros` locates the first differing byte
    /// and the has-zero-byte trick locates the run's end, so run
    /// boundaries are byte-exact — identical to a byte-at-a-time scan.
    ///
    /// # Panics
    ///
    /// Panics if the buffers differ in length.
    pub fn compute(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), current.len(), "twin/current size mismatch");
        let n = twin.len();
        if n <= WORD_SCAN_MIN {
            return Self::compute_small(twin, current);
        }
        let mut runs = Vec::new();
        let mut data = Vec::new();
        let mut i = 0usize;
        while i < n {
            // Find the next differing byte, whole equal words at a time.
            while i + 8 <= n {
                let x = word_at(twin, i) ^ word_at(current, i);
                if x != 0 {
                    i += (x.trailing_zeros() / 8) as usize;
                    break;
                }
                i += 8;
            }
            while i < n && twin[i] == current[i] {
                i += 1; // tail bytes past the last whole word
            }
            if i >= n {
                break;
            }
            // Find the run's end: the next *equal* byte. A zero byte in
            // the xor word is an equal byte; the lowest set bit of the
            // has-zero mask is exactly the first one (no borrow can
            // propagate from below it).
            let start = i;
            while i + 8 <= n {
                let x = word_at(twin, i) ^ word_at(current, i);
                let z = x.wrapping_sub(LO) & !x & HI;
                if z != 0 {
                    i += (z.trailing_zeros() / 8) as usize;
                    break;
                }
                i += 8;
            }
            while i < n && twin[i] != current[i] {
                i += 1;
            }
            runs.push(Run {
                off: start as u32,
                len: (i - start) as u32,
                pos: data.len() as u32,
            });
            data.extend_from_slice(&current[start..i]);
        }
        Self {
            runs,
            data: Bytes::from(data),
            source_len: n,
        }
    }

    /// Byte-at-a-time [`compute`](Diff::compute) for buffers below
    /// [`WORD_SCAN_MIN`]. Produces exactly the same runs as the word scan
    /// (the word scan's boundaries are defined as byte-exact). The
    /// zipped-`position` scans compile to vectorized compares, which is
    /// what beats the word loop's per-word setup at minipage sizes.
    fn compute_small(twin: &[u8], current: &[u8]) -> Self {
        let n = twin.len();
        let mut runs = Vec::new();
        let mut data = Vec::new();
        let mut i = 0usize;
        while i < n {
            let Some(d) = twin[i..]
                .iter()
                .zip(&current[i..])
                .position(|(a, b)| a != b)
            else {
                break;
            };
            let start = i + d;
            let len = twin[start..]
                .iter()
                .zip(&current[start..])
                .position(|(a, b)| a == b)
                .unwrap_or(n - start);
            let end = start + len;
            runs.push(Run {
                off: start as u32,
                len: len as u32,
                pos: data.len() as u32,
            });
            data.extend_from_slice(&current[start..end]);
            i = end;
        }
        Self {
            runs,
            data: Bytes::from(data),
            source_len: n,
        }
    }

    /// The bytes of one run, borrowed from the shared data buffer.
    #[inline]
    fn run_bytes(&self, r: &Run) -> &[u8] {
        let p = r.pos as usize;
        &self.data[p..p + r.len as usize]
    }

    /// Applies the diff to `target` in place.
    ///
    /// # Panics
    ///
    /// Panics if `target` is shorter than the diffed buffer.
    pub fn apply(&self, target: &mut [u8]) {
        assert!(
            target.len() >= self.source_len,
            "target shorter than the diffed page"
        );
        for r in &self.runs {
            let off = r.off as usize;
            target[off..off + r.len as usize].copy_from_slice(self.run_bytes(r));
        }
    }

    /// Iterates `(offset, bytes)` runs (used to apply a diff in place
    /// without a whole-page read-modify-write).
    pub fn iter_runs(&self) -> impl Iterator<Item = (usize, &[u8])> {
        self.runs
            .iter()
            .map(|r| (r.off as usize, self.run_bytes(r)))
    }

    /// Number of changed runs.
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Total changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.len as usize).sum()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Length of the diffed buffer: every run fits inside it, and
    /// [`apply`](Diff::apply) requires a target at least this long.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Wire size: 8 bytes of run header per run plus the changed bytes
    /// (the encoding Munin-style systems ship at release time).
    pub fn wire_bytes(&self) -> usize {
        self.runs.len() * 8 + self.changed_bytes()
    }

    /// Serializes the diff for the wire: `[source_len u32][n u32]` then
    /// `n` runs of `[offset u32][len u32][bytes]`, little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.wire_bytes());
        out.extend_from_slice(&(self.source_len as u32).to_le_bytes());
        out.extend_from_slice(&(self.runs.len() as u32).to_le_bytes());
        for r in &self.runs {
            // One 8-byte header write per run instead of two 4-byte ones:
            // sparse diffs are header-dominated, so halving the reserve/
            // copy calls is measurable there.
            let mut hdr = [0u8; 8];
            hdr[..4].copy_from_slice(&r.off.to_le_bytes());
            hdr[4..].copy_from_slice(&r.len.to_le_bytes());
            out.extend_from_slice(&hdr);
            out.extend_from_slice(self.run_bytes(r));
        }
        out
    }

    /// Parses a diff serialized by [`encode`](Diff::encode) without
    /// copying: the returned diff's runs index into `wire` itself (an
    /// `Arc` refcount bump, no per-run allocation).
    ///
    /// Returns `None` on malformed input — truncated headers or payloads,
    /// trailing junk, or any run whose `offset + len` exceeds
    /// `source_len` (a hostile diff must not be able to make
    /// [`apply`](Diff::apply) write out of bounds). Callers surface this
    /// as a `ProtocolError`.
    pub fn decode(wire: &Bytes) -> Option<Diff> {
        let b: &[u8] = wire.as_ref();
        if b.len() > u32::MAX as usize {
            return None;
        }
        fn take_u32(b: &[u8], pos: &mut usize) -> Option<u32> {
            let v = b.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(u32::from_le_bytes(v.try_into().unwrap()))
        }
        let mut pos = 0usize;
        let source_len = take_u32(b, &mut pos)? as usize;
        let n = take_u32(b, &mut pos)? as usize;
        let mut runs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let off = take_u32(b, &mut pos)?;
            let len = take_u32(b, &mut pos)? as usize;
            if b.len() - pos < len || (off as usize).checked_add(len)? > source_len {
                return None;
            }
            runs.push(Run {
                off,
                len: len as u32,
                pos: pos as u32,
            });
            pos += len;
        }
        if pos != b.len() {
            return None;
        }
        Some(Diff {
            runs,
            data: wire.clone(),
            source_len,
        })
    }
}

/// Diffs are equal when they describe the same edit — same source length
/// and the same `(offset, bytes)` run sequence — regardless of whether
/// the bytes live in a gathered buffer or a borrowed wire buffer.
impl PartialEq for Diff {
    fn eq(&self, other: &Self) -> bool {
        self.source_len == other.source_len
            && self.runs.len() == other.runs.len()
            && self.iter_runs().eq(other.iter_runs())
    }
}

impl Eq for Diff {}

/// A twin: the pristine copy made on the first write to a page, later
/// diffed against the current contents.
#[derive(Clone, Debug)]
pub struct Twin {
    original: Vec<u8>,
}

impl Twin {
    /// Snapshots `page`.
    pub fn capture(page: &[u8]) -> Self {
        Self {
            original: page.to_vec(),
        }
    }

    /// Length of the twinned region.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// Whether the twin is empty.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Diffs the twin against the page's current contents.
    pub fn diff(&self, current: &[u8]) -> Diff {
        Diff::compute(&self.original, current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte-at-a-time scan the word-wise `compute` must match exactly.
    fn compute_bytewise(twin: &[u8], current: &[u8]) -> Vec<(usize, Vec<u8>)> {
        assert_eq!(twin.len(), current.len());
        let mut runs = Vec::new();
        let mut i = 0;
        while i < twin.len() {
            if twin[i] == current[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < twin.len() && twin[i] != current[i] {
                i += 1;
            }
            runs.push((start, current[start..i].to_vec()));
        }
        runs
    }

    fn assert_matches_reference(twin: &[u8], current: &[u8]) {
        let d = Diff::compute(twin, current);
        let reference = compute_bytewise(twin, current);
        let got: Vec<(usize, Vec<u8>)> = d.iter_runs().map(|(o, b)| (o, b.to_vec())).collect();
        assert_eq!(got, reference, "twin={twin:?} current={current:?}");
    }

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = vec![7u8; 256];
        let d = Diff::compute(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.runs(), 0);
        assert_eq!(d.changed_bytes(), 0);
    }

    #[test]
    fn diff_apply_roundtrip() {
        let twin = (0..200u8).collect::<Vec<_>>();
        let mut cur = twin.clone();
        cur[3] = 99;
        cur[4] = 98;
        cur[150] = 1;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.runs(), 2);
        assert_eq!(d.changed_bytes(), 3);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn adjacent_changes_merge_into_one_run() {
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        for b in cur[10..20].iter_mut() {
            *b = 5;
        }
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.runs(), 1);
        assert_eq!(d.changed_bytes(), 10);
        assert_eq!(d.wire_bytes(), 8 + 10);
    }

    #[test]
    fn word_scan_matches_bytewise_on_crafted_shapes() {
        // All equal, all different, and every run placement that
        // straddles, starts, or ends on a u64 word boundary — at a size
        // below WORD_SCAN_MIN (the byte fast path) and one above it (the
        // word scan).
        for n in [96usize, 192] {
            let twin: Vec<u8> = (0..n).map(|i| (i * 7 % 250) as u8).collect();
            assert_matches_reference(&twin, &twin);
            let all_diff: Vec<u8> = twin.iter().map(|b| b ^ 0xFF).collect();
            assert_matches_reference(&twin, &all_diff);
            for start in 0..24 {
                for len in 1..24 {
                    let mut cur = twin.clone();
                    for b in cur[start..start + len].iter_mut() {
                        *b ^= 0xFF;
                    }
                    assert_matches_reference(&twin, &cur);
                }
            }
        }
        // Changes in the tail past the last whole word.
        for n in [1usize, 7, 9, 15, 17] {
            let twin = vec![3u8; n];
            let mut cur = twin.clone();
            *cur.last_mut().unwrap() = 4;
            assert_matches_reference(&twin, &cur);
        }
    }

    #[test]
    fn small_and_word_paths_agree_across_the_threshold() {
        // The same change pattern computed just below and just above
        // WORD_SCAN_MIN must produce identical runs: the fast path is an
        // implementation detail, never a behavioral one.
        for n in [WORD_SCAN_MIN - 1, WORD_SCAN_MIN, WORD_SCAN_MIN + 9] {
            let twin: Vec<u8> = (0..n).map(|i| (i * 13 % 251) as u8).collect();
            let mut cur = twin.clone();
            for i in (3..n).step_by(17) {
                cur[i] ^= 0x40;
            }
            let d = Diff::compute(&twin, &cur);
            let small = Diff::compute_small(&twin, &cur);
            let a: Vec<(usize, Vec<u8>)> = d.iter_runs().map(|(o, b)| (o, b.to_vec())).collect();
            let b: Vec<(usize, Vec<u8>)> =
                small.iter_runs().map(|(o, b)| (o, b.to_vec())).collect();
            assert_eq!(a, b);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt);
            assert_eq!(rebuilt, cur);
        }
    }

    #[test]
    fn twin_captures_and_diffs() {
        let mut page = vec![1u8; 128];
        let twin = Twin::capture(&page);
        assert_eq!(twin.len(), 128);
        page[0] = 2;
        let d = twin.diff(&page);
        assert_eq!(d.changed_bytes(), 1);
    }

    #[test]
    fn diffs_from_disjoint_writers_compose() {
        // The Munin insight: two hosts writing disjoint parts of a page
        // can both diff against the twin and both diffs apply cleanly.
        let twin = vec![0u8; 100];
        let mut a = twin.clone();
        let mut b = twin.clone();
        a[5] = 1;
        b[60] = 2;
        let da = Diff::compute(&twin, &a);
        let db = Diff::compute(&twin, &b);
        let mut merged = twin.clone();
        da.apply(&mut merged);
        db.apply(&mut merged);
        assert_eq!(merged[5], 1);
        assert_eq!(merged[60], 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_panics() {
        let _ = Diff::compute(&[0u8; 4], &[0u8; 5]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let twin = vec![0u8; 300];
        let mut cur = twin.clone();
        cur[3] = 1;
        cur[200] = 2;
        cur[201] = 3;
        let d = Diff::compute(&twin, &cur);
        let bytes = Bytes::from(d.encode());
        let d2 = Diff::decode(&bytes).expect("valid encoding");
        assert_eq!(d, d2);
        let mut rebuilt = twin.clone();
        d2.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Diff::decode(&Bytes::from(vec![1, 2, 3])).is_none());
        // Truncated run payload.
        let twin = vec![0u8; 64];
        let mut cur = twin.clone();
        cur[10] = 9;
        let mut bytes = Diff::compute(&twin, &cur).encode();
        bytes.truncate(bytes.len() - 1);
        assert!(Diff::decode(&Bytes::from(bytes)).is_none());
        // Trailing junk.
        let mut bytes2 = Diff::compute(&twin, &cur).encode();
        bytes2.push(0);
        assert!(Diff::decode(&Bytes::from(bytes2)).is_none());
    }

    #[test]
    fn decode_rejects_runs_past_source_len() {
        // A hostile run claims offset+len beyond the page: apply() on a
        // source_len-sized target would write out of bounds. decode must
        // reject it, not defer the crash.
        let mut wire = Vec::new();
        wire.extend_from_slice(&16u32.to_le_bytes()); // source_len = 16
        wire.extend_from_slice(&1u32.to_le_bytes()); // one run
        wire.extend_from_slice(&12u32.to_le_bytes()); // offset 12
        wire.extend_from_slice(&8u32.to_le_bytes()); // len 8: 12+8 > 16
        wire.extend_from_slice(&[0xAA; 8]);
        assert!(Diff::decode(&Bytes::from(wire)).is_none());
        // Offset alone past the end, zero-length payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(&16u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.extend_from_slice(&17u32.to_le_bytes());
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(0xAA);
        assert!(Diff::decode(&Bytes::from(wire)).is_none());
    }

    #[test]
    fn decoded_diff_borrows_the_wire_buffer() {
        let twin = vec![0u8; 4096];
        let mut cur = twin.clone();
        for b in cur[100..300].iter_mut() {
            *b = 7;
        }
        let wire = Bytes::from(Diff::compute(&twin, &cur).encode());
        let d = Diff::decode(&wire).expect("valid");
        let (_, run) = d.iter_runs().next().expect("one run");
        // Zero-copy: the run's bytes live inside the wire allocation.
        let wire_range = wire.as_ref().as_ptr_range();
        assert!(wire_range.contains(&run.as_ptr()));
    }
}
