//! End-to-end protocol smoke tests for the Millipage cluster.

use millipage::{run, AllocMode, Category, ClusterConfig, CostModel, HostId};

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        seed: 1,
        ..ClusterConfig::default()
    }
}

#[test]
fn single_host_allocates_reads_writes() {
    let report = run(
        cfg(1),
        |setup| setup.alloc_vec::<u64>(16),
        |ctx, sv| {
            for i in 0..16 {
                ctx.set(sv, i, (i * i) as u64);
            }
            for i in 0..16 {
                assert_eq!(ctx.get(sv, i), (i * i) as u64);
            }
        },
    );
    assert_eq!(report.hosts, 1);
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    // Manager host owns fresh allocations: no faults at all.
    assert_eq!(report.read_faults, 0);
    assert_eq!(report.write_faults, 0);
}

#[test]
fn remote_host_faults_data_in() {
    let report = run(
        cfg(2),
        |setup| setup.alloc_vec_init::<u32>(&[10, 20, 30, 40]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                // First touch on host 1: a read fault fetches the minipage.
                assert_eq!(ctx.get(sv, 2), 30);
                // Second read: no further fault.
                assert_eq!(ctx.get(sv, 3), 40);
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.read_faults, 1);
    assert_eq!(report.write_faults, 0);
    assert_eq!(report.barriers, 1);
    assert!(report.virtual_time > 0);
}

#[test]
fn write_invalidates_read_copies() {
    let report = run(
        cfg(4),
        |setup| setup.alloc_vec_init::<u32>(&[0; 8]),
        |ctx, sv| {
            // Everyone reads (read copies everywhere).
            let _ = ctx.get(sv, 0);
            ctx.barrier();
            // Host 3 writes: all other copies must be invalidated.
            if ctx.host() == HostId(3) {
                ctx.set(sv, 0, 99);
            }
            ctx.barrier();
            // Everyone re-reads the new value (sequential consistency).
            assert_eq!(ctx.get(sv, 0), 99);
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.write_faults, 1);
    assert!(
        report.invalidations >= 3,
        "invalidations = {}",
        report.invalidations
    );
    assert_eq!(report.barriers, 3);
}

#[test]
fn false_sharing_is_absent_with_fine_grain() {
    // Two variables that would share a page get independent minipages:
    // ping-pong writes to one never invalidate the other.
    let report = run(
        cfg(2),
        |setup| {
            let a = setup.alloc_vec_init::<u64>(&[0]);
            let b = setup.alloc_vec_init::<u64>(&[0]);
            (a, b)
        },
        |ctx, (a, b)| {
            // Barrier-paced so the interleaving is deterministic.
            let mine = if ctx.host() == HostId(0) { a } else { b };
            for _ in 0..20 {
                let v = ctx.get(mine, 0);
                ctx.set(mine, 0, v + 1);
                ctx.barrier();
            }
            if ctx.host() == HostId(0) {
                assert_eq!(ctx.get(a, 0), 20);
                assert_eq!(ctx.get(b, 0), 20);
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    // Host 1 write-faults once on b; host 0 reads b once at the end.
    // Steady-state iterations cause no further protocol traffic.
    assert!(
        report.write_faults <= 2,
        "write faults = {}",
        report.write_faults
    );
    assert!(
        report.read_faults <= 3,
        "read faults = {}",
        report.read_faults
    );
}

#[test]
fn page_grain_baseline_false_shares() {
    // The same program under the page-grain baseline ping-pongs: the two
    // u64s share one page-size minipage.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::PageGrain,
            ..cfg(2)
        },
        |setup| {
            let a = setup.alloc_vec_init::<u64>(&[0]);
            let b = setup.alloc_vec_init::<u64>(&[0]);
            (a, b)
        },
        |ctx, (a, b)| {
            // Identical barrier-paced program as the fine-grain test above.
            let mine = if ctx.host() == HostId(0) { a } else { b };
            for _ in 0..20 {
                let v = ctx.get(mine, 0);
                ctx.set(mine, 0, v + 1);
                ctx.barrier();
            }
            if ctx.host() == HostId(0) {
                assert_eq!(ctx.get(a, 0), 20);
                assert_eq!(ctx.get(b, 0), 20);
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(
        report.write_faults + report.read_faults > 20,
        "expected heavy false sharing, got r={} w={}",
        report.read_faults,
        report.write_faults
    );
}

#[test]
fn locks_provide_mutual_exclusion() {
    const N: usize = 40;
    let report = run(
        cfg(4),
        |setup| setup.alloc_vec_init::<u64>(&[0]),
        |ctx, sv| {
            for _ in 0..N {
                ctx.lock(1);
                let v = ctx.get(sv, 0);
                ctx.compute(1_000);
                ctx.set(sv, 0, v + 1);
                ctx.unlock(1);
            }
            ctx.barrier();
            assert_eq!(ctx.get(sv, 0), (4 * N) as u64);
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.lock_acquires, (4 * N) as u64);
    assert!(report.breakdown.get(Category::Synch) > 0);
}

#[test]
fn barrier_synchronizes_virtual_time() {
    let report = run(
        cfg(3),
        |_| (),
        |ctx, ()| {
            if ctx.host() == HostId(2) {
                ctx.compute(50_000_000); // 50 ms of work on one host.
            }
            ctx.barrier();
            // After the barrier everyone's clock passed the slow host's.
            assert!(ctx.now() >= 50_000_000);
        },
    );
    assert!(report.virtual_time >= 50_000_000);
    assert_eq!(report.barriers, 1);
}

#[test]
fn push_distributes_read_copies() {
    let report = run(
        cfg(4),
        |setup| setup.alloc_cell_init::<u64>(7),
        |ctx, c| {
            if ctx.host() == HostId(0) {
                ctx.cell_set(c, 123);
                ctx.push_cell(c);
            }
            ctx.barrier();
            // Readers find a pushed local copy; only hosts that missed the
            // push window fault.
            assert_eq!(ctx.cell_get(c), 123);
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.pushes, 1);
    assert_eq!(report.read_faults, 0, "push should pre-populate all hosts");
}

#[test]
fn competing_requests_are_counted() {
    let report = run(
        cfg(8),
        |setup| setup.alloc_vec_init::<u64>(&[0]),
        |ctx, sv| {
            // Everyone hammers the same minipage with writes.
            for _ in 0..5 {
                let h = ctx.host().0 as u64;
                ctx.set(sv, 0, h);
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(
        report.competing_requests > 0,
        "8 hosts hammering one minipage must queue at the manager"
    );
}

#[test]
fn prefetch_avoids_read_fault_category() {
    let report = run(
        cfg(2),
        |setup| setup.alloc_vec_init::<u64>(&[1, 2, 3, 4]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                ctx.prefetch_vec(sv);
                ctx.compute(10_000_000); // Plenty of time for data to land.
                assert_eq!(ctx.get(sv, 0), 1);
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.prefetches, 1);
    assert_eq!(report.read_faults, 0);
}

#[test]
fn virtual_time_reflects_fault_latency() {
    // One remote read on otherwise idle hosts: the paper's ballpark is
    // ~200-300 µs for a small minipage (Table 1 / §4.2). Accept a broad
    // window but reject wildly wrong accounting.
    let report = run(
        cfg(2),
        |setup| setup.alloc_vec_init::<u32>(&[5; 32]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                assert_eq!(ctx.get(sv, 0), 5);
            }
        },
    );
    let t = report.virtual_time;
    assert!(
        (100_000..1_000_000).contains(&t),
        "one idle-host remote read took {t} ns"
    );
    assert!(report.per_host[1].breakdown.get(Category::ReadFault) > 0);
}
