//! The software TLB against the coherence protocol: a protection change
//! made by the protocol (invalidation, downgrade) must defeat cached
//! entries — a stale hit would return old data or allow a write the
//! protocol revoked.

use millipage::{run, ClusterConfig, Consistency};

fn cfg(hosts: usize, consistency: Consistency) -> ClusterConfig {
    ClusterConfig {
        hosts,
        consistency,
        ..ClusterConfig::default()
    }
}

/// Two hosts alternate writes to the same element with barriers between.
/// Each write invalidates the peer's copy; every read afterwards must see
/// the latest value, never a stale TLB hit of the pre-invalidation copy.
#[test]
fn alternating_writers_never_read_stale_data() {
    let report = run(
        cfg(2, Consistency::SequentialSwMr),
        |s| s.alloc_vec_init(&[0u64; 8]),
        |ctx, sv| {
            let me = ctx.host().0 as u64;
            for round in 1..=20u64 {
                let writer = round % 2;
                if me == writer {
                    // Repeated accesses within the round make the TLB hot.
                    for i in 0..8 {
                        ctx.set(sv, i, round * 100 + i as u64);
                    }
                }
                ctx.barrier();
                for i in 0..8 {
                    let v = ctx.get(sv, i);
                    assert_eq!(
                        v,
                        round * 100 + i as u64,
                        "host {me} read stale element {i} in round {round}"
                    );
                }
                ctx.barrier();
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(report.protocol_errors.is_empty());
}

/// Same shape under HLRC: release/acquire at the barrier must invalidate
/// cached read mappings so the next round's reads refetch the home copy.
#[test]
fn alternating_writers_never_read_stale_data_hlrc() {
    let report = run(
        cfg(2, Consistency::HomeEagerRc),
        |s| s.alloc_vec_init(&[0u64; 8]),
        |ctx, sv| {
            let me = ctx.host().0 as u64;
            for round in 1..=10u64 {
                let writer = round % 2;
                if me == writer {
                    for i in 0..8 {
                        ctx.set(sv, i, round * 100 + i as u64);
                    }
                }
                ctx.barrier();
                for i in 0..8 {
                    let v = ctx.get(sv, i);
                    assert_eq!(
                        v,
                        round * 100 + i as u64,
                        "host {me} read stale element {i} in round {round}"
                    );
                }
                ctx.barrier();
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(report.protocol_errors.is_empty());
}

/// A downgraded writer (peer read forced ReadOnly) must fault on its next
/// write instead of writing through a stale ReadWrite TLB entry — that
/// write-through would bypass the single-writer protocol entirely.
#[test]
fn downgraded_writer_refaults_instead_of_writing_through() {
    let report = run(
        cfg(2, Consistency::SequentialSwMr),
        |s| s.alloc_vec_init(&[0u64; 4]),
        |ctx, sv| {
            let me = ctx.host().0;
            if me == 0 {
                ctx.set(sv, 0, 1); // own it writable, TLB hot
                ctx.barrier();
                // Host 1 reads between these two barriers; that read
                // downgraded our copy to ReadOnly. The next write must
                // take a fresh write fault (ownership round trip), not
                // hit the cached ReadWrite entry.
                ctx.barrier();
                ctx.set(sv, 0, 2);
                ctx.barrier();
            } else {
                ctx.barrier();
                assert_eq!(ctx.get(sv, 0), 1);
                ctx.barrier();
                ctx.barrier();
                assert_eq!(ctx.get(sv, 0), 2);
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    // Host 0 allocated the vector so its first write hits an already
    // writable copy (no fault). The second write lands after host 1's
    // read downgraded the copy, so it must fault — if the stale
    // ReadWrite TLB entry had written through, no write fault at all
    // would be recorded.
    assert!(
        report.per_host[0].write_faults >= 1,
        "downgrade did not force a refault: {} write faults",
        report.per_host[0].write_faults
    );
}
