//! Edge-case integration tests of the cluster API surface.

use millipage::{
    run, AllocMode, Category, ClusterConfig, Consistency, CostModel, HostId, SchedMode, WireFault,
    WireFaults,
};
use parking_lot::Mutex;

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 128,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        seed: 77,
        ..ClusterConfig::default()
    }
}

#[test]
fn runtime_allocation_from_non_manager_host() {
    // §3.2's malloc-like API is callable mid-run from any host.
    let addr_box = Mutex::new(None);
    let report = run(
        cfg(3),
        |_| (),
        |ctx, ()| {
            if ctx.host() == HostId(2) {
                let sv = ctx.alloc_vec::<u64>(4);
                ctx.set(&sv, 0, 99);
                *addr_box.lock() = Some(sv);
            }
            ctx.barrier();
            if ctx.host() == HostId(0) {
                let sv = addr_box.lock().expect("allocated");
                assert_eq!(ctx.get(&sv, 0), 99);
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    // The remote host had to claim the fresh minipage from the manager.
    assert!(report.write_faults >= 1);
}

#[test]
fn minipage_spanning_multiple_pages_transfers_whole() {
    // A large allocation is one spanning minipage (§2.4): a single fault
    // moves all of it.
    let report = run(
        cfg(2),
        |s| s.alloc_vec_init::<u8>(&vec![7u8; 3 * 4096 + 128]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                assert_eq!(ctx.get(sv, 0), 7);
                // The far end is present without another fault.
                assert_eq!(ctx.get(sv, 3 * 4096 + 127), 7);
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert_eq!(
        report.read_faults, 1,
        "one fault covers the spanning minipage"
    );
}

#[test]
fn writes_crossing_minipage_boundaries_fault_each() {
    // Page-grain mode: an allocation crossing a page boundary spans two
    // whole-page minipages; a write covering the seam takes two faults.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::PageGrain,
            ..cfg(2)
        },
        |s| {
            let _pad = s.alloc_bytes(4000);
            s.alloc_vec_init::<u8>(&[1u8; 200]) // Crosses into page 1.
        },
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                ctx.write_range(sv, 0, &[9u8; 200]);
            }
            ctx.barrier();
            assert_eq!(ctx.get(sv, 0), 9);
            assert_eq!(ctx.get(sv, 199), 9);
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert_eq!(report.write_faults, 2, "one fault per covered minipage");
}

#[test]
fn timer_reset_scopes_the_breakdown() {
    let out = Mutex::new((0u64, 0u64));
    run(
        cfg(1),
        |_| (),
        |ctx, ()| {
            ctx.compute(5_000_000);
            ctx.timer_reset();
            ctx.compute(1_000_000);
            *out.lock() = (ctx.timed(), ctx.timed_breakdown().get(Category::Comp));
        },
    );
    let (timed, comp) = out.into_inner();
    assert_eq!(timed, 1_000_000);
    assert_eq!(comp, 1_000_000);
}

#[test]
fn fetch_group_overlaps_fetches() {
    // Composed-view group fetch (§5): pulling 24 minipages as a group
    // must cost far less than 24 serial fault round trips. The serial vs
    // grouped timing ratio depends on how host 1's faults interleave with
    // host 0's server, so the comparison runs under the deterministic
    // scheduler: one canonical interleaving, stable virtual times.
    let serial = Mutex::new(0u64);
    let grouped = Mutex::new(0u64);
    let report = run(
        ClusterConfig {
            sched: SchedMode::deterministic(),
            ..cfg(2)
        },
        |s| {
            let a: Vec<_> = (0..24).map(|_| s.alloc_vec_init::<u64>(&[1; 8])).collect();
            let b: Vec<_> = (0..24).map(|_| s.alloc_vec_init::<u64>(&[2; 8])).collect();
            (a, b)
        },
        |ctx, (a, b)| {
            if ctx.host() == HostId(1) {
                let t0 = ctx.now();
                for sv in a {
                    let _ = ctx.get(sv, 0); // Serial faulting.
                }
                *serial.lock() = ctx.now() - t0;
                let t1 = ctx.now();
                ctx.fetch_group(b);
                for sv in b {
                    assert_eq!(ctx.get(sv, 0), 2);
                }
                *grouped.lock() = ctx.now() - t1;
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    let (s, g) = (serial.into_inner(), grouped.into_inner());
    assert!(
        g * 2 < s,
        "group fetch must overlap latencies: serial={s} grouped={g}"
    );
    assert!(report.prefetches >= 24);
}

#[test]
fn sixteen_hosts_work() {
    // The paper stops at 8; the implementation supports more.
    let report = run(
        cfg(16),
        |s| s.alloc_cell_init::<u64>(0),
        |ctx, c| {
            ctx.lock(1);
            let v = ctx.cell_get(c);
            ctx.cell_set(c, v + 1);
            ctx.unlock(1);
            ctx.barrier();
            assert_eq!(ctx.cell_get(c), 16);
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert_eq!(report.lock_acquires, 16);
}

#[test]
fn crossing_writes_do_not_deadlock() {
    // Regression: a write range spanning two page-grain minipages holds
    // minipage A's service window while faulting on minipage B; two hosts
    // with interleaved grants used to deadlock (each queued behind the
    // other's un-acked window). The fault path now closes its windows
    // before requesting the next minipage, like the real system's
    // instruction-grained faults.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::PageGrain,
            ..cfg(4)
        },
        |s| {
            let _pad = s.alloc_bytes(4000);
            s.alloc_vec_init::<u8>(&[0u8; 200]) // Straddles a page boundary.
        },
        |ctx, sv| {
            let me = ctx.host().index() as u8;
            for round in 0..60u8 {
                ctx.write_range(sv, 0, &[me.wrapping_add(round); 200]);
                let back = ctx.read_range(sv, 0..200);
                // Coherent per page: every byte equals SOME host's write.
                assert!(back
                    .iter()
                    .all(|&b| b.wrapping_sub(back[0]).min(back[0].wrapping_sub(b)) < 64));
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert!(report.write_faults > 10, "the test must actually contend");
}

#[test]
#[should_panic(expected = "application bug on h1")]
fn early_app_panic_terminates_cleanly() {
    // Regression: an application thread that dies early (here: an assert
    // firing before the barrier) used to leave its siblings parked on
    // protocol waits nobody would ever fulfill — the scope join hung the
    // whole cluster. The failing thread now cancels every host's pending
    // waiters before anyone joins, the servers shut down, and the original
    // panic resumes (siblings' cancellations become typed protocol errors,
    // not panics). This test must *fail fast*, never hang.
    run(
        cfg(3),
        |_| (),
        |ctx, ()| {
            if ctx.host() == HostId(1) {
                panic!("application bug on h1");
            }
            ctx.barrier(); // h0/h2 park here until the cancel sweep.
        },
    );
}

#[test]
fn blackholed_request_surfaces_as_protocol_error() {
    // A scripted blackhole eats every transmission of h1's first request
    // to the manager (the read-fault request and all its retransmits). The
    // send exhausts its retransmit budget, surfaces as a typed timeout on
    // the faulting thread, and the cluster shuts down cleanly with the
    // error reported on the run — no hang, no propagated panic.
    let report = run(
        ClusterConfig {
            faults: WireFaults {
                scripted: vec![WireFault::blackhole_nth(HostId(1), HostId(0), 1)],
                ..WireFaults::disabled()
            },
            request_timeout: Some(std::time::Duration::from_millis(500)),
            ..cfg(2)
        },
        |s| s.alloc_vec_init::<u64>(&[7; 8]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                let _ = ctx.get(sv, 0); // First h1 -> h0 packet: blackholed.
            }
            ctx.barrier();
        },
    );
    assert!(
        report
            .protocol_errors
            .iter()
            .any(|e| e.contains("timed out")),
        "expected a surfaced timeout, got {:?}",
        report.protocol_errors
    );
    let nf = report.net_faults.expect("fault plane was active");
    assert_eq!(nf.expired, 1, "exactly the blackholed send expired");
}

#[test]
fn hlrc_and_page_grain_compose() {
    // Release consistency over page-grain allocation: heavy false sharing
    // becomes concurrent-writer merging.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::PageGrain,
            consistency: Consistency::HomeEagerRc,
            ..cfg(4)
        },
        |s| {
            let cells: Vec<_> = (0..4).map(|_| s.alloc_cell_init::<u64>(0)).collect();
            cells
        },
        |ctx, cells| {
            let me = ctx.host().index();
            for round in 1..=10u64 {
                ctx.cell_set(&cells[me], round);
                ctx.barrier();
            }
            for (h, c) in cells.iter().enumerate() {
                assert_eq!(ctx.cell_get(c), 10, "cell {h}");
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(report.rc_diffs > 0);
}
