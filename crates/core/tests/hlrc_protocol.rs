//! Tests of the §5 release-consistency extension (`Consistency::HomeEagerRc`).

use millipage::{run, AllocMode, ClusterConfig, Consistency, CostModel, HostId};
use parking_lot::Mutex;

fn cfg(hosts: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        consistency: Consistency::HomeEagerRc,
        seed: 9,
        ..ClusterConfig::default()
    }
}

#[test]
fn rc_single_host_reads_and_writes() {
    let report = run(
        cfg(1),
        |s| s.alloc_vec_init::<u64>(&[0; 8]),
        |ctx, sv| {
            for i in 0..8 {
                ctx.set(sv, i, i as u64 * 3);
            }
            ctx.barrier();
            for i in 0..8 {
                assert_eq!(ctx.get(sv, i), i as u64 * 3);
            }
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    // The manager host writes through the twin path even at home.
    assert!(report.write_faults >= 1);
    assert!(report.rc_diffs >= 1, "the flush must ship a diff home");
}

#[test]
fn rc_barrier_publishes_writes() {
    let report = run(
        cfg(4),
        |s| s.alloc_vec_init::<u64>(&[0; 4]),
        |ctx, sv| {
            let me = ctx.host().index();
            ctx.set(sv, me, (me + 1) as u64 * 100);
            ctx.barrier();
            // Everyone observes everyone's barrier-published write.
            for h in 0..4 {
                assert_eq!(ctx.get(sv, h), (h + 1) as u64 * 100);
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
}

#[test]
fn rc_concurrent_writers_on_one_minipage_merge() {
    // The point of the extension: four hosts write DISJOINT elements of
    // the SAME (chunked) minipage concurrently. SW/MR would ping-pong the
    // single writable copy; HLRC lets everyone write locally and merges
    // the diffs at the barrier.
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::FineGrain { chunking: 4 },
            ..cfg(4)
        },
        |s| {
            // Four 128-byte allocations chunked into one 512-byte minipage.
            let parts: Vec<_> = (0..4).map(|_| s.alloc_vec::<u64>(16)).collect();
            for p in &parts {
                s.write_vec(p, 0, &[0u64; 16]);
            }
            parts
        },
        |ctx, parts| {
            let me = ctx.host().index();
            ctx.barrier();
            for i in 0..16 {
                ctx.set(&parts[me], i, (me * 1000 + i) as u64);
            }
            ctx.barrier();
            for h in 0..4 {
                for i in 0..16 {
                    assert_eq!(
                        ctx.get(&parts[h], i),
                        (h * 1000 + i) as u64,
                        "host {me} sees host {h}'s writes merged"
                    );
                }
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert!(
        report.rc_diffs >= 3,
        "each writer ships a diff: {}",
        report.rc_diffs
    );
}

#[test]
fn rc_concurrent_writers_do_not_serialize() {
    // Four hosts write disjoint quarters of ONE chunked minipage in every
    // phase. Under SW/MR the single writable copy must visit all four
    // hosts serially (each transfer queueing behind the previous service
    // window); under HLRC all four fetch in parallel, write locally, and
    // merge diffs at the barrier. The parallel-writer protocol must win
    // on virtual time — that is §5's claim.
    // Host 0 (manager/home) only computes and synchronizes; hosts 1..4
    // write and are busy computing between phases, so under SW/MR every
    // steal is served by a *busy* host's sweeper (§3.5.1's ~500 µs
    // delay), serially — while under HLRC the responsive home serves all
    // fetches and merges all diffs.
    let program = |consistency: Consistency| {
        let r = run(
            ClusterConfig {
                alloc_mode: AllocMode::FineGrain { chunking: 4 },
                consistency,
                ..cfg(5)
            },
            |s| {
                let parts: Vec<_> = (0..4).map(|_| s.alloc_vec_init::<u64>(&[0; 16])).collect();
                parts
            },
            |ctx, parts| {
                let me = ctx.host().index();
                for round in 0..15u64 {
                    if me > 0 {
                        for i in 0..16 {
                            ctx.set(&parts[me - 1], i, round * 100 + i as u64);
                        }
                    }
                    ctx.compute(3_000_000); // Stay busy: starve the poller.
                    ctx.barrier();
                }
            },
        );
        assert!(
            r.coherence_violations.is_empty(),
            "{:?}",
            r.coherence_violations
        );
        r.virtual_time
    };
    let sc = program(Consistency::SequentialSwMr);
    let rc = program(Consistency::HomeEagerRc);
    assert!(
        rc < sc,
        "concurrent disjoint writers must be faster under HLRC: rc={rc} sc={sc}"
    );
}

#[test]
fn rc_lock_release_publishes_to_next_acquirer() {
    let report = run(
        cfg(4),
        |s| s.alloc_cell_init::<u64>(0),
        |ctx, c| {
            for _ in 0..12 {
                ctx.lock(7);
                let v = ctx.cell_get(c);
                ctx.compute(2_000);
                ctx.cell_set(c, v + 1);
                ctx.unlock(7); // Release: flushes the dirty cell home.
            }
            ctx.barrier();
            assert_eq!(ctx.cell_get(c), 48);
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(report.lock_acquires, 48);
}

#[test]
fn rc_reads_always_one_hop_from_home() {
    // Three hosts; host 2 writes and flushes; host 1 reads. Under HLRC
    // the read is served by the home directly (no forwarding).
    let out = Mutex::new(0u64);
    let report = run(
        cfg(3),
        |s| s.alloc_cell_init::<u64>(5),
        |ctx, c| {
            if ctx.host() == HostId(2) {
                ctx.cell_set(c, 77);
            }
            ctx.barrier();
            if ctx.host() == HostId(1) {
                *out.lock() = ctx.cell_get(c);
            }
            ctx.barrier();
        },
    );
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
    assert_eq!(out.into_inner(), 77);
}

#[test]
fn rc_mid_phase_invalidation_preserves_dirty_writes() {
    // Host 1 dirties minipage M and, before reaching its barrier, host 2's
    // flush of the same minipage invalidates host 1's copy. Host 1's
    // writes-so-far must be diffed home by the invalidation handler, not
    // lost. Disjoint bytes (DRF at byte level).
    let report = run(
        ClusterConfig {
            alloc_mode: AllocMode::FineGrain { chunking: 2 },
            ..cfg(3)
        },
        |s| {
            let a = s.alloc_vec_init::<u64>(&[0; 4]);
            let b = s.alloc_vec_init::<u64>(&[0; 4]);
            (a, b)
        },
        |ctx, (a, b)| {
            match ctx.host().index() {
                1 => {
                    ctx.set(a, 0, 111); // Dirty the chunked minipage.
                    ctx.compute(20_000_000); // Stay mid-phase a long time.
                }
                2 => {
                    ctx.set(b, 0, 222);
                    ctx.barrier(); // Early flush → invalidates host 1.
                    return;
                }
                _ => {}
            }
            ctx.barrier();
        },
    );
    // Ordering note: host 2 hits the barrier early; hosts 0/1 arrive
    // later. After the final quiesce both writes must be in the home copy.
    assert!(
        report.coherence_violations.is_empty(),
        "{:?}",
        report.coherence_violations
    );
}
