//! Multithreaded hosts (§3.4): "millipage is multithreaded and its
//! architecture supports multithreaded applications ... only a single
//! instance of the application should be executed on each host, even if
//! this host is a multi-processor (SMP) machine."

use millipage::{run, AllocMode, ClusterConfig, CostModel, HostId};
use parking_lot::Mutex;

fn cfg(hosts: usize, threads: usize) -> ClusterConfig {
    ClusterConfig {
        hosts,
        views: 8,
        pages: 64,
        cost: CostModel::default(),
        alloc_mode: AllocMode::FINE,
        threads_per_host: threads,
        seed: 31,
        ..ClusterConfig::default()
    }
}

#[test]
fn threads_have_distinct_identities() {
    let seen = Mutex::new(Vec::new());
    let report = run(
        cfg(2, 3),
        |_| (),
        |ctx, ()| {
            seen.lock().push((ctx.host(), ctx.thread()));
            ctx.barrier();
        },
    );
    let mut ids = seen.into_inner();
    ids.sort();
    let want: Vec<(HostId, usize)> = (0..2)
        .flat_map(|h| (0..3).map(move |t| (HostId(h as u16), t)))
        .collect();
    assert_eq!(ids, want);
    assert_eq!(report.per_host.len(), 6);
    assert_eq!(report.barriers, 1, "barrier quorum covers all threads");
}

#[test]
fn smp_threads_share_their_host_memory_without_faults() {
    // Two threads on the manager host write different elements: same
    // address space, no protocol traffic at all.
    let report = run(
        cfg(1, 2),
        |s| s.alloc_vec_init::<u64>(&[0; 8]),
        |ctx, sv| {
            let t = ctx.thread();
            ctx.set(sv, t, (t + 1) as u64);
            ctx.barrier();
            assert_eq!(ctx.get(sv, 0), 1);
            assert_eq!(ctx.get(sv, 1), 2);
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert_eq!(report.read_faults + report.write_faults, 0);
}

#[test]
fn lock_protected_counter_across_hosts_and_threads() {
    const PER_THREAD: u64 = 15;
    let report = run(
        cfg(2, 2),
        |s| s.alloc_cell_init::<u64>(0),
        |ctx, c| {
            for _ in 0..PER_THREAD {
                ctx.lock(3);
                let v = ctx.cell_get(c);
                ctx.compute(1_000);
                ctx.cell_set(c, v + 1);
                ctx.unlock(3);
            }
            ctx.barrier();
            assert_eq!(ctx.cell_get(c), 4 * PER_THREAD);
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert_eq!(report.lock_acquires, 4 * PER_THREAD);
}

#[test]
fn concurrent_same_host_faults_on_one_minipage_resolve() {
    // Both threads of a remote host touch the same absent minipage at
    // once: one fault fetches it, the competing request queues at the
    // manager, and both threads proceed.
    let report = run(
        cfg(2, 2),
        |s| s.alloc_vec_init::<u32>(&[7; 16]),
        |ctx, sv| {
            if ctx.host() == HostId(1) {
                assert_eq!(ctx.get(sv, ctx.thread()), 7);
            }
            ctx.barrier();
        },
    );
    assert!(report.coherence_violations.is_empty());
    assert!(report.read_faults >= 1);
}

#[test]
fn breakdown_reports_are_per_thread() {
    let report = run(
        cfg(2, 2),
        |_| (),
        |ctx, ()| {
            // Thread 1 of each host computes twice as long.
            ctx.compute(1_000_000 * (ctx.thread() as u64 + 1));
            ctx.barrier();
        },
    );
    for rep in &report.per_host {
        let comp = rep.breakdown.get(millipage::Category::Comp);
        let want = 1_000_000 * (rep.thread as u64 + 1);
        assert_eq!(comp, want, "host {} thread {}", rep.host, rep.thread);
    }
}
