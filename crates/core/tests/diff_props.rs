//! Property-based tests of the word-scanning diff against a byte-wise
//! reference implementation (the algorithm the paper describes, kept here
//! as the specification the optimized scan must match run for run).

use bytes::Bytes;
use millipage::diff::{Diff, Twin};
use proptest::prelude::*;

/// The specification: the naive byte-at-a-time run scan.
fn reference_runs(twin: &[u8], current: &[u8]) -> Vec<(usize, Vec<u8>)> {
    assert_eq!(twin.len(), current.len());
    let mut runs = Vec::new();
    let mut i = 0;
    while i < twin.len() {
        if twin[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < twin.len() && twin[i] != current[i] {
            i += 1;
        }
        runs.push((start, current[start..i].to_vec()));
    }
    runs
}

/// Builds a (twin, current) pair of `len` bytes: `twin` from `seed`,
/// `current` by flipping the bytes `edits` selects (offset, run length).
fn build_pair(len: usize, seed: u8, edits: &[(u16, u8)]) -> (Vec<u8>, Vec<u8>) {
    let twin: Vec<u8> = (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect();
    let mut cur = twin.clone();
    for &(off, run) in edits {
        let start = off as usize % len.max(1);
        for b in cur.iter_mut().skip(start).take(run as usize % 17 + 1) {
            *b ^= 0xFF;
        }
    }
    (twin, cur)
}

proptest! {
    /// Word-wise compute produces byte-identical runs to the byte-wise
    /// reference on random edit patterns — including none (all-equal) and
    /// runs straddling u64 word boundaries, which `edits` hits constantly
    /// since offsets are arbitrary.
    #[test]
    fn compute_matches_bytewise_reference(
        len in 1usize..700,
        seed in any::<u8>(),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12),
    ) {
        let (twin, cur) = build_pair(len, seed, &edits);
        let d = Diff::compute(&twin, &cur);
        let got: Vec<(usize, Vec<u8>)> =
            d.iter_runs().map(|(o, b)| (o, b.to_vec())).collect();
        prop_assert_eq!(got, reference_runs(&twin, &cur));
    }

    /// All-different pairs: one run covering everything, same as the
    /// reference (the dense worst case the paper's 250 µs figure is about).
    #[test]
    fn compute_matches_on_all_different(len in 1usize..600, seed in any::<u8>()) {
        let twin: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(seed)).collect();
        let cur: Vec<u8> = twin.iter().map(|b| b ^ 0x80).collect();
        let d = Diff::compute(&twin, &cur);
        prop_assert_eq!(d.runs(), 1);
        prop_assert_eq!(d.changed_bytes(), len);
        let got: Vec<(usize, Vec<u8>)> =
            d.iter_runs().map(|(o, b)| (o, b.to_vec())).collect();
        prop_assert_eq!(got, reference_runs(&twin, &cur));
    }

    /// `apply(compute(twin, current), twin) == current` — the twin/diff
    /// contract HLRC's release path depends on.
    #[test]
    fn apply_compute_rebuilds_current(
        len in 1usize..700,
        seed in any::<u8>(),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12),
    ) {
        let (twin, cur) = build_pair(len, seed, &edits);
        let d = Twin::capture(&twin).diff(&cur);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    /// decode(encode(d)) round-trips semantically for arbitrary diffs.
    #[test]
    fn encode_decode_roundtrips(
        len in 1usize..700,
        seed in any::<u8>(),
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12),
    ) {
        let (twin, cur) = build_pair(len, seed, &edits);
        let d = Diff::compute(&twin, &cur);
        let wire = Bytes::from(d.encode());
        let d2 = Diff::decode(&wire).expect("own encoding is valid");
        prop_assert_eq!(&d, &d2);
        prop_assert_eq!(d.wire_bytes(), d2.wire_bytes());
        let mut rebuilt = twin.clone();
        d2.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    /// Hostile wire bytes never panic decode: it returns `Some` only for
    /// well-formed input, and anything it accepts is safe to `apply` to a
    /// `source_len`-sized buffer.
    #[test]
    fn decode_is_total_on_arbitrary_bytes(
        raw in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let wire = Bytes::from(raw);
        if let Some(d) = Diff::decode(&wire) {
            for (off, bytes) in d.iter_runs() {
                prop_assert!(off + bytes.len() <= d.source_len());
            }
            let mut target = vec![0u8; d.source_len()];
            d.apply(&mut target); // must not panic
        }
    }
}
