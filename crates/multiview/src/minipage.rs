//! Minipage descriptors.

use sim_mem::{Geometry, VAddr};

/// Dense identifier of a minipage (index into the [`Mpt`](crate::Mpt)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MinipageId(pub u32);

impl MinipageId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MinipageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mp{}", self.0)
    }
}

/// A minipage: a variable-size unit of sharing (§2.2).
///
/// "A minipage is identified by the associated vpage number and a pair
/// `<offset, length>` which indicates the region inside the vpage where the
/// minipage resides." Large minipages may span several consecutive vpages
/// of the same view (§2.4: "If mapping to M spans several vpages ... the
/// above is generalized in a straightforward way").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Minipage {
    /// This minipage's id.
    pub id: MinipageId,
    /// Base virtual address, in the minipage's associated view.
    pub base: VAddr,
    /// Length in bytes (1 ..= pages-spanned × page size).
    pub len: usize,
    /// The view this minipage is associated with.
    pub view: usize,
    /// First physical page of the memory object the minipage occupies.
    pub first_page: usize,
    /// Byte offset of `base` within `first_page`.
    pub offset: usize,
}

impl Minipage {
    /// Number of vpages the minipage spans.
    pub fn vpage_count(&self, page_size: usize) -> usize {
        (self.offset + self.len).div_ceil(page_size)
    }

    /// Global vpage indices the minipage spans.
    pub fn vpages(&self, geo: &Geometry) -> std::ops::Range<usize> {
        let first = geo.vpage_index(self.view, self.first_page);
        first..first + self.vpage_count(geo.page_size())
    }

    /// The minipage's base address translated to the privileged view
    /// (Figure 3's `privbase`).
    pub fn priv_base(&self, geo: &Geometry) -> VAddr {
        geo.addr_of(geo.priv_view(), self.first_page, self.offset)
    }

    /// The physical byte range `[first_page·ps + offset ..+ len)` the
    /// minipage occupies — its view-independent identity. Two minipages
    /// alias the same data exactly when their physical ranges intersect.
    pub fn phys_range(&self, page_size: usize) -> std::ops::Range<usize> {
        let start = self.first_page * page_size + self.offset;
        start..start + self.len
    }

    /// Whether `addr` lies inside the minipage (in the minipage's view).
    pub fn contains(&self, geo: &Geometry, addr: VAddr) -> bool {
        match geo.decode(addr) {
            Some(loc) if loc.view == self.view => {
                let byte = loc.page * geo.page_size() + loc.offset;
                let start = self.first_page * geo.page_size() + self.offset;
                byte >= start && byte < start + self.len
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::new(16, 4)
    }

    fn mp(geo: &Geometry) -> Minipage {
        Minipage {
            id: MinipageId(3),
            base: geo.addr_of(2, 5, 128),
            len: 672,
            view: 2,
            first_page: 5,
            offset: 128,
        }
    }

    #[test]
    fn vpage_count_for_small_and_spanning() {
        let g = geo();
        let m = mp(&g);
        assert_eq!(m.vpage_count(4096), 1);
        let big = Minipage {
            len: 4096 * 2,
            offset: 0,
            ..m
        };
        assert_eq!(big.vpage_count(4096), 2);
        let spanning = Minipage {
            len: 4096,
            offset: 1,
            ..m
        };
        assert_eq!(spanning.vpage_count(4096), 2);
    }

    #[test]
    fn vpages_are_in_the_right_view() {
        let g = geo();
        let m = mp(&g);
        let vps = m.vpages(&g);
        assert_eq!(vps, g.vpage_index(2, 5)..g.vpage_index(2, 5) + 1);
    }

    #[test]
    fn priv_base_is_same_page_and_offset() {
        let g = geo();
        let m = mp(&g);
        let p = m.priv_base(&g);
        let loc = g.decode(p).unwrap();
        assert_eq!(loc.view, g.priv_view());
        assert_eq!(loc.page, 5);
        assert_eq!(loc.offset, 128);
    }

    #[test]
    fn contains_respects_bounds_and_view() {
        let g = geo();
        let m = mp(&g);
        assert!(m.contains(&g, m.base));
        assert!(m.contains(&g, m.base.add(671)));
        assert!(!m.contains(&g, m.base.add(672)));
        // Same page/offset through a different view is not "inside".
        let other_view = g.rebase(m.base, 1).unwrap();
        assert!(!m.contains(&g, other_view));
    }
}
