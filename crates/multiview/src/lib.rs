//! The MultiView technique (§2 of the paper).
//!
//! MultiView maps one memory object into several *views* so that the same
//! physical page can carry several independently-protected *minipages*.
//! This crate implements everything §2 describes on top of the simulated
//! virtual memory of `sim-mem`:
//!
//! * [`Minipage`] descriptors and the minipage table ([`Mpt`]) that the
//!   manager keeps (§2.3, §3.3),
//! * the **dynamic layout** allocator (§2.3): every `malloc` defines its
//!   own minipage, small allocations on the same physical page are handed
//!   out through different views, large allocations stay contiguous,
//! * **chunking** (§4.4): aggregating several consecutive allocations into
//!   one larger minipage, trading false sharing for fewer faults,
//! * the **page-granularity baseline** ("no false-sharing control", the
//!   classical page-based DSM arrangement used as the `none` point in
//!   Figure 7),
//! * the **static layout** (§2.3): k equal minipages per page, for
//!   global-memory-system style sub-page transfer units,
//! * **composed views** (§5 future work): groups of minipages acquired as
//!   one coarse unit, with the meet-of-protections rule.

mod alloc;
mod composed;
mod layout;
mod minipage;
mod mpt;

pub use alloc::{AllocError, AllocMode, AllocStats, Allocator};
pub use composed::ComposedView;
pub use layout::static_layout;
pub use minipage::{Minipage, MinipageId};
pub use mpt::{Mpt, SharedMpt};
