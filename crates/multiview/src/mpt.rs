//! The minipage table (MPT).
//!
//! §2.3: "The system should therefore store and maintain a minipage-table
//! (MPT) with the appropriate `<offset, length>` pair specified for each
//! minipage." §3.3: the MPT lives at the manager; a faulting host sends
//! only the faulting address, and the manager's `Translate` step looks up
//! the minipage base, size, and privileged-view address.

use crate::minipage::{Minipage, MinipageId};
use parking_lot::RwLock;
use sim_mem::{Geometry, VAddr};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The minipage table: id → descriptor, plus a vpage index for fault
/// translation.
///
/// In the dynamic layout every vpage is associated with at most one
/// minipage (that is the invariant MultiView exists to establish), so the
/// fault-address lookup is a single vpage-indexed load — the 7 µs
/// "minipage translation" of Table 1. The index is a flat `Vec` rather
/// than a hash map: vpage indices are small and dense (views × pages of
/// one geometry), so a direct load beats hashing on the translation path
/// every fault and every home routing takes.
#[derive(Debug, Default)]
pub struct Mpt {
    entries: Vec<Minipage>,
    /// `by_vpage[vp]` is the minipage carrying global vpage `vp`, if any;
    /// grown on insert to cover the highest associated vpage. Never points
    /// at a retired entry.
    by_vpage: Vec<Option<MinipageId>>,
    /// `retired[id]`: the entry was replaced by an adaptation action
    /// (split/merge) and no longer owns any vpage. Ids are never reused —
    /// directory state, traces, and diagnostics keep referring to them.
    retired: Vec<bool>,
    /// Redirect overlay for retired vpages: a vpage that once carried a
    /// now-retired minipage maps to the *active* minipages covering the
    /// same physical page, so stale addresses (application handles minted
    /// before a split/merge) still translate — by physical byte — to the
    /// live entry. Rebuilt from scratch on every adaptation action.
    redirect: BTreeMap<usize, Vec<MinipageId>>,
}

impl Mpt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of minipages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a minipage built by the allocator. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the minipage's id is not the next dense id, or if one of
    /// its vpages is already associated with another minipage (the
    /// MultiView invariant would be violated).
    pub fn insert(&mut self, geo: &Geometry, mp: Minipage) -> MinipageId {
        assert_eq!(
            mp.id.index(),
            self.entries.len(),
            "minipage ids are dense insertion indices"
        );
        for vp in mp.vpages(geo) {
            if vp >= self.by_vpage.len() {
                self.by_vpage.resize(vp + 1, None);
            }
            assert!(
                !self.redirect.contains_key(&vp),
                "vpage {vp} is a retired redirect trampoline"
            );
            let prev = self.by_vpage[vp].replace(mp.id);
            assert!(
                prev.is_none(),
                "vpage {vp} already carries {:?}",
                prev.unwrap()
            );
        }
        self.entries.push(mp);
        self.retired.push(false);
        mp.id
    }

    /// Descriptor for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never inserted.
    pub fn get(&self, id: MinipageId) -> &Minipage {
        &self.entries[id.index()]
    }

    /// Figure 3 `Translate`: resolves a faulting address to its minipage.
    ///
    /// Returns `None` for addresses outside the shared region or on vpages
    /// that carry no minipage. An address on a *retired* vpage resolves,
    /// by physical byte, through the redirect overlay to the active
    /// minipage that replaced it.
    pub fn translate(&self, geo: &Geometry, fault_addr: VAddr) -> Option<&Minipage> {
        let vp = geo.vpage_of(fault_addr)?;
        if let Some(Some(id)) = self.by_vpage.get(vp) {
            return Some(self.get(*id));
        }
        let loc = geo.decode(fault_addr)?;
        let byte = loc.page * geo.page_size() + loc.offset;
        self.redirect.get(&vp).and_then(|cands| {
            cands
                .iter()
                .map(|&id| self.get(id))
                .find(|m| m.phys_range(geo.page_size()).contains(&byte))
        })
    }

    /// Whether `id` was retired by an adaptation action.
    pub fn is_retired(&self, id: MinipageId) -> bool {
        self.retired.get(id.index()).copied().unwrap_or(false)
    }

    /// Iterates over all minipages (including retired ones).
    pub fn iter(&self) -> impl Iterator<Item = &Minipage> {
        self.entries.iter()
    }

    /// Iterates over the active (non-retired) minipages.
    pub fn iter_active(&self) -> impl Iterator<Item = &Minipage> {
        self.entries.iter().filter(|m| !self.retired[m.id.index()])
    }

    /// Next dense id an allocator should use.
    pub fn next_id(&self) -> MinipageId {
        MinipageId(self.entries.len() as u32)
    }

    /// An application view where vpages `(view, first_page .. first_page +
    /// pages)` carry no minipage and are not redirect trampolines, skipping
    /// views in `avoid` (siblings placed in the same action). This is how
    /// adaptation finds a home for a split child or a merged minipage: a
    /// fresh view over the *same* physical pages, so no data moves.
    pub fn free_view_for(
        &self,
        geo: &Geometry,
        first_page: usize,
        pages: usize,
        avoid: &[usize],
    ) -> Option<usize> {
        (0..geo.views()).find(|&view| {
            !avoid.contains(&view)
                && (first_page..first_page + pages).all(|p| {
                    let vp = geo.vpage_index(view, p);
                    self.by_vpage.get(vp).copied().flatten().is_none()
                        && !self.redirect.contains_key(&vp)
                })
        })
    }

    /// The core adaptation mutation: retires `old` (a split's parent, or a
    /// merge's siblings) and inserts `replacements` as fresh dense-id
    /// entries, then rebuilds the redirect overlay so every retired vpage
    /// resolves to the active minipages covering its physical page.
    ///
    /// # Panics
    ///
    /// Panics if an `old` id is unknown or already retired, or if a
    /// replacement violates the one-minipage-per-vpage invariant.
    pub fn retire_and_insert(
        &mut self,
        geo: &Geometry,
        old: &[MinipageId],
        replacements: Vec<Minipage>,
    ) -> Vec<MinipageId> {
        for &id in old {
            assert!(
                id.index() < self.entries.len() && !self.retired[id.index()],
                "{id} is unknown or already retired"
            );
            self.retired[id.index()] = true;
            for vp in self.entries[id.index()].vpages(geo) {
                if self.by_vpage.get(vp).copied().flatten() == Some(id) {
                    self.by_vpage[vp] = None;
                }
            }
        }
        let ids = replacements
            .into_iter()
            .map(|mp| self.insert(geo, mp))
            .collect();
        self.rebuild_redirect(geo);
        ids
    }

    /// Recomputes the redirect overlay: every vpage of every retired entry
    /// maps to the active entries sharing its physical page.
    fn rebuild_redirect(&mut self, geo: &Geometry) {
        self.redirect.clear();
        let retired_vps: Vec<usize> = self
            .entries
            .iter()
            .filter(|m| self.retired[m.id.index()])
            .flat_map(|m| m.vpages(geo))
            .collect();
        for vp in retired_vps {
            let page = vp % geo.pages();
            let ps = geo.page_size();
            let cands: Vec<MinipageId> = self
                .iter_active()
                .filter(|m| {
                    let r = m.phys_range(ps);
                    r.start < (page + 1) * ps && page * ps < r.end
                })
                .map(|m| m.id)
                .collect();
            self.redirect.insert(vp, cands);
        }
    }

    /// Geometry invariants an adaptation action must preserve; returns one
    /// human-readable violation per breach (empty = clean). Checked post-
    /// run by both backends and used as the proptest oracle:
    ///
    /// 1. active minipages are pairwise disjoint in physical bytes;
    /// 2. no byte is orphaned — every retired entry's bytes are covered by
    ///    active entries;
    /// 3. `by_vpage` agrees with the entries in both directions;
    /// 4. `translate` resolves every byte of every entry (active via its
    ///    own vpage, retired via the redirect overlay) to the one active
    ///    minipage owning that physical byte.
    pub fn geometry_violations(&self, geo: &Geometry) -> Vec<String> {
        let ps = geo.page_size();
        let mut out = Vec::new();
        let mut active: Vec<&Minipage> = self.iter_active().collect();
        active.sort_by_key(|m| m.phys_range(ps).start);
        for w in active.windows(2) {
            if w[0].phys_range(ps).end > w[1].phys_range(ps).start {
                out.push(format!(
                    "active {} and {} overlap in physical bytes",
                    w[0].id, w[1].id
                ));
            }
        }
        for m in self.entries.iter().filter(|m| self.retired[m.id.index()]) {
            let r = m.phys_range(ps);
            let mut at = r.start;
            for a in &active {
                let ar = a.phys_range(ps);
                if ar.start <= at && at < ar.end {
                    at = ar.end;
                }
                if at >= r.end {
                    break;
                }
            }
            if at < r.end {
                out.push(format!("retired {}: byte {at} orphaned", m.id));
            }
        }
        for (vp, slot) in self.by_vpage.iter().enumerate() {
            if let Some(id) = slot {
                if self.retired[id.index()] {
                    out.push(format!("by_vpage[{vp}] points at retired {id}"));
                } else if !self.get(*id).vpages(geo).contains(&vp) {
                    out.push(format!("by_vpage[{vp}] points at {id} which skips it"));
                }
            }
        }
        for m in &active {
            for vp in m.vpages(geo) {
                if self.by_vpage.get(vp).copied().flatten() != Some(m.id) {
                    out.push(format!("active {} not indexed at vpage {vp}", m.id));
                }
            }
        }
        for m in &self.entries {
            for k in 0..m.len {
                let byte = m.phys_range(ps).start + k;
                let addr = geo.addr_of(m.view, byte / ps, byte % ps);
                match self.translate(geo, addr) {
                    Some(t) if t.phys_range(ps).contains(&byte) => {}
                    Some(t) => out.push(format!(
                        "byte {k} of {} translates to {} which does not own it",
                        m.id, t.id
                    )),
                    None => out.push(format!("byte {k} of {} does not translate", m.id)),
                }
            }
        }
        out
    }
}

/// A replicated, shared minipage table.
///
/// The distributed-management protocol replicates the MPT to every host
/// so that translation (fault address → minipage) and home routing stay
/// local lookups — no manager round-trip. The allocator host remains the
/// single writer: it publishes every freshly defined minipage here, and
/// all hosts read through cheap clones of the same handle. The in-process
/// simulation models replication as shared read-mostly state; the cost
/// model still charges a local `mpt_lookup` per translation.
#[derive(Clone, Debug, Default)]
pub struct SharedMpt {
    inner: Arc<RwLock<Mpt>>,
    /// Bumped on every adaptation action ([`retire_and_insert`]
    /// (Self::retire_and_insert)). Access paths holding pre-action
    /// addresses check this once per access (a relaxed load) and only pay
    /// for re-translation after the table has actually changed shape.
    adapt_gen: Arc<AtomicU64>,
}

impl SharedMpt {
    /// An empty replicated table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a freshly allocated minipage to every replica.
    pub fn publish(&self, geo: &Geometry, mp: Minipage) -> MinipageId {
        self.inner.write().insert(geo, mp)
    }

    /// Descriptor for an id (copied out of the replica).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never published.
    pub fn get(&self, id: MinipageId) -> Minipage {
        *self.inner.read().get(id)
    }

    /// Local `Translate`: resolves an address to its minipage descriptor.
    pub fn translate(&self, geo: &Geometry, addr: VAddr) -> Option<Minipage> {
        self.inner.read().translate(geo, addr).copied()
    }

    /// Number of published minipages.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A point-in-time copy of every descriptor (post-run validation),
    /// including retired entries.
    pub fn snapshot(&self) -> Vec<Minipage> {
        self.inner.read().iter().copied().collect()
    }

    /// A point-in-time copy of the active (non-retired) descriptors.
    pub fn snapshot_active(&self) -> Vec<Minipage> {
        self.inner.read().iter_active().copied().collect()
    }

    /// Whether `id` was retired by an adaptation action.
    pub fn is_retired(&self, id: MinipageId) -> bool {
        self.inner.read().is_retired(id)
    }

    /// Next dense id (adaptation builds replacement descriptors with it).
    pub fn next_id(&self) -> MinipageId {
        self.inner.read().next_id()
    }

    /// See [`Mpt::free_view_for`].
    pub fn free_view_for(
        &self,
        geo: &Geometry,
        first_page: usize,
        pages: usize,
        avoid: &[usize],
    ) -> Option<usize> {
        self.inner
            .read()
            .free_view_for(geo, first_page, pages, avoid)
    }

    /// See [`Mpt::retire_and_insert`]; bumps the adaptation generation so
    /// replicas re-translate stale addresses.
    pub fn retire_and_insert(
        &self,
        geo: &Geometry,
        old: &[MinipageId],
        replacements: Vec<Minipage>,
    ) -> Vec<MinipageId> {
        let ids = self.inner.write().retire_and_insert(geo, old, replacements);
        self.adapt_gen.fetch_add(1, Ordering::Release);
        ids
    }

    /// The adaptation generation: 0 until the first split/merge, bumped on
    /// each. A relaxed/acquire load, cheap enough for per-access checks.
    pub fn adapt_gen(&self) -> u64 {
        self.adapt_gen.load(Ordering::Acquire)
    }

    /// See [`Mpt::geometry_violations`].
    pub fn geometry_violations(&self, geo: &Geometry) -> Vec<String> {
        self.inner.read().geometry_violations(geo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::new(8, 3)
    }

    fn mk(
        id: u32,
        view: usize,
        page: usize,
        offset: usize,
        len: usize,
        geo: &Geometry,
    ) -> Minipage {
        Minipage {
            id: MinipageId(id),
            base: geo.addr_of(view, page, offset),
            len,
            view,
            first_page: page,
            offset,
        }
    }

    #[test]
    fn translate_finds_minipage_from_any_offset() {
        let g = geo();
        let mut mpt = Mpt::new();
        let m = mk(0, 1, 2, 256, 672, &g);
        mpt.insert(&g, m);
        // Any address on the vpage translates to the minipage — the fault
        // address may point anywhere inside it.
        let probe = g.addr_of(1, 2, 300);
        let hit = mpt.translate(&g, probe).unwrap();
        assert_eq!(hit.id, MinipageId(0));
        assert_eq!(hit.base, m.base);
        assert_eq!(hit.len, 672);
    }

    #[test]
    fn translate_misses_on_foreign_view_and_outside() {
        let g = geo();
        let mut mpt = Mpt::new();
        mpt.insert(&g, mk(0, 1, 2, 0, 128, &g));
        // Same physical page, different view: separate vpage, no minipage.
        assert!(mpt.translate(&g, g.addr_of(0, 2, 0)).is_none());
        assert!(mpt.translate(&g, VAddr(0x1)).is_none());
    }

    #[test]
    fn spanning_minipage_translates_from_every_vpage() {
        let g = geo();
        let mut mpt = Mpt::new();
        let m = Minipage {
            id: MinipageId(0),
            base: g.addr_of(0, 4, 0),
            len: 4096 * 3,
            view: 0,
            first_page: 4,
            offset: 0,
        };
        mpt.insert(&g, m);
        for page in 4..7 {
            let hit = mpt.translate(&g, g.addr_of(0, page, 17)).unwrap();
            assert_eq!(hit.id, MinipageId(0));
        }
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_association_panics() {
        let g = geo();
        let mut mpt = Mpt::new();
        mpt.insert(&g, mk(0, 1, 2, 0, 128, &g));
        mpt.insert(&g, mk(1, 1, 2, 128, 128, &g));
    }

    #[test]
    fn shared_mpt_replicates_published_entries() {
        let g = geo();
        let replica = SharedMpt::new();
        let other_host_view = replica.clone();
        assert!(replica.is_empty());
        let m = mk(0, 1, 2, 256, 672, &g);
        replica.publish(&g, m);
        // Any clone of the handle sees the publication immediately.
        assert_eq!(other_host_view.len(), 1);
        let hit = other_host_view.translate(&g, g.addr_of(1, 2, 300)).unwrap();
        assert_eq!(hit.id, MinipageId(0));
        assert_eq!(other_host_view.get(MinipageId(0)).len, 672);
        assert_eq!(replica.snapshot().len(), 1);
    }

    /// Splitting a minipage into two children in fresh views keeps every
    /// byte reachable: the parent's addresses redirect by physical byte,
    /// the children translate directly, and merging the children back
    /// restores one owner for the whole range.
    #[test]
    fn split_then_merge_round_trips_geometry() {
        // Roomy view count: each action retires vpages whose views stay
        // reserved as redirect trampolines, so split + merge needs slack.
        let g = Geometry::new(8, 6);
        let mpt = SharedMpt::new();
        let parent = mk(0, 0, 2, 0, 64, &g);
        mpt.publish(&g, parent);
        assert_eq!(mpt.adapt_gen(), 0);

        // Split at byte 32 into two children over the same physical page.
        let va = mpt.free_view_for(&g, 2, 1, &[]).unwrap();
        let vb = mpt.free_view_for(&g, 2, 1, &[va]).unwrap();
        assert_ne!(va, vb, "same-page children need distinct views");
        let kids = mpt.retire_and_insert(
            &g,
            &[MinipageId(0)],
            vec![mk(1, va, 2, 0, 32, &g), mk(2, vb, 2, 32, 32, &g)],
        );
        assert_eq!(kids, vec![MinipageId(1), MinipageId(2)]);
        assert!(mpt.is_retired(MinipageId(0)));
        assert_eq!(mpt.adapt_gen(), 1);
        assert_eq!(mpt.geometry_violations(&g), Vec::<String>::new());
        // Stale parent-view addresses resolve by physical byte.
        assert_eq!(
            mpt.translate(&g, g.addr_of(0, 2, 10)).unwrap().id,
            MinipageId(1)
        );
        assert_eq!(
            mpt.translate(&g, g.addr_of(0, 2, 40)).unwrap().id,
            MinipageId(2)
        );

        // Merge the children back into one minipage in another fresh view.
        let vm = mpt.free_view_for(&g, 2, 1, &[]).unwrap();
        let merged = mpt.retire_and_insert(
            &g,
            &[MinipageId(1), MinipageId(2)],
            vec![mk(3, vm, 2, 0, 64, &g)],
        );
        assert_eq!(merged, vec![MinipageId(3)]);
        assert_eq!(mpt.adapt_gen(), 2);
        assert_eq!(mpt.geometry_violations(&g), Vec::<String>::new());
        // Parent-view *and* child-view addresses all reach the merged mp.
        for probe in [
            g.addr_of(0, 2, 10),
            g.addr_of(va, 2, 10),
            g.addr_of(vb, 2, 40),
        ] {
            assert_eq!(mpt.translate(&g, probe).unwrap().id, MinipageId(3));
        }
        assert_eq!(mpt.snapshot_active().len(), 1);
        assert_eq!(mpt.snapshot().len(), 4);
    }

    /// An orphaned byte (children that do not cover the parent) is caught
    /// by the geometry validator.
    #[test]
    fn geometry_validator_catches_orphaned_bytes() {
        let g = geo();
        let mpt = SharedMpt::new();
        mpt.publish(&g, mk(0, 0, 2, 0, 64, &g));
        mpt.retire_and_insert(&g, &[MinipageId(0)], vec![mk(1, 1, 2, 0, 32, &g)]);
        let v = mpt.geometry_violations(&g);
        assert!(
            v.iter().any(|s| s.contains("orphaned")),
            "missing orphan violation: {v:?}"
        );
    }

    #[test]
    fn ids_are_dense() {
        let g = geo();
        let mut mpt = Mpt::new();
        assert_eq!(mpt.next_id(), MinipageId(0));
        mpt.insert(&g, mk(0, 0, 0, 0, 64, &g));
        assert_eq!(mpt.next_id(), MinipageId(1));
        mpt.insert(&g, mk(1, 1, 0, 64, 64, &g));
        assert_eq!(mpt.len(), 2);
        assert_eq!(mpt.iter().count(), 2);
    }
}
