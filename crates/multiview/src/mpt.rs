//! The minipage table (MPT).
//!
//! §2.3: "The system should therefore store and maintain a minipage-table
//! (MPT) with the appropriate `<offset, length>` pair specified for each
//! minipage." §3.3: the MPT lives at the manager; a faulting host sends
//! only the faulting address, and the manager's `Translate` step looks up
//! the minipage base, size, and privileged-view address.

use crate::minipage::{Minipage, MinipageId};
use parking_lot::RwLock;
use sim_mem::{Geometry, VAddr};
use std::sync::Arc;

/// The minipage table: id → descriptor, plus a vpage index for fault
/// translation.
///
/// In the dynamic layout every vpage is associated with at most one
/// minipage (that is the invariant MultiView exists to establish), so the
/// fault-address lookup is a single vpage-indexed load — the 7 µs
/// "minipage translation" of Table 1. The index is a flat `Vec` rather
/// than a hash map: vpage indices are small and dense (views × pages of
/// one geometry), so a direct load beats hashing on the translation path
/// every fault and every home routing takes.
#[derive(Debug, Default)]
pub struct Mpt {
    entries: Vec<Minipage>,
    /// `by_vpage[vp]` is the minipage carrying global vpage `vp`, if any;
    /// grown on insert to cover the highest associated vpage.
    by_vpage: Vec<Option<MinipageId>>,
}

impl Mpt {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of minipages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a minipage built by the allocator. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the minipage's id is not the next dense id, or if one of
    /// its vpages is already associated with another minipage (the
    /// MultiView invariant would be violated).
    pub fn insert(&mut self, geo: &Geometry, mp: Minipage) -> MinipageId {
        assert_eq!(
            mp.id.index(),
            self.entries.len(),
            "minipage ids are dense insertion indices"
        );
        for vp in mp.vpages(geo) {
            if vp >= self.by_vpage.len() {
                self.by_vpage.resize(vp + 1, None);
            }
            let prev = self.by_vpage[vp].replace(mp.id);
            assert!(
                prev.is_none(),
                "vpage {vp} already carries {:?}",
                prev.unwrap()
            );
        }
        self.entries.push(mp);
        mp.id
    }

    /// Descriptor for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never inserted.
    pub fn get(&self, id: MinipageId) -> &Minipage {
        &self.entries[id.index()]
    }

    /// Figure 3 `Translate`: resolves a faulting address to its minipage.
    ///
    /// Returns `None` for addresses outside the shared region or on vpages
    /// that carry no minipage.
    pub fn translate(&self, geo: &Geometry, fault_addr: VAddr) -> Option<&Minipage> {
        let vp = geo.vpage_of(fault_addr)?;
        let id = (*self.by_vpage.get(vp)?)?;
        Some(self.get(id))
    }

    /// Iterates over all minipages.
    pub fn iter(&self) -> impl Iterator<Item = &Minipage> {
        self.entries.iter()
    }

    /// Next dense id an allocator should use.
    pub fn next_id(&self) -> MinipageId {
        MinipageId(self.entries.len() as u32)
    }
}

/// A replicated, shared minipage table.
///
/// The distributed-management protocol replicates the MPT to every host
/// so that translation (fault address → minipage) and home routing stay
/// local lookups — no manager round-trip. The allocator host remains the
/// single writer: it publishes every freshly defined minipage here, and
/// all hosts read through cheap clones of the same handle. The in-process
/// simulation models replication as shared read-mostly state; the cost
/// model still charges a local `mpt_lookup` per translation.
#[derive(Clone, Debug, Default)]
pub struct SharedMpt {
    inner: Arc<RwLock<Mpt>>,
}

impl SharedMpt {
    /// An empty replicated table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a freshly allocated minipage to every replica.
    pub fn publish(&self, geo: &Geometry, mp: Minipage) -> MinipageId {
        self.inner.write().insert(geo, mp)
    }

    /// Descriptor for an id (copied out of the replica).
    ///
    /// # Panics
    ///
    /// Panics if `id` was never published.
    pub fn get(&self, id: MinipageId) -> Minipage {
        *self.inner.read().get(id)
    }

    /// Local `Translate`: resolves an address to its minipage descriptor.
    pub fn translate(&self, geo: &Geometry, addr: VAddr) -> Option<Minipage> {
        self.inner.read().translate(geo, addr).copied()
    }

    /// Number of published minipages.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// A point-in-time copy of every descriptor (post-run validation).
    pub fn snapshot(&self) -> Vec<Minipage> {
        self.inner.read().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::new(8, 3)
    }

    fn mk(
        id: u32,
        view: usize,
        page: usize,
        offset: usize,
        len: usize,
        geo: &Geometry,
    ) -> Minipage {
        Minipage {
            id: MinipageId(id),
            base: geo.addr_of(view, page, offset),
            len,
            view,
            first_page: page,
            offset,
        }
    }

    #[test]
    fn translate_finds_minipage_from_any_offset() {
        let g = geo();
        let mut mpt = Mpt::new();
        let m = mk(0, 1, 2, 256, 672, &g);
        mpt.insert(&g, m);
        // Any address on the vpage translates to the minipage — the fault
        // address may point anywhere inside it.
        let probe = g.addr_of(1, 2, 300);
        let hit = mpt.translate(&g, probe).unwrap();
        assert_eq!(hit.id, MinipageId(0));
        assert_eq!(hit.base, m.base);
        assert_eq!(hit.len, 672);
    }

    #[test]
    fn translate_misses_on_foreign_view_and_outside() {
        let g = geo();
        let mut mpt = Mpt::new();
        mpt.insert(&g, mk(0, 1, 2, 0, 128, &g));
        // Same physical page, different view: separate vpage, no minipage.
        assert!(mpt.translate(&g, g.addr_of(0, 2, 0)).is_none());
        assert!(mpt.translate(&g, VAddr(0x1)).is_none());
    }

    #[test]
    fn spanning_minipage_translates_from_every_vpage() {
        let g = geo();
        let mut mpt = Mpt::new();
        let m = Minipage {
            id: MinipageId(0),
            base: g.addr_of(0, 4, 0),
            len: 4096 * 3,
            view: 0,
            first_page: 4,
            offset: 0,
        };
        mpt.insert(&g, m);
        for page in 4..7 {
            let hit = mpt.translate(&g, g.addr_of(0, page, 17)).unwrap();
            assert_eq!(hit.id, MinipageId(0));
        }
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_association_panics() {
        let g = geo();
        let mut mpt = Mpt::new();
        mpt.insert(&g, mk(0, 1, 2, 0, 128, &g));
        mpt.insert(&g, mk(1, 1, 2, 128, 128, &g));
    }

    #[test]
    fn shared_mpt_replicates_published_entries() {
        let g = geo();
        let replica = SharedMpt::new();
        let other_host_view = replica.clone();
        assert!(replica.is_empty());
        let m = mk(0, 1, 2, 256, 672, &g);
        replica.publish(&g, m);
        // Any clone of the handle sees the publication immediately.
        assert_eq!(other_host_view.len(), 1);
        let hit = other_host_view.translate(&g, g.addr_of(1, 2, 300)).unwrap();
        assert_eq!(hit.id, MinipageId(0));
        assert_eq!(other_host_view.get(MinipageId(0)).len, 672);
        assert_eq!(replica.snapshot().len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let g = geo();
        let mut mpt = Mpt::new();
        assert_eq!(mpt.next_id(), MinipageId(0));
        mpt.insert(&g, mk(0, 0, 0, 0, 64, &g));
        assert_eq!(mpt.next_id(), MinipageId(1));
        mpt.insert(&g, mk(1, 1, 0, 64, 64, &g));
        assert_eq!(mpt.len(), 2);
        assert_eq!(mpt.iter().count(), 2);
    }
}
