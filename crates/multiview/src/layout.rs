//! Static minipage layouts (§2.3).
//!
//! "Static layout may divide each memory page into k minipages of equal
//! size. This way, it is easy to calculate the minipage borders when a
//! fault occurs. Static layout may therefore be appropriate for general
//! purpose caching and global memory systems, in order to reduce the page
//! size by a fixed factor."

use crate::minipage::Minipage;
use crate::mpt::Mpt;
use sim_mem::Geometry;

/// Builds a static layout: every page of the memory object is divided into
/// `k` equal minipages, piece `i` of each page associated with view `i`.
///
/// Returns a fully populated [`Mpt`]. The page size must be divisible by
/// `k` and `k` must not exceed the number of application views.
///
/// # Panics
///
/// Panics if `k` is zero, does not divide the page size, or exceeds the
/// view count.
pub fn static_layout(geo: &Geometry, k: usize) -> Mpt {
    assert!(k >= 1, "k must be positive");
    assert_eq!(
        geo.page_size() % k,
        0,
        "page size must be divisible by the number of minipages per page"
    );
    assert!(
        k <= geo.views(),
        "static layout of {k} minipages per page needs {k} views"
    );
    let piece = geo.page_size() / k;
    let mut mpt = Mpt::new();
    for page in 0..geo.pages() {
        for i in 0..k {
            let mp = Minipage {
                id: mpt.next_id(),
                base: geo.addr_of(i, page, i * piece),
                len: piece,
                view: i,
                first_page: page,
                offset: i * piece,
            };
            mpt.insert(geo, mp);
        }
    }
    mpt
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::VAddr;

    #[test]
    fn static_layout_covers_every_byte_exactly_once() {
        let g = Geometry::new(4, 8);
        let mpt = static_layout(&g, 8);
        assert_eq!(mpt.len(), 4 * 8);
        // Every byte of the object belongs to exactly one minipage when
        // addressed through that minipage's own view.
        for page in 0..g.pages() {
            for off in (0..g.page_size()).step_by(64) {
                let view = off / (g.page_size() / 8);
                let addr = g.addr_of(view, page, off);
                let mp = mpt.translate(&g, addr).unwrap();
                assert!(mp.contains(&g, addr));
            }
        }
    }

    #[test]
    fn minipage_borders_are_computable_from_the_address() {
        // The paper's point: with the static layout, borders need no table.
        let g = Geometry::new(2, 4);
        let mpt = static_layout(&g, 4);
        let piece = g.page_size() / 4;
        let addr = g.addr_of(2, 1, 2 * piece + 17);
        let mp = mpt.translate(&g, addr).unwrap();
        assert_eq!(mp.offset, 2 * piece);
        assert_eq!(mp.len, piece);
        let _ = VAddr(0); // Keep the import honest in doc builds.
    }

    #[test]
    fn k_equal_one_degenerates_to_whole_pages() {
        let g = Geometry::new(3, 2);
        let mpt = static_layout(&g, 1);
        assert_eq!(mpt.len(), 3);
        for mp in mpt.iter() {
            assert_eq!(mp.len, g.page_size());
            assert_eq!(mp.view, 0);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn non_dividing_k_panics() {
        let g = Geometry::new(1, 8);
        let _ = static_layout(&g, 3);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn k_beyond_view_budget_panics() {
        let g = Geometry::new(1, 2);
        let _ = static_layout(&g, 4);
    }
}
