//! The shared-memory allocator (§2.4, §3.2, §4.4).
//!
//! "When the application issues an allocation request, the DSM searches for
//! a suitable region in the memory object, and defines it as a minipage (or
//! a set of consecutive minipages). The DSM associates the newly defined
//! minipage with one of the application views."
//!
//! The allocator implements the paper's **dynamic layout**:
//!
//! * every allocation defines a minipage sized to the allocation
//!   ([`AllocMode::FineGrain`] with `chunking == 1`);
//! * with a **chunking level** `c > 1` (§4.4), up to `c` consecutive
//!   equal-size allocations are aggregated into one larger minipage;
//! * in the **page-grain baseline** ([`AllocMode::PageGrain`]) allocations
//!   are packed contiguously disregarding minipage boundaries and sharing
//!   happens in whole pages — the classical page-based DSM arrangement the
//!   paper calls "no false-sharing control" (the `none` point of Figure 7).
//!
//! Small allocations on the same physical page are associated with
//! *different* views (that is MultiView); the k-th minipage on a page lives
//! in view k. Large allocations occupy dedicated consecutive pages as one
//! spanning minipage in view 0 ("Large allocations should still reside in a
//! contiguous region of addresses", §2.3).

use crate::minipage::{Minipage, MinipageId};
use crate::mpt::Mpt;
use sim_mem::{Geometry, VAddr};

/// Allocation policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocMode {
    /// Fine-grain dynamic layout; `chunking` consecutive equal-size
    /// allocations share one minipage (`1` = one minipage per allocation).
    FineGrain {
        /// The chunking level of §4.4 (must be ≥ 1).
        chunking: usize,
    },
    /// Page-granularity baseline: allocations packed contiguously, sharing
    /// unit = one page, single view.
    PageGrain,
}

impl AllocMode {
    /// Fine grain without chunking — the default Millipage behaviour.
    pub const FINE: AllocMode = AllocMode::FineGrain { chunking: 1 };
}

/// Allocator failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// Zero-size allocation.
    ZeroSize,
    /// The memory object is exhausted.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
            AllocError::OutOfMemory { requested } => {
                write!(f, "shared memory exhausted allocating {requested} bytes")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Aggregate allocator statistics (feeds Table 2).
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AllocStats {
    /// Number of `alloc` calls.
    pub allocations: u64,
    /// Total bytes requested.
    pub bytes_requested: u64,
    /// Number of minipages created.
    pub minipages: u64,
    /// Highest view index used + 1 (Table 2's "Num. views").
    pub views_used: usize,
    /// Physical pages consumed.
    pub pages_used: usize,
    /// Smallest minipage created (bytes); 0 when none.
    pub min_granularity: usize,
    /// Largest minipage created (bytes).
    pub max_granularity: usize,
}

#[derive(Clone, Copy, Debug)]
struct OpenChunk {
    id: MinipageId,
    base: VAddr,
    slot_size: usize,
    slots_used: usize,
    slots_cap: usize,
}

/// The dynamic-layout allocator over one memory object.
pub struct Allocator {
    geo: Geometry,
    mode: AllocMode,
    align: usize,
    mpt: Mpt,
    /// Page currently being filled with small minipages.
    cur_page: usize,
    cur_off: usize,
    cur_views: usize,
    /// First never-touched page.
    next_page: usize,
    /// Whether `cur_page` is valid (false before the first small alloc and
    /// after a page is retired).
    cur_valid: bool,
    open_chunk: Option<OpenChunk>,
    /// PageGrain: linear bump offset and last page that got a minipage.
    linear_off: usize,
    linear_minipaged: usize,
    stats: AllocStats,
}

impl Allocator {
    /// Creates an allocator for `geo` with the given mode and natural
    /// 4-byte alignment (the paper's 32-bit testbed; TSP's 148-byte tours
    /// pack 27 to a page exactly as Table 2 reports).
    pub fn new(geo: Geometry, mode: AllocMode) -> Self {
        Self::with_align(geo, mode, 4)
    }

    /// Creates an allocator with explicit alignment (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a positive power of two, or if a
    /// `FineGrain` mode has `chunking == 0`.
    pub fn with_align(geo: Geometry, mode: AllocMode, align: usize) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if let AllocMode::FineGrain { chunking } = mode {
            assert!(chunking >= 1, "chunking level must be >= 1");
        }
        Self {
            geo,
            mode,
            align,
            mpt: Mpt::new(),
            cur_page: 0,
            cur_off: 0,
            cur_views: 0,
            next_page: 0,
            cur_valid: false,
            open_chunk: None,
            linear_off: 0,
            linear_minipaged: 0,
            stats: AllocStats::default(),
        }
    }

    /// The minipage table this allocator maintains.
    pub fn mpt(&self) -> &Mpt {
        &self.mpt
    }

    /// The shared geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Allocator statistics so far.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// The malloc-like entry point (§3.2): returns the address of `size`
    /// fresh bytes in one of the application views.
    pub fn alloc(&mut self, size: usize) -> Result<VAddr, AllocError> {
        let (addr, _) = self.alloc_traced(size)?;
        Ok(addr)
    }

    /// Like [`alloc`](Self::alloc) but also reports which minipage the
    /// allocation landed in (several allocations share one when chunking).
    pub fn alloc_traced(&mut self, size: usize) -> Result<(VAddr, MinipageId), AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        self.stats.allocations += 1;
        self.stats.bytes_requested += size as u64;
        let rounded = size.div_ceil(self.align) * self.align;
        match self.mode {
            AllocMode::PageGrain => self.alloc_page_grain(rounded),
            AllocMode::FineGrain { chunking } => {
                if rounded > self.geo.page_size() {
                    self.alloc_large(rounded)
                } else {
                    self.alloc_small(rounded, chunking)
                }
            }
        }
    }

    /// Closes the open chunk so the next allocation starts a new minipage
    /// even if it has the same size (used between logically distinct data
    /// structures).
    pub fn finish_chunk(&mut self) {
        self.open_chunk = None;
    }

    /// Retires the partially-filled small page: the next small allocation
    /// starts on a fresh page (and therefore in view 0). Keeps logically
    /// distinct structures from sharing pages — and thus from inflating
    /// the view count of the structure that matters.
    pub fn retire_page(&mut self) {
        self.finish_chunk();
        self.cur_valid = false;
    }

    fn alloc_small(
        &mut self,
        size: usize,
        chunking: usize,
    ) -> Result<(VAddr, MinipageId), AllocError> {
        // Continue an open chunk when the size matches and a slot is free.
        if let Some(chunk) = &mut self.open_chunk {
            if chunk.slot_size == size && chunk.slots_used < chunk.slots_cap {
                let addr = chunk.base.add(chunk.slots_used * size);
                chunk.slots_used += 1;
                return Ok((addr, chunk.id));
            }
        }
        self.open_chunk = None;

        let psz = self.geo.page_size();
        let slots = chunking.min(psz / size).max(1);
        let mp_len = slots * size;
        // Retire the current page when the minipage no longer fits, either
        // by space or because the page's view budget is exhausted.
        if !self.cur_valid || self.cur_off + mp_len > psz || self.cur_views == self.geo.views() {
            if self.next_page >= self.geo.pages() {
                return Err(AllocError::OutOfMemory { requested: size });
            }
            self.cur_page = self.next_page;
            self.next_page += 1;
            self.cur_off = 0;
            self.cur_views = 0;
            self.cur_valid = true;
            self.stats.pages_used += 1;
        }
        let view = self.cur_views;
        let base = self.geo.addr_of(view, self.cur_page, self.cur_off);
        let mp = Minipage {
            id: self.mpt.next_id(),
            base,
            len: mp_len,
            view,
            first_page: self.cur_page,
            offset: self.cur_off,
        };
        let id = self.mpt.insert(&self.geo, mp);
        self.record_minipage(mp_len, view);
        self.cur_off += mp_len;
        self.cur_views += 1;
        if slots > 1 {
            self.open_chunk = Some(OpenChunk {
                id,
                base,
                slot_size: size,
                slots_used: 1,
                slots_cap: slots,
            });
        }
        Ok((base, id))
    }

    fn alloc_large(&mut self, size: usize) -> Result<(VAddr, MinipageId), AllocError> {
        self.open_chunk = None;
        let psz = self.geo.page_size();
        let pages = size.div_ceil(psz);
        if self.next_page + pages > self.geo.pages() {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        let first_page = self.next_page;
        self.next_page += pages;
        self.stats.pages_used += pages;
        let base = self.geo.addr_of(0, first_page, 0);
        let mp = Minipage {
            id: self.mpt.next_id(),
            base,
            len: size,
            view: 0,
            first_page,
            offset: 0,
        };
        let id = self.mpt.insert(&self.geo, mp);
        self.record_minipage(size, 0);
        Ok((base, id))
    }

    fn alloc_page_grain(&mut self, size: usize) -> Result<(VAddr, MinipageId), AllocError> {
        let psz = self.geo.page_size();
        let start = self.linear_off;
        let end = start + size;
        if end > self.geo.pages() * psz {
            return Err(AllocError::OutOfMemory { requested: size });
        }
        self.linear_off = end;
        // Lazily give every touched page a whole-page minipage in view 0.
        let last_page = (end - 1) / psz;
        while self.linear_minipaged <= last_page {
            let page = self.linear_minipaged;
            let mp = Minipage {
                id: self.mpt.next_id(),
                base: self.geo.addr_of(0, page, 0),
                len: psz,
                view: 0,
                first_page: page,
                offset: 0,
            };
            self.mpt.insert(&self.geo, mp);
            self.record_minipage(psz, 0);
            self.stats.pages_used += 1;
            self.linear_minipaged += 1;
        }
        let first_page = start / psz;
        let addr = self.geo.addr_of(0, first_page, start % psz);
        let id = self
            .mpt
            .translate(&self.geo, addr)
            .expect("page just received a minipage")
            .id;
        Ok((addr, id))
    }

    fn record_minipage(&mut self, len: usize, view: usize) {
        self.stats.minipages += 1;
        self.stats.views_used = self.stats.views_used.max(view + 1);
        if self.stats.min_granularity == 0 || len < self.stats.min_granularity {
            self.stats.min_granularity = len;
        }
        self.stats.max_granularity = self.stats.max_granularity.max(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(pages: usize, views: usize) -> Geometry {
        Geometry::new(pages, views)
    }

    #[test]
    fn fine_grain_spreads_same_page_allocations_across_views() {
        let mut a = Allocator::new(geo(8, 4), AllocMode::FINE);
        let addrs: Vec<_> = (0..4).map(|_| a.alloc(256).unwrap()).collect();
        let g = a.geometry().clone();
        let locs: Vec<_> = addrs.iter().map(|&x| g.decode(x).unwrap()).collect();
        // All on the same physical page, consecutive offsets, distinct views.
        assert!(locs.iter().all(|l| l.page == locs[0].page));
        for (i, l) in locs.iter().enumerate() {
            assert_eq!(l.view, i);
            assert_eq!(l.offset, i * 256);
        }
        assert_eq!(a.stats().views_used, 4);
        assert_eq!(a.stats().minipages, 4);
    }

    #[test]
    fn view_budget_exhaustion_moves_to_fresh_page() {
        let mut a = Allocator::new(geo(8, 2), AllocMode::FINE);
        let g = a.geometry().clone();
        let x = a.alloc(64).unwrap();
        let y = a.alloc(64).unwrap();
        let z = a.alloc(64).unwrap();
        assert_eq!(g.decode(x).unwrap().page, g.decode(y).unwrap().page);
        assert_ne!(g.decode(x).unwrap().page, g.decode(z).unwrap().page);
        assert_eq!(g.decode(z).unwrap().view, 0);
    }

    #[test]
    fn tsp_sized_tours_pack_27_per_page() {
        // Table 2: TSP tours are 148 bytes and need 27 views.
        let mut a = Allocator::new(geo(64, 32), AllocMode::FINE);
        for _ in 0..60 {
            a.alloc(148).unwrap();
        }
        assert_eq!(a.stats().views_used, 27);
    }

    #[test]
    fn water_sized_molecules_pack_6_per_page() {
        // Table 2: WATER molecules are 672 bytes and need 6 views.
        let mut a = Allocator::new(geo(128, 32), AllocMode::FINE);
        for _ in 0..50 {
            a.alloc(672).unwrap();
        }
        assert_eq!(a.stats().views_used, 6);
    }

    #[test]
    fn large_allocation_spans_dedicated_pages_in_view_0() {
        let mut a = Allocator::new(geo(16, 4), AllocMode::FINE);
        let small = a.alloc(100).unwrap();
        let big = a.alloc(4096 * 2 + 10).unwrap();
        let g = a.geometry().clone();
        let bl = g.decode(big).unwrap();
        assert_eq!(bl.view, 0);
        assert_eq!(bl.offset, 0);
        assert_ne!(bl.page, g.decode(small).unwrap().page);
        let mp = a.mpt().translate(&g, big).unwrap();
        assert_eq!(mp.len, 4096 * 2 + 12); // Rounded to 4-byte alignment.
        assert_eq!(mp.vpages(&g).len(), 3);
        // A following small allocation keeps packing the earlier partially
        // filled small page (no space is wasted by the large allocation).
        let after = a.alloc(8).unwrap();
        let al = g.decode(after).unwrap();
        assert_eq!(al.page, g.decode(small).unwrap().page);
        assert_eq!(al.view, 1);
    }

    #[test]
    fn chunking_groups_consecutive_equal_allocations() {
        // Chunking level 5 on 672-byte molecules: 5 molecules per minipage
        // (3360 bytes), the optimum the paper finds for 8 hosts.
        let mut a = Allocator::new(geo(128, 32), AllocMode::FineGrain { chunking: 5 });
        let mut ids = Vec::new();
        for _ in 0..10 {
            let (_, id) = a.alloc_traced(672).unwrap();
            ids.push(id);
        }
        assert!(ids[..5].iter().all(|&i| i == ids[0]));
        assert!(ids[5..].iter().all(|&i| i == ids[5]));
        assert_ne!(ids[0], ids[5]);
        let g = a.geometry().clone();
        assert_eq!(a.mpt().get(ids[0]).len, 3360);
        assert_eq!(a.mpt().get(ids[0]).vpages(&g).len(), 1);
        // Chunked minipages use far fewer views.
        assert_eq!(a.stats().views_used, 1);
    }

    #[test]
    fn chunk_breaks_on_size_change_and_finish() {
        let mut a = Allocator::new(geo(64, 8), AllocMode::FineGrain { chunking: 4 });
        let (_, c1) = a.alloc_traced(100).unwrap();
        let (_, c2) = a.alloc_traced(200).unwrap();
        assert_ne!(c1, c2);
        let (_, c3) = a.alloc_traced(200).unwrap();
        assert_eq!(c2, c3);
        a.finish_chunk();
        let (_, c4) = a.alloc_traced(200).unwrap();
        assert_ne!(c3, c4);
    }

    #[test]
    fn chunking_clips_to_page_size() {
        // 672 * 7 > 4096, so a chunk level of 7 clips to 6 slots.
        let mut a = Allocator::new(geo(64, 8), AllocMode::FineGrain { chunking: 7 });
        let (_, id) = a.alloc_traced(672).unwrap();
        assert_eq!(a.mpt().get(id).len, 672 * 6);
    }

    #[test]
    fn page_grain_packs_contiguously_and_shares_pages() {
        let mut a = Allocator::new(geo(8, 4), AllocMode::PageGrain);
        let g = a.geometry().clone();
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(1000).unwrap();
        // Contiguous: false sharing on the same page-size minipage.
        assert_eq!(y.0 - x.0, 1000);
        let mx = a.mpt().translate(&g, x).unwrap().id;
        let my = a.mpt().translate(&g, y).unwrap().id;
        assert_eq!(mx, my, "both land on the same whole-page minipage");
        assert_eq!(a.mpt().get(mx).len, 4096);
        // An allocation crossing a page boundary spans two minipages.
        let z = a.alloc(3000).unwrap();
        let z_end = z.add(2999);
        let mz0 = a.mpt().translate(&g, z).unwrap().id;
        let mz1 = a.mpt().translate(&g, z_end).unwrap().id;
        assert_ne!(mz0, mz1);
        assert_eq!(a.stats().views_used, 1);
    }

    #[test]
    fn out_of_memory_and_zero_size_errors() {
        let mut a = Allocator::new(geo(1, 2), AllocMode::FINE);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
        a.alloc(4096).unwrap();
        // The reported size is the alignment-rounded one (1 → 4).
        assert!(matches!(
            a.alloc(1),
            Err(AllocError::OutOfMemory { requested: 4 })
        ));
    }

    #[test]
    fn sor_row_granularity_uses_16_views() {
        // Table 2: SOR rows are 256 bytes → 16 minipages per 4 KB page.
        let mut a = Allocator::new(geo(1024, 16), AllocMode::FINE);
        for _ in 0..64 {
            a.alloc(256).unwrap();
        }
        assert_eq!(a.stats().views_used, 16);
        assert_eq!(a.stats().pages_used, 4);
    }

    #[test]
    fn stats_track_granularity_extremes() {
        let mut a = Allocator::new(geo(64, 8), AllocMode::FINE);
        a.alloc(64).unwrap();
        a.alloc(4096).unwrap();
        let s = a.stats();
        assert_eq!(s.min_granularity, 64);
        assert_eq!(s.max_granularity, 4096);
        assert_eq!(s.allocations, 2);
        assert_eq!(s.bytes_requested, 64 + 4096);
    }
}
