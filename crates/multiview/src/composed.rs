//! Composed views (§5, "Composed-Views" future work).
//!
//! "Complex data structures (such as multi-dimensional arrays) may be
//! stored in groups of minipages. It might be helpful for an application to
//! access these structures using different views at different stages.
//! Higher level views may be associated with groups of lower level views,
//! or groups of minipages. Obviously, the access permissions to such a
//! composed-view should be set to the least of the access permissions of
//! its components."
//!
//! A [`ComposedView`] is a named group of minipages. The DSM layer (the
//! `millipage` crate) exposes bulk acquire operations over composed views;
//! this module provides the grouping and the meet-of-protections rule.

use crate::minipage::MinipageId;
use crate::mpt::Mpt;
use sim_mem::{AddressSpace, Prot};

/// A group of minipages treated as one coarse-grain unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComposedView {
    name: String,
    members: Vec<MinipageId>,
}

impl ComposedView {
    /// Creates a composed view from its member minipages.
    ///
    /// Duplicate members are removed; order is preserved otherwise.
    pub fn new(name: impl Into<String>, members: impl IntoIterator<Item = MinipageId>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let members = members
            .into_iter()
            .filter(|m| seen.insert(*m))
            .collect::<Vec<_>>();
        Self {
            name: name.into(),
            members,
        }
    }

    /// The group's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member minipages.
    pub fn members(&self) -> &[MinipageId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The composed view's effective protection on a host: the meet
    /// (minimum) of the protections of all member minipages' vpages.
    ///
    /// An empty composed view reports `ReadWrite` (the neutral element of
    /// the meet).
    pub fn effective_prot(&self, mpt: &Mpt, space: &AddressSpace) -> Prot {
        let geo = space.geometry();
        let mut acc = Prot::ReadWrite;
        for &id in &self.members {
            let mp = mpt.get(id);
            for vp in mp.vpages(geo) {
                acc = acc.meet(space.prot(vp));
                if acc == Prot::NoAccess {
                    return acc;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{AllocMode, Allocator};
    use sim_mem::Geometry;

    fn setup() -> (Allocator, AddressSpace) {
        let geo = Geometry::new(16, 8);
        let alloc = Allocator::new(geo.clone(), AllocMode::FINE);
        let space = AddressSpace::new(geo);
        (alloc, space)
    }

    #[test]
    fn effective_prot_is_the_meet_of_members() {
        let (mut alloc, space) = setup();
        let (_, a) = alloc.alloc_traced(128).unwrap();
        let (_, b) = alloc.alloc_traced(128).unwrap();
        let geo = space.geometry().clone();
        let mpa = *alloc.mpt().get(a);
        let mpb = *alloc.mpt().get(b);
        for vp in mpa.vpages(&geo) {
            space.set_prot(vp, Prot::ReadWrite).unwrap();
        }
        for vp in mpb.vpages(&geo) {
            space.set_prot(vp, Prot::ReadOnly).unwrap();
        }
        let cv = ComposedView::new("pair", [a, b]);
        assert_eq!(cv.effective_prot(alloc.mpt(), &space), Prot::ReadOnly);
        // Downgrade one member to NoAccess: the composite collapses.
        for vp in mpb.vpages(&geo) {
            space.set_prot(vp, Prot::NoAccess).unwrap();
        }
        assert_eq!(cv.effective_prot(alloc.mpt(), &space), Prot::NoAccess);
    }

    #[test]
    fn empty_composed_view_is_readwrite() {
        let (alloc, space) = setup();
        let cv = ComposedView::new("empty", []);
        assert!(cv.is_empty());
        assert_eq!(cv.effective_prot(alloc.mpt(), &space), Prot::ReadWrite);
    }

    #[test]
    fn duplicates_are_removed() {
        let (mut alloc, _) = setup();
        let (_, a) = alloc.alloc_traced(64).unwrap();
        let cv = ComposedView::new("dup", [a, a, a]);
        assert_eq!(cv.len(), 1);
        assert_eq!(cv.name(), "dup");
    }
}
