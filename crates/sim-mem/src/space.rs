//! Per-host address space: protections + page storage + checked access.

use crate::fault::{Access, AccessFault, MemError, Prot};
use parking_lot::RwLock;
use sim_core::{Geometry, VAddr};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Why a checked access did not complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessError {
    /// Hard error: address outside the shared region (a program bug).
    Mem(MemError),
    /// An access fault to be resolved by the DSM protocol.
    Fault(AccessFault),
}

impl From<MemError> for AccessError {
    fn from(e: MemError) -> Self {
        AccessError::Mem(e)
    }
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Mem(e) => write!(f, "{e}"),
            AccessError::Fault(a) => write!(f, "{a}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// One simulated host's mapping of the shared memory object.
///
/// Holds the host's local copy of every physical page plus the protection
/// of every vpage of every view. Application access goes through
/// [`read`](AddressSpace::read) / [`write`](AddressSpace::write), which
/// enforce protections like the MMU would; DSM server threads use the
/// `priv_*` methods, which model the privileged view (§2.3.1) and ignore
/// application protections.
///
/// # Concurrency
///
/// Application copies hold the underlying physical page lock while they
/// re-check the vpage protection and move bytes, and protection *changes*
/// ([`set_prot`](AddressSpace::set_prot)) take the same lock exclusively.
/// An invalidation therefore cannot interleave with an in-flight
/// application access: either the access completes first (and serializes
/// before the remote write, which is legal under sequential consistency
/// because the writer is still blocked waiting for the invalidation ack) or
/// the protection change lands first and the access faults.
///
/// # The software TLB
///
/// The non-faulting common case is the one MultiView's protection trick is
/// supposed to make near-free, so threads may cache `(vpage → protection,
/// page)` resolutions in a per-thread [`AccessTlb`] and take the
/// [`tlb_read`](AddressSpace::tlb_read) / [`tlb_write`](AddressSpace::tlb_write)
/// fast path, which skips the address decode (divisions) and the
/// protection re-load. Safety rests on a single generation counter: every
/// protection change ([`set_prot`](AddressSpace::set_prot),
/// [`snapshot_and_protect`](AddressSpace::snapshot_and_protect)) bumps
/// [`prot_generation`](AddressSpace::prot_generation) *while holding the
/// page's exclusive lock*, and the fast path re-validates the cached
/// generation *under the page lock* before touching bytes. A matching
/// generation proves no protection anywhere changed since the entry was
/// filled, so the cached protection is still exact; a mismatch falls back
/// to the slow path (at worst a spurious miss for an unrelated vpage's
/// change). The TLB therefore changes wall-clock cost only — never which
/// accesses fault.
pub struct AddressSpace {
    geo: Geometry,
    prots: Vec<AtomicU8>,
    pages: Vec<RwLock<Box<[u8]>>>,
    /// Bumped (under the affected page's exclusive lock) by every
    /// protection change; validates [`TlbEntry`]s.
    prot_gen: AtomicU64,
}

/// One cached vpage resolution: the fields a checked access needs, minus
/// anything that requires a division or a map probe.
#[derive(Clone, Copy, Debug)]
pub struct TlbEntry {
    /// [`AddressSpace::prot_generation`] at fill time.
    gen: u64,
    /// Global vpage index (identifies the entry for eviction).
    vpage: usize,
    /// Physical page index (the lock + storage to use).
    page: usize,
    /// First address of the vpage.
    base: u64,
    /// One past the last address of the vpage.
    limit: u64,
    /// Protection at fill time (exact while `gen` is current).
    prot: Prot,
}

/// A tiny per-thread cache of [`TlbEntry`]s (fully associative, round
/// robin replacement — big enough for a stencil's neighbor rows, small
/// enough to probe in a few compares).
#[derive(Debug, Default)]
pub struct AccessTlb {
    entries: [Option<TlbEntry>; 4],
    victim: usize,
}

impl AccessTlb {
    /// An empty TLB.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cached entry whose vpage covers `[addr, addr+len)` with a
    /// protection allowing `access`. The returned entry must still be
    /// generation-validated under the page lock by
    /// [`AddressSpace::tlb_read`] / [`AddressSpace::tlb_write`].
    #[inline]
    pub fn lookup(&self, addr: VAddr, len: usize, access: Access) -> Option<TlbEntry> {
        self.entries
            .iter()
            .flatten()
            .copied()
            .find(|e| addr.0 >= e.base && addr.0 + len as u64 <= e.limit && e.prot.allows(access))
    }

    /// Caches `e`, replacing any entry for the same vpage, else a round
    /// robin victim.
    pub fn insert(&mut self, e: TlbEntry) {
        let slot = self
            .entries
            .iter()
            .position(|s| s.is_some_and(|s| s.vpage == e.vpage))
            .unwrap_or_else(|| {
                let v = self.victim;
                self.victim = (v + 1) % self.entries.len();
                v
            });
        self.entries[slot] = Some(e);
    }

    /// Drops the entry for `vpage` (after a failed generation check).
    pub fn evict(&mut self, vpage: usize) {
        for s in self.entries.iter_mut() {
            if s.is_some_and(|e| e.vpage == vpage) {
                *s = None;
            }
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries = [None; 4];
    }
}

impl TlbEntry {
    /// The global vpage this entry resolves (for [`AccessTlb::evict`]).
    pub fn vpage(&self) -> usize {
        self.vpage
    }
}

impl AddressSpace {
    /// Creates an address space: all application vpages `NoAccess`, the
    /// privileged view `ReadWrite`, all pages zeroed.
    pub fn new(geo: Geometry) -> Self {
        let total = geo.total_vpages();
        let mut prots = Vec::with_capacity(total);
        for view in 0..geo.total_views() {
            let p = if view == geo.priv_view() {
                Prot::ReadWrite
            } else {
                Prot::NoAccess
            };
            for _ in 0..geo.pages() {
                prots.push(AtomicU8::new(p as u8));
            }
        }
        let pages = (0..geo.pages())
            .map(|_| RwLock::new(vec![0u8; geo.page_size()].into_boxed_slice()))
            .collect();
        Self {
            geo,
            prots,
            pages,
            prot_gen: AtomicU64::new(0),
        }
    }

    /// The shared geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current protection of a global vpage.
    ///
    /// # Panics
    ///
    /// Panics if `vpage` is out of range.
    pub fn prot(&self, vpage: usize) -> Prot {
        let raw = self.prots[vpage].load(Ordering::Acquire);
        Prot::from_u8(raw).expect("protection bytes are only written from Prot values")
    }

    /// Sets the protection of a global vpage, serializing against in-flight
    /// application copies of the same physical page.
    ///
    /// Returns [`MemError::PrivilegedViewProtection`] for privileged vpages,
    /// whose protection is fixed (§2.3.1).
    pub fn set_prot(&self, vpage: usize, prot: Prot) -> Result<(), MemError> {
        if vpage >= self.prots.len() {
            return Err(MemError::OutOfRange {
                addr: VAddr(0),
                len: 0,
            });
        }
        if vpage / self.geo.pages() == self.geo.priv_view() {
            return Err(MemError::PrivilegedViewProtection { vpage });
        }
        let page = vpage % self.geo.pages();
        // Exclusive page lock: no application copy of this physical page is
        // in flight while the protection changes. The generation bump under
        // the same lock invalidates every cached TlbEntry before any fast
        // path can next validate one against this page.
        let _guard = self.pages[page].write();
        self.prots[vpage].store(prot as u8, Ordering::Release);
        self.prot_gen.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// The protection-change generation; a [`TlbEntry`] is valid only
    /// while this still equals the value read at fill time.
    pub fn prot_generation(&self) -> u64 {
        self.prot_gen.load(Ordering::Acquire)
    }

    /// Resolves `addr`'s vpage into a cacheable [`TlbEntry`] (page index,
    /// vpage bounds, current protection, current generation — read
    /// consistently under the page lock). Returns `None` outside the
    /// shared region or for the privileged view, which bypasses
    /// protections and stays on the slow path.
    pub fn tlb_fill(&self, addr: VAddr) -> Option<TlbEntry> {
        let (loc, vpages) = self.geo.vpages_covering(addr, 1)?;
        if loc.view == self.geo.priv_view() {
            return None;
        }
        let vpage = vpages.start;
        let guard = self.pages[loc.page].read();
        // Under the page's read lock no protection change for *this* page
        // can interleave; reading the generation before the protection is
        // merely conservative for concurrent changes to other pages.
        let gen = self.prot_gen.load(Ordering::Acquire);
        let prot = self.prot(vpage);
        drop(guard);
        let base = addr.0 - loc.offset as u64;
        Some(TlbEntry {
            gen,
            vpage,
            page: loc.page,
            base,
            limit: base + self.geo.page_size() as u64,
            prot,
        })
    }

    /// Fast-path read through a cached [`TlbEntry`]: no address decode,
    /// no protection load — one page read lock, one generation compare,
    /// one copy. Returns `false` (without touching `buf`) if any
    /// protection changed since the entry was filled; the caller falls
    /// back to the checked slow path.
    ///
    /// The caller must have matched `addr`/`buf.len()` against the entry
    /// via [`AccessTlb::lookup`], which also checked the cached
    /// protection allows reads.
    #[inline]
    pub fn tlb_read(&self, e: &TlbEntry, addr: VAddr, buf: &mut [u8]) -> bool {
        let guard = self.pages[e.page].read();
        if self.prot_gen.load(Ordering::Acquire) != e.gen {
            return false;
        }
        let off = (addr.0 - e.base) as usize;
        buf.copy_from_slice(&guard[off..off + buf.len()]);
        true
    }

    /// Fast-path write through a cached [`TlbEntry`]; see
    /// [`tlb_read`](AddressSpace::tlb_read).
    #[inline]
    pub fn tlb_write(&self, e: &TlbEntry, addr: VAddr, data: &[u8]) -> bool {
        let mut guard = self.pages[e.page].write();
        if self.prot_gen.load(Ordering::Acquire) != e.gen {
            return false;
        }
        let off = (addr.0 - e.base) as usize;
        guard[off..off + data.len()].copy_from_slice(data);
        true
    }

    /// Checks whether `[addr, addr+len)` is accessible for `access`
    /// through the view `addr` belongs to, without touching data.
    ///
    /// The privileged view always passes.
    pub fn check(&self, addr: VAddr, len: usize, access: Access) -> Result<(), AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if loc.view == self.geo.priv_view() {
            return Ok(());
        }
        for vp in vpages {
            if !self.prot(vp).allows(access) {
                return Err(AccessError::Fault(AccessFault {
                    addr: self.fault_addr(addr, loc.view, vp),
                    access,
                    vpage: vp,
                }));
            }
        }
        Ok(())
    }

    /// Application read: copies `buf.len()` bytes starting at `addr` into
    /// `buf`, enforcing protections.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), AccessError> {
        let (loc, vpages) =
            self.geo
                .vpages_covering(addr, buf.len())
                .ok_or(MemError::OutOfRange {
                    addr,
                    len: buf.len(),
                })?;
        let privileged = loc.view == self.geo.priv_view();
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut dst = &mut buf[..];
        let mut vp_iter = vpages;
        while !dst.is_empty() {
            let take = dst.len().min(self.geo.page_size() - off);
            let guard = self.pages[page].read();
            if !privileged {
                let vp = vp_iter.next().expect("vpages cover the whole range");
                if !self.prot(vp).allows(Access::Read) {
                    return Err(AccessError::Fault(AccessFault {
                        addr: self.fault_addr(addr, loc.view, vp),
                        access: Access::Read,
                        vpage: vp,
                    }));
                }
            }
            dst[..take].copy_from_slice(&guard[off..off + take]);
            dst = &mut dst[take..];
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// Application write: copies `data` to `addr`, enforcing protections.
    pub fn write(&self, addr: VAddr, data: &[u8]) -> Result<(), AccessError> {
        let (loc, vpages) =
            self.geo
                .vpages_covering(addr, data.len())
                .ok_or(MemError::OutOfRange {
                    addr,
                    len: data.len(),
                })?;
        let privileged = loc.view == self.geo.priv_view();
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut src = data;
        let mut vp_iter = vpages;
        while !src.is_empty() {
            let take = src.len().min(self.geo.page_size() - off);
            let guard = self.pages[page].write();
            if !privileged {
                let vp = vp_iter.next().expect("vpages cover the whole range");
                if !self.prot(vp).allows(Access::Write) {
                    return Err(AccessError::Fault(AccessFault {
                        addr: self.fault_addr(addr, loc.view, vp),
                        access: Access::Write,
                        vpage: vp,
                    }));
                }
            }
            let mut pg = guard;
            pg[off..off + take].copy_from_slice(&src[..take]);
            src = &src[take..];
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// Application read that hands the caller a borrowed slice, avoiding a
    /// copy. The range must lie within a single page.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a page boundary (use
    /// [`read`](AddressSpace::read) for multi-page ranges).
    pub fn with_read<R>(
        &self,
        addr: VAddr,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        assert!(
            vpages.len() == 1,
            "with_read range must not cross a page boundary"
        );
        let guard = self.pages[loc.page].read();
        if loc.view != self.geo.priv_view() {
            let vp = vpages.start;
            if !self.prot(vp).allows(Access::Read) {
                return Err(AccessError::Fault(AccessFault {
                    addr,
                    access: Access::Read,
                    vpage: vp,
                }));
            }
        }
        Ok(f(&guard[loc.offset..loc.offset + len]))
    }

    /// Application in-place update of a single-page range: the closure gets
    /// a mutable slice. Checked like a write.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a page boundary.
    pub fn with_write<R>(
        &self,
        addr: VAddr,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        assert!(
            vpages.len() == 1,
            "with_write range must not cross a page boundary"
        );
        let mut guard = self.pages[loc.page].write();
        if loc.view != self.geo.priv_view() {
            let vp = vpages.start;
            if !self.prot(vp).allows(Access::Write) {
                return Err(AccessError::Fault(AccessFault {
                    addr,
                    access: Access::Write,
                    vpage: vp,
                }));
            }
        }
        Ok(f(&mut guard[loc.offset..loc.offset + len]))
    }

    /// Privileged read (server threads, §2.3.1): ignores application
    /// protections. `addr` may be expressed through any view.
    pub fn priv_read(&self, addr: VAddr, len: usize) -> Result<Vec<u8>, MemError> {
        let mut out = vec![0u8; len];
        let mut filled = 0usize;
        self.for_each_segment(addr, len, |page, off, take| {
            let guard = self.pages[page].read();
            out[filled..filled + take].copy_from_slice(&guard[off..off + take]);
            filled += take;
        })?;
        Ok(out)
    }

    /// Privileged write (zero-copy receive path of §3.5): ignores
    /// application protections.
    pub fn priv_write(&self, addr: VAddr, data: &[u8]) -> Result<(), MemError> {
        let mut used = 0usize;
        self.for_each_segment(addr, data.len(), |page, off, take| {
            let mut guard = self.pages[page].write();
            guard[off..off + take].copy_from_slice(&data[used..used + take]);
            used += take;
        })?;
        Ok(())
    }

    /// Atomically (per page) snapshots `[addr, addr+len)` and sets the
    /// covered vpages to `prot`: each page's copy and protection change
    /// happen under one exclusive page lock, so an application write to a
    /// page either completes before the snapshot (and is captured) or
    /// faults after the protection change. Used by the release-consistency
    /// extension's invalidation path, which must capture a dirty copy's
    /// final contents.
    pub fn snapshot_and_protect(
        &self,
        addr: VAddr,
        len: usize,
        prot: Prot,
    ) -> Result<Vec<u8>, MemError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if loc.view == self.geo.priv_view() {
            return Err(MemError::PrivilegedViewProtection {
                vpage: vpages.start,
            });
        }
        let mut out = vec![0u8; len];
        let mut filled = 0usize;
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut vp_iter = vpages;
        while filled < len {
            let take = (len - filled).min(self.geo.page_size() - off);
            let guard = self.pages[page].write();
            out[filled..filled + take].copy_from_slice(&guard[off..off + take]);
            let vp = vp_iter.next().expect("vpages cover the range");
            self.prots[vp].store(prot as u8, Ordering::Release);
            self.prot_gen.fetch_add(1, Ordering::Release);
            drop(guard);
            filled += take;
            off = 0;
            page += 1;
        }
        Ok(out)
    }

    fn for_each_segment(
        &self,
        addr: VAddr,
        len: usize,
        mut f: impl FnMut(usize, usize, usize),
    ) -> Result<(), MemError> {
        let (loc, _) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(self.geo.page_size() - off);
            f(page, off, take);
            remaining -= take;
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// The address to report in an [`AccessFault`] for vpage `vp`: the
    /// original address if it lies on that vpage, otherwise the vpage base.
    fn fault_addr(&self, addr: VAddr, view: usize, vp: usize) -> VAddr {
        let page = vp % self.geo.pages();
        match self.geo.decode(addr) {
            Some(l) if l.page == page && l.view == view => addr,
            _ => self.geo.addr_of(view, page, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(Geometry::with_layout(0x1000, 4096, 4, 2))
    }

    #[test]
    fn fresh_space_has_noaccess_app_views_and_rw_priv() {
        let s = space();
        let g = s.geometry().clone();
        for view in 0..g.views() {
            for page in 0..g.pages() {
                assert_eq!(s.prot(g.vpage_index(view, page)), Prot::NoAccess);
            }
        }
        for page in 0..g.pages() {
            assert_eq!(s.prot(g.vpage_index(g.priv_view(), page)), Prot::ReadWrite);
        }
    }

    #[test]
    fn app_access_faults_on_noaccess() {
        let s = space();
        let a = s.geometry().addr_of(0, 0, 16);
        let mut buf = [0u8; 4];
        match s.read(a, &mut buf) {
            Err(AccessError::Fault(f)) => {
                assert_eq!(f.access, Access::Read);
                assert_eq!(f.addr, a);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        match s.write(a, &buf) {
            Err(AccessError::Fault(f)) => assert_eq!(f.access, Access::Write),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn readonly_allows_read_but_not_write() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(0, 1);
        s.set_prot(vp, Prot::ReadOnly).unwrap();
        let a = g.addr_of(0, 1, 0);
        let mut buf = [0u8; 8];
        s.read(a, &mut buf).unwrap();
        assert!(matches!(
            s.write(a, &buf),
            Err(AccessError::Fault(AccessFault {
                access: Access::Write,
                ..
            }))
        ));
    }

    #[test]
    fn data_is_shared_across_views_but_protection_is_not() {
        let s = space();
        let g = s.geometry().clone();
        // View 0 page 2 writable; view 1 page 2 stays NoAccess.
        s.set_prot(g.vpage_index(0, 2), Prot::ReadWrite).unwrap();
        let a0 = g.addr_of(0, 2, 100);
        s.write(a0, b"multiview").unwrap();
        // Same physical bytes visible through view 1... but protected.
        let a1 = g.addr_of(1, 2, 100);
        let mut buf = [0u8; 9];
        assert!(matches!(s.read(a1, &mut buf), Err(AccessError::Fault(_))));
        // ...and readable once view 1 is opened: the storage is shared.
        s.set_prot(g.vpage_index(1, 2), Prot::ReadOnly).unwrap();
        s.read(a1, &mut buf).unwrap();
        assert_eq!(&buf, b"multiview");
    }

    #[test]
    fn privileged_view_bypasses_protection() {
        let s = space();
        let g = s.geometry().clone();
        let ap = g.addr_of(g.priv_view(), 0, 0);
        s.priv_write(ap, b"server").unwrap();
        let got = s.priv_read(ap, 6).unwrap();
        assert_eq!(got, b"server");
        // Even read/write through the privileged view addresses succeed.
        let mut buf = [0u8; 6];
        s.read(ap, &mut buf).unwrap();
        assert_eq!(&buf, b"server");
    }

    #[test]
    fn privileged_protection_cannot_change() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(g.priv_view(), 0);
        assert!(matches!(
            s.set_prot(vp, Prot::NoAccess),
            Err(MemError::PrivilegedViewProtection { .. })
        ));
    }

    #[test]
    fn priv_write_then_app_read_after_grant() {
        let s = space();
        let g = s.geometry().clone();
        // Server receives a minipage into the privileged view, then grants.
        let app_addr = g.addr_of(1, 3, 200);
        let priv_addr = g.to_priv(app_addr).unwrap();
        s.priv_write(priv_addr, &[7u8; 64]).unwrap();
        s.set_prot(g.vpage_index(1, 3), Prot::ReadOnly).unwrap();
        let mut buf = [0u8; 64];
        s.read(app_addr, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
    }

    #[test]
    fn multi_page_priv_roundtrip() {
        let s = space();
        let g = s.geometry().clone();
        let a = g.addr_of(0, 0, 4000);
        let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        s.priv_write(a, &data).unwrap();
        assert_eq!(s.priv_read(a, 600).unwrap(), data);
    }

    #[test]
    fn multi_page_app_write_requires_all_vpages() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 0), Prot::ReadWrite).unwrap();
        // Page 1 in view 0 stays NoAccess; a write crossing into it faults.
        let a = g.addr_of(0, 0, 4090);
        let err = s.write(a, &[1u8; 20]).unwrap_err();
        match err {
            AccessError::Fault(f) => assert_eq!(f.vpage, g.vpage_index(0, 1)),
            other => panic!("unexpected {other:?}"),
        }
        // Open page 1 and it goes through.
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        s.write(a, &[1u8; 20]).unwrap();
        assert_eq!(s.priv_read(a, 20).unwrap(), vec![1u8; 20]);
    }

    #[test]
    fn with_read_and_with_write_in_place() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 8);
        s.with_write(a, 4, |sl| sl.copy_from_slice(&[1, 2, 3, 4]))
            .unwrap();
        let sum = s.with_read(a, 4, |sl| sl.iter().map(|&b| b as u32).sum::<u32>());
        assert_eq!(sum.unwrap(), 10);
    }

    #[test]
    fn snapshot_and_protect_is_atomic_per_page() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 100);
        s.write(a, b"dirty-bytes").unwrap();
        let snap = s.snapshot_and_protect(a, 11, Prot::NoAccess).unwrap();
        assert_eq!(snap, b"dirty-bytes");
        assert_eq!(s.prot(g.vpage_index(0, 1)), Prot::NoAccess);
        let mut buf = [0u8; 1];
        assert!(matches!(s.read(a, &mut buf), Err(AccessError::Fault(_))));
        // Privileged-view targets are rejected.
        let p = g.to_priv(a).unwrap();
        assert!(s.snapshot_and_protect(p, 4, Prot::NoAccess).is_err());
    }

    #[test]
    fn tlb_fast_path_reads_and_writes() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(0, 1);
        s.set_prot(vp, Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 100);
        let mut tlb = AccessTlb::new();
        assert!(tlb.lookup(a, 4, Access::Read).is_none());
        let e = s.tlb_fill(a).unwrap();
        assert_eq!(e.vpage(), vp);
        tlb.insert(e);
        let e = tlb.lookup(a, 4, Access::Write).expect("cached entry");
        assert!(s.tlb_write(&e, a, &[1, 2, 3, 4]));
        let mut buf = [0u8; 4];
        let e = tlb.lookup(a, 4, Access::Read).expect("cached entry");
        assert!(s.tlb_read(&e, a, &mut buf));
        assert_eq!(buf, [1, 2, 3, 4]);
        // An access past the vpage, or without the needed protection,
        // never matches the cache.
        assert!(tlb.lookup(g.addr_of(0, 2, 0), 4, Access::Read).is_none());
        s.set_prot(vp, Prot::ReadOnly).unwrap();
        let e = s.tlb_fill(a).unwrap();
        tlb.insert(e);
        assert!(tlb.lookup(a, 4, Access::Write).is_none());
        assert!(tlb.lookup(a, 4, Access::Read).is_some());
    }

    #[test]
    fn tlb_entry_is_invalidated_by_protection_change() {
        // write → invalidate → read must fault (miss), not hit the stale
        // cached entry: the generation bumped by set_prot defeats the
        // cached ReadWrite resolution.
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(0, 1);
        s.set_prot(vp, Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 0);
        let mut tlb = AccessTlb::new();
        tlb.insert(s.tlb_fill(a).unwrap());
        let e = tlb.lookup(a, 8, Access::Write).expect("cached entry");
        assert!(s.tlb_write(&e, a, &[9u8; 8]));
        // The invalidation (e.g. a remote writer taking ownership).
        s.set_prot(vp, Prot::NoAccess).unwrap();
        // The stale entry still matches the lookup — but the generation
        // check under the page lock rejects it...
        let stale = tlb.lookup(a, 8, Access::Read).expect("stale entry");
        let mut buf = [0u8; 8];
        assert!(!s.tlb_read(&stale, a, &mut buf));
        tlb.evict(stale.vpage());
        assert!(tlb.lookup(a, 8, Access::Read).is_none());
        // ...and the slow path faults, exactly as without a TLB.
        assert!(matches!(s.read(a, &mut buf), Err(AccessError::Fault(_))));
        // A refill after a re-grant works again.
        s.set_prot(vp, Prot::ReadOnly).unwrap();
        tlb.insert(s.tlb_fill(a).unwrap());
        let e = tlb.lookup(a, 8, Access::Read).expect("refilled");
        assert!(s.tlb_read(&e, a, &mut buf));
        assert_eq!(buf, [9u8; 8]);
    }

    #[test]
    fn tlb_is_invalidated_by_snapshot_and_protect() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(0, 1);
        s.set_prot(vp, Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 0);
        let mut tlb = AccessTlb::new();
        tlb.insert(s.tlb_fill(a).unwrap());
        s.snapshot_and_protect(a, 16, Prot::ReadOnly).unwrap();
        let stale = tlb.lookup(a, 8, Access::Write).expect("stale entry");
        assert!(!s.tlb_write(&stale, a, &[1u8; 8]));
    }

    #[test]
    fn tlb_replacement_keeps_recent_entries() {
        let s = space();
        let g = s.geometry().clone();
        let mut tlb = AccessTlb::new();
        for page in 0..4 {
            s.set_prot(g.vpage_index(0, page), Prot::ReadWrite).unwrap();
            tlb.insert(s.tlb_fill(g.addr_of(0, page, 0)).unwrap());
        }
        // All four resident; a fifth (same vpage refreshed) replaces in
        // place, not a victim.
        for page in 0..4 {
            assert!(
                tlb.lookup(g.addr_of(0, page, 10), 1, Access::Read)
                    .is_some(),
                "page {page} evicted prematurely"
            );
        }
        tlb.insert(s.tlb_fill(g.addr_of(0, 2, 0)).unwrap());
        assert!(tlb.lookup(g.addr_of(0, 0, 0), 1, Access::Read).is_some());
        tlb.clear();
        assert!(tlb.lookup(g.addr_of(0, 0, 0), 1, Access::Read).is_none());
    }

    #[test]
    fn out_of_range_is_mem_error() {
        let s = space();
        let mut buf = [0u8; 1];
        assert!(matches!(
            s.read(VAddr(0x10), &mut buf),
            Err(AccessError::Mem(MemError::OutOfRange { .. }))
        ));
    }
}
