//! Per-host address space: protections + page storage + checked access.

use crate::addr::{Geometry, VAddr};
use crate::fault::{Access, AccessFault, MemError, Prot};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU8, Ordering};

/// Why a checked access did not complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessError {
    /// Hard error: address outside the shared region (a program bug).
    Mem(MemError),
    /// An access fault to be resolved by the DSM protocol.
    Fault(AccessFault),
}

impl From<MemError> for AccessError {
    fn from(e: MemError) -> Self {
        AccessError::Mem(e)
    }
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Mem(e) => write!(f, "{e}"),
            AccessError::Fault(a) => write!(f, "{a}"),
        }
    }
}

impl std::error::Error for AccessError {}

/// One simulated host's mapping of the shared memory object.
///
/// Holds the host's local copy of every physical page plus the protection
/// of every vpage of every view. Application access goes through
/// [`read`](AddressSpace::read) / [`write`](AddressSpace::write), which
/// enforce protections like the MMU would; DSM server threads use the
/// `priv_*` methods, which model the privileged view (§2.3.1) and ignore
/// application protections.
///
/// # Concurrency
///
/// Application copies hold the underlying physical page lock while they
/// re-check the vpage protection and move bytes, and protection *changes*
/// ([`set_prot`](AddressSpace::set_prot)) take the same lock exclusively.
/// An invalidation therefore cannot interleave with an in-flight
/// application access: either the access completes first (and serializes
/// before the remote write, which is legal under sequential consistency
/// because the writer is still blocked waiting for the invalidation ack) or
/// the protection change lands first and the access faults.
pub struct AddressSpace {
    geo: Geometry,
    prots: Vec<AtomicU8>,
    pages: Vec<RwLock<Box<[u8]>>>,
}

impl AddressSpace {
    /// Creates an address space: all application vpages `NoAccess`, the
    /// privileged view `ReadWrite`, all pages zeroed.
    pub fn new(geo: Geometry) -> Self {
        let total = geo.total_vpages();
        let mut prots = Vec::with_capacity(total);
        for view in 0..geo.total_views() {
            let p = if view == geo.priv_view() {
                Prot::ReadWrite
            } else {
                Prot::NoAccess
            };
            for _ in 0..geo.pages() {
                prots.push(AtomicU8::new(p as u8));
            }
        }
        let pages = (0..geo.pages())
            .map(|_| RwLock::new(vec![0u8; geo.page_size()].into_boxed_slice()))
            .collect();
        Self { geo, prots, pages }
    }

    /// The shared geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current protection of a global vpage.
    ///
    /// # Panics
    ///
    /// Panics if `vpage` is out of range.
    pub fn prot(&self, vpage: usize) -> Prot {
        let raw = self.prots[vpage].load(Ordering::Acquire);
        Prot::from_u8(raw).expect("protection bytes are only written from Prot values")
    }

    /// Sets the protection of a global vpage, serializing against in-flight
    /// application copies of the same physical page.
    ///
    /// Returns [`MemError::PrivilegedViewProtection`] for privileged vpages,
    /// whose protection is fixed (§2.3.1).
    pub fn set_prot(&self, vpage: usize, prot: Prot) -> Result<(), MemError> {
        if vpage >= self.prots.len() {
            return Err(MemError::OutOfRange {
                addr: VAddr(0),
                len: 0,
            });
        }
        if vpage / self.geo.pages() == self.geo.priv_view() {
            return Err(MemError::PrivilegedViewProtection { vpage });
        }
        let page = vpage % self.geo.pages();
        // Exclusive page lock: no application copy of this physical page is
        // in flight while the protection changes.
        let _guard = self.pages[page].write();
        self.prots[vpage].store(prot as u8, Ordering::Release);
        Ok(())
    }

    /// Checks whether `[addr, addr+len)` is accessible for `access`
    /// through the view `addr` belongs to, without touching data.
    ///
    /// The privileged view always passes.
    pub fn check(&self, addr: VAddr, len: usize, access: Access) -> Result<(), AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if loc.view == self.geo.priv_view() {
            return Ok(());
        }
        for vp in vpages {
            if !self.prot(vp).allows(access) {
                return Err(AccessError::Fault(AccessFault {
                    addr: self.fault_addr(addr, loc.view, vp),
                    access,
                    vpage: vp,
                }));
            }
        }
        Ok(())
    }

    /// Application read: copies `buf.len()` bytes starting at `addr` into
    /// `buf`, enforcing protections.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> Result<(), AccessError> {
        let (loc, vpages) =
            self.geo
                .vpages_covering(addr, buf.len())
                .ok_or(MemError::OutOfRange {
                    addr,
                    len: buf.len(),
                })?;
        let privileged = loc.view == self.geo.priv_view();
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut dst = &mut buf[..];
        let mut vp_iter = vpages;
        while !dst.is_empty() {
            let take = dst.len().min(self.geo.page_size() - off);
            let guard = self.pages[page].read();
            if !privileged {
                let vp = vp_iter.next().expect("vpages cover the whole range");
                if !self.prot(vp).allows(Access::Read) {
                    return Err(AccessError::Fault(AccessFault {
                        addr: self.fault_addr(addr, loc.view, vp),
                        access: Access::Read,
                        vpage: vp,
                    }));
                }
            }
            dst[..take].copy_from_slice(&guard[off..off + take]);
            dst = &mut dst[take..];
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// Application write: copies `data` to `addr`, enforcing protections.
    pub fn write(&self, addr: VAddr, data: &[u8]) -> Result<(), AccessError> {
        let (loc, vpages) =
            self.geo
                .vpages_covering(addr, data.len())
                .ok_or(MemError::OutOfRange {
                    addr,
                    len: data.len(),
                })?;
        let privileged = loc.view == self.geo.priv_view();
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut src = data;
        let mut vp_iter = vpages;
        while !src.is_empty() {
            let take = src.len().min(self.geo.page_size() - off);
            let guard = self.pages[page].write();
            if !privileged {
                let vp = vp_iter.next().expect("vpages cover the whole range");
                if !self.prot(vp).allows(Access::Write) {
                    return Err(AccessError::Fault(AccessFault {
                        addr: self.fault_addr(addr, loc.view, vp),
                        access: Access::Write,
                        vpage: vp,
                    }));
                }
            }
            let mut pg = guard;
            pg[off..off + take].copy_from_slice(&src[..take]);
            src = &src[take..];
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// Application read that hands the caller a borrowed slice, avoiding a
    /// copy. The range must lie within a single page.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a page boundary (use
    /// [`read`](AddressSpace::read) for multi-page ranges).
    pub fn with_read<R>(
        &self,
        addr: VAddr,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        assert!(
            vpages.len() == 1,
            "with_read range must not cross a page boundary"
        );
        let guard = self.pages[loc.page].read();
        if loc.view != self.geo.priv_view() {
            let vp = vpages.start;
            if !self.prot(vp).allows(Access::Read) {
                return Err(AccessError::Fault(AccessFault {
                    addr,
                    access: Access::Read,
                    vpage: vp,
                }));
            }
        }
        Ok(f(&guard[loc.offset..loc.offset + len]))
    }

    /// Application in-place update of a single-page range: the closure gets
    /// a mutable slice. Checked like a write.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses a page boundary.
    pub fn with_write<R>(
        &self,
        addr: VAddr,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, AccessError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        assert!(
            vpages.len() == 1,
            "with_write range must not cross a page boundary"
        );
        let mut guard = self.pages[loc.page].write();
        if loc.view != self.geo.priv_view() {
            let vp = vpages.start;
            if !self.prot(vp).allows(Access::Write) {
                return Err(AccessError::Fault(AccessFault {
                    addr,
                    access: Access::Write,
                    vpage: vp,
                }));
            }
        }
        Ok(f(&mut guard[loc.offset..loc.offset + len]))
    }

    /// Privileged read (server threads, §2.3.1): ignores application
    /// protections. `addr` may be expressed through any view.
    pub fn priv_read(&self, addr: VAddr, len: usize) -> Result<Vec<u8>, MemError> {
        let mut out = vec![0u8; len];
        let mut filled = 0usize;
        self.for_each_segment(addr, len, |page, off, take| {
            let guard = self.pages[page].read();
            out[filled..filled + take].copy_from_slice(&guard[off..off + take]);
            filled += take;
        })?;
        Ok(out)
    }

    /// Privileged write (zero-copy receive path of §3.5): ignores
    /// application protections.
    pub fn priv_write(&self, addr: VAddr, data: &[u8]) -> Result<(), MemError> {
        let mut used = 0usize;
        self.for_each_segment(addr, data.len(), |page, off, take| {
            let mut guard = self.pages[page].write();
            guard[off..off + take].copy_from_slice(&data[used..used + take]);
            used += take;
        })?;
        Ok(())
    }

    /// Atomically (per page) snapshots `[addr, addr+len)` and sets the
    /// covered vpages to `prot`: each page's copy and protection change
    /// happen under one exclusive page lock, so an application write to a
    /// page either completes before the snapshot (and is captured) or
    /// faults after the protection change. Used by the release-consistency
    /// extension's invalidation path, which must capture a dirty copy's
    /// final contents.
    pub fn snapshot_and_protect(
        &self,
        addr: VAddr,
        len: usize,
        prot: Prot,
    ) -> Result<Vec<u8>, MemError> {
        let (loc, vpages) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        if loc.view == self.geo.priv_view() {
            return Err(MemError::PrivilegedViewProtection {
                vpage: vpages.start,
            });
        }
        let mut out = vec![0u8; len];
        let mut filled = 0usize;
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut vp_iter = vpages;
        while filled < len {
            let take = (len - filled).min(self.geo.page_size() - off);
            let guard = self.pages[page].write();
            out[filled..filled + take].copy_from_slice(&guard[off..off + take]);
            let vp = vp_iter.next().expect("vpages cover the range");
            self.prots[vp].store(prot as u8, Ordering::Release);
            drop(guard);
            filled += take;
            off = 0;
            page += 1;
        }
        Ok(out)
    }

    fn for_each_segment(
        &self,
        addr: VAddr,
        len: usize,
        mut f: impl FnMut(usize, usize, usize),
    ) -> Result<(), MemError> {
        let (loc, _) = self
            .geo
            .vpages_covering(addr, len)
            .ok_or(MemError::OutOfRange { addr, len })?;
        let mut page = loc.page;
        let mut off = loc.offset;
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(self.geo.page_size() - off);
            f(page, off, take);
            remaining -= take;
            off = 0;
            page += 1;
        }
        Ok(())
    }

    /// The address to report in an [`AccessFault`] for vpage `vp`: the
    /// original address if it lies on that vpage, otherwise the vpage base.
    fn fault_addr(&self, addr: VAddr, view: usize, vp: usize) -> VAddr {
        let page = vp % self.geo.pages();
        match self.geo.decode(addr) {
            Some(l) if l.page == page && l.view == view => addr,
            _ => self.geo.addr_of(view, page, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(Geometry::with_layout(0x1000, 4096, 4, 2))
    }

    #[test]
    fn fresh_space_has_noaccess_app_views_and_rw_priv() {
        let s = space();
        let g = s.geometry().clone();
        for view in 0..g.views() {
            for page in 0..g.pages() {
                assert_eq!(s.prot(g.vpage_index(view, page)), Prot::NoAccess);
            }
        }
        for page in 0..g.pages() {
            assert_eq!(s.prot(g.vpage_index(g.priv_view(), page)), Prot::ReadWrite);
        }
    }

    #[test]
    fn app_access_faults_on_noaccess() {
        let s = space();
        let a = s.geometry().addr_of(0, 0, 16);
        let mut buf = [0u8; 4];
        match s.read(a, &mut buf) {
            Err(AccessError::Fault(f)) => {
                assert_eq!(f.access, Access::Read);
                assert_eq!(f.addr, a);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        match s.write(a, &buf) {
            Err(AccessError::Fault(f)) => assert_eq!(f.access, Access::Write),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn readonly_allows_read_but_not_write() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(0, 1);
        s.set_prot(vp, Prot::ReadOnly).unwrap();
        let a = g.addr_of(0, 1, 0);
        let mut buf = [0u8; 8];
        s.read(a, &mut buf).unwrap();
        assert!(matches!(
            s.write(a, &buf),
            Err(AccessError::Fault(AccessFault {
                access: Access::Write,
                ..
            }))
        ));
    }

    #[test]
    fn data_is_shared_across_views_but_protection_is_not() {
        let s = space();
        let g = s.geometry().clone();
        // View 0 page 2 writable; view 1 page 2 stays NoAccess.
        s.set_prot(g.vpage_index(0, 2), Prot::ReadWrite).unwrap();
        let a0 = g.addr_of(0, 2, 100);
        s.write(a0, b"multiview").unwrap();
        // Same physical bytes visible through view 1... but protected.
        let a1 = g.addr_of(1, 2, 100);
        let mut buf = [0u8; 9];
        assert!(matches!(s.read(a1, &mut buf), Err(AccessError::Fault(_))));
        // ...and readable once view 1 is opened: the storage is shared.
        s.set_prot(g.vpage_index(1, 2), Prot::ReadOnly).unwrap();
        s.read(a1, &mut buf).unwrap();
        assert_eq!(&buf, b"multiview");
    }

    #[test]
    fn privileged_view_bypasses_protection() {
        let s = space();
        let g = s.geometry().clone();
        let ap = g.addr_of(g.priv_view(), 0, 0);
        s.priv_write(ap, b"server").unwrap();
        let got = s.priv_read(ap, 6).unwrap();
        assert_eq!(got, b"server");
        // Even read/write through the privileged view addresses succeed.
        let mut buf = [0u8; 6];
        s.read(ap, &mut buf).unwrap();
        assert_eq!(&buf, b"server");
    }

    #[test]
    fn privileged_protection_cannot_change() {
        let s = space();
        let g = s.geometry().clone();
        let vp = g.vpage_index(g.priv_view(), 0);
        assert!(matches!(
            s.set_prot(vp, Prot::NoAccess),
            Err(MemError::PrivilegedViewProtection { .. })
        ));
    }

    #[test]
    fn priv_write_then_app_read_after_grant() {
        let s = space();
        let g = s.geometry().clone();
        // Server receives a minipage into the privileged view, then grants.
        let app_addr = g.addr_of(1, 3, 200);
        let priv_addr = g.to_priv(app_addr).unwrap();
        s.priv_write(priv_addr, &[7u8; 64]).unwrap();
        s.set_prot(g.vpage_index(1, 3), Prot::ReadOnly).unwrap();
        let mut buf = [0u8; 64];
        s.read(app_addr, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
    }

    #[test]
    fn multi_page_priv_roundtrip() {
        let s = space();
        let g = s.geometry().clone();
        let a = g.addr_of(0, 0, 4000);
        let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        s.priv_write(a, &data).unwrap();
        assert_eq!(s.priv_read(a, 600).unwrap(), data);
    }

    #[test]
    fn multi_page_app_write_requires_all_vpages() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 0), Prot::ReadWrite).unwrap();
        // Page 1 in view 0 stays NoAccess; a write crossing into it faults.
        let a = g.addr_of(0, 0, 4090);
        let err = s.write(a, &[1u8; 20]).unwrap_err();
        match err {
            AccessError::Fault(f) => assert_eq!(f.vpage, g.vpage_index(0, 1)),
            other => panic!("unexpected {other:?}"),
        }
        // Open page 1 and it goes through.
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        s.write(a, &[1u8; 20]).unwrap();
        assert_eq!(s.priv_read(a, 20).unwrap(), vec![1u8; 20]);
    }

    #[test]
    fn with_read_and_with_write_in_place() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 8);
        s.with_write(a, 4, |sl| sl.copy_from_slice(&[1, 2, 3, 4]))
            .unwrap();
        let sum = s.with_read(a, 4, |sl| sl.iter().map(|&b| b as u32).sum::<u32>());
        assert_eq!(sum.unwrap(), 10);
    }

    #[test]
    fn snapshot_and_protect_is_atomic_per_page() {
        let s = space();
        let g = s.geometry().clone();
        s.set_prot(g.vpage_index(0, 1), Prot::ReadWrite).unwrap();
        let a = g.addr_of(0, 1, 100);
        s.write(a, b"dirty-bytes").unwrap();
        let snap = s.snapshot_and_protect(a, 11, Prot::NoAccess).unwrap();
        assert_eq!(snap, b"dirty-bytes");
        assert_eq!(s.prot(g.vpage_index(0, 1)), Prot::NoAccess);
        let mut buf = [0u8; 1];
        assert!(matches!(s.read(a, &mut buf), Err(AccessError::Fault(_))));
        // Privileged-view targets are rejected.
        let p = g.to_priv(a).unwrap();
        assert!(s.snapshot_and_protect(p, 4, Prot::NoAccess).is_err());
    }

    #[test]
    fn out_of_range_is_mem_error() {
        let s = space();
        let mut buf = [0u8; 1];
        assert!(matches!(
            s.read(VAddr(0x10), &mut buf),
            Err(AccessError::Mem(MemError::OutOfRange { .. }))
        ));
    }
}
