//! Simulated virtual memory with MultiView semantics.
//!
//! This crate models exactly the part of Windows NT that the paper's
//! MultiView technique relies on (§2.4):
//!
//! * a **memory object** — a region of physical pages backed by the paging
//!   file (`CreateFileMapping`),
//! * several **views** of that object mapped at distinct virtual address
//!   ranges (`MapViewOfFile`), all windows onto the *same* physical pages,
//! * independent per-**vpage** protection (`VirtualProtect`): the same
//!   physical page can be `ReadWrite` through one view and `NoAccess`
//!   through another,
//! * **access faults** raised when an application touches a vpage whose
//!   protection does not permit the access, and
//! * a **privileged view** whose protection is permanently `ReadWrite`,
//!   used by DSM server threads for atomic updates and zero-copy receive.
//!
//! One [`AddressSpace`] instance represents one simulated host's mapping of
//! the shared memory object. All hosts share one [`Geometry`], so a virtual
//! address means the same thing everywhere and no translation is needed
//! between hosts — the property §2.4 obtains by "carefully configuring the
//! DSM addresses".
//!
//! The real-OS counterpart of this crate (actual `mmap`/`mprotect`/SIGSEGV)
//! lives in the `hostmv` crate.

mod fault;
mod space;

// The address vocabulary lives in `sim-core` (backends real and simulated
// share it); re-exported here so memory-layer callers keep one import path.
pub use fault::{Access, AccessFault, MemError, Prot};
pub use sim_core::{Geometry, Loc, VAddr, DEFAULT_BASE, DEFAULT_PAGE_SIZE};
pub use space::{AccessError, AccessTlb, AddressSpace, TlbEntry};
