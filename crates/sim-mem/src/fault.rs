//! Protections, access kinds, and fault/error types.

use sim_core::VAddr;
use std::fmt;

/// Per-vpage protection, exactly the three states §2.2 uses:
/// "A NoAccess protection indicates a non-present minipage, a ReadOnly
/// protection is set for read copies, and a writable copy gets a ReadWrite
/// protection."
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(u8)]
pub enum Prot {
    /// The minipage is not present on this host.
    #[default]
    NoAccess = 0,
    /// A read copy is present.
    ReadOnly = 1,
    /// The (single) writable copy is present.
    ReadWrite = 2,
}

impl Prot {
    /// Whether this protection permits `access`.
    #[inline]
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self != Prot::NoAccess,
            Access::Write => self == Prot::ReadWrite,
        }
    }

    /// The meet (greatest lower bound) of two protections: the protection a
    /// composed view must expose (§5 "Composed-Views": "the least of the
    /// access permissions of its components").
    #[inline]
    pub fn meet(self, other: Prot) -> Prot {
        self.min(other)
    }

    /// Decodes the `repr(u8)` value; inverse of `as u8`.
    pub fn from_u8(v: u8) -> Option<Prot> {
        match v {
            0 => Some(Prot::NoAccess),
            1 => Some(Prot::ReadOnly),
            2 => Some(Prot::ReadWrite),
            _ => None,
        }
    }
}

/// The kind of memory access an application performs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
        }
    }
}

/// An access fault: the simulated equivalent of the hardware page fault the
/// DSM's exception handler receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessFault {
    /// The faulting virtual address.
    pub addr: VAddr,
    /// Load or store.
    pub access: Access,
    /// Global vpage index of the faulting vpage.
    pub vpage: usize,
}

impl fmt::Display for AccessFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {} (vpage {})",
            self.access, self.addr, self.vpage
        )
    }
}

/// Errors from the simulated memory system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The address (or the range it starts) lies outside every view, or a
    /// range crosses the end of the memory object.
    OutOfRange {
        /// Offending address.
        addr: VAddr,
        /// Length of the attempted access.
        len: usize,
    },
    /// Attempted to change the protection of a privileged-view vpage,
    /// which is fixed at `ReadWrite` (§2.3.1).
    PrivilegedViewProtection {
        /// The privileged vpage whose protection was targeted.
        vpage: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "address range {addr}+{len} outside the shared region")
            }
            MemError::PrivilegedViewProtection { vpage } => {
                write!(f, "privileged view protection is immutable (vpage {vpage})")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_lattice_allows() {
        assert!(!Prot::NoAccess.allows(Access::Read));
        assert!(!Prot::NoAccess.allows(Access::Write));
        assert!(Prot::ReadOnly.allows(Access::Read));
        assert!(!Prot::ReadOnly.allows(Access::Write));
        assert!(Prot::ReadWrite.allows(Access::Read));
        assert!(Prot::ReadWrite.allows(Access::Write));
    }

    #[test]
    fn meet_is_min() {
        assert_eq!(Prot::ReadWrite.meet(Prot::ReadOnly), Prot::ReadOnly);
        assert_eq!(Prot::ReadOnly.meet(Prot::NoAccess), Prot::NoAccess);
        assert_eq!(Prot::ReadWrite.meet(Prot::ReadWrite), Prot::ReadWrite);
        // Commutative.
        assert_eq!(
            Prot::ReadOnly.meet(Prot::ReadWrite),
            Prot::ReadWrite.meet(Prot::ReadOnly)
        );
    }

    #[test]
    fn prot_u8_roundtrip() {
        for p in [Prot::NoAccess, Prot::ReadOnly, Prot::ReadWrite] {
            assert_eq!(Prot::from_u8(p as u8), Some(p));
        }
        assert_eq!(Prot::from_u8(3), None);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = MemError::OutOfRange {
            addr: VAddr(0x10),
            len: 8,
        };
        assert!(e.to_string().contains("0x10"));
        let p = MemError::PrivilegedViewProtection { vpage: 5 };
        assert!(p.to_string().contains("privileged"));
        let f = AccessFault {
            addr: VAddr(0x20),
            access: Access::Write,
            vpage: 3,
        };
        assert!(f.to_string().contains("write fault"));
    }
}
