//! Property-based tests of the simulated virtual memory.

use proptest::prelude::*;
use sim_mem::{Access, AccessError, AddressSpace, Geometry, Prot};

fn space(pages: usize, views: usize) -> AddressSpace {
    AddressSpace::new(Geometry::new(pages, views))
}

proptest! {
    /// Privileged write/read round-trips at arbitrary in-range offsets and
    /// lengths, through arbitrary views (shared physical storage).
    #[test]
    fn priv_roundtrip(
        page in 0usize..8,
        offset in 0usize..4096,
        len in 1usize..8192,
        view_w in 0usize..4,
        view_r in 0usize..4,
        seed in any::<u8>(),
    ) {
        let s = space(8, 3); // 3 app views + privileged = indices 0..=3.
        let geo = s.geometry().clone();
        let start = page * 4096 + offset;
        prop_assume!(start + len <= 8 * 4096);
        let addr_w = geo.addr_of(view_w, page, offset);
        let addr_r = geo.addr_of(view_r, page, offset);
        let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_add(seed)).collect();
        s.priv_write(addr_w, &data).expect("in range");
        prop_assert_eq!(s.priv_read(addr_r, len).expect("in range"), data);
    }

    /// Protection changes through one view never affect any other view's
    /// protections.
    #[test]
    fn protection_isolation(
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0u8..3), 1..60),
    ) {
        let s = space(8, 3);
        let geo = s.geometry().clone();
        let mut shadow = [[Prot::NoAccess; 8]; 3];
        for &(view, page, p) in &ops {
            let prot = Prot::from_u8(p).expect("0..3");
            s.set_prot(geo.vpage_index(view, page), prot).expect("app vpage");
            shadow[view][page] = prot;
        }
        for view in 0..3 {
            for page in 0..8 {
                prop_assert_eq!(s.prot(geo.vpage_index(view, page)), shadow[view][page]);
            }
        }
        // The privileged view never moved.
        for page in 0..8 {
            prop_assert_eq!(s.prot(geo.vpage_index(geo.priv_view(), page)), Prot::ReadWrite);
        }
    }

    /// The MMU model: an application access succeeds iff every covered
    /// vpage allows it.
    #[test]
    fn access_checks_match_protections(
        offset in 0usize..4096,
        len in 1usize..6000,
        p0 in 0u8..3,
        p1 in 0u8..3,
        write in any::<bool>(),
    ) {
        let s = space(4, 2);
        let geo = s.geometry().clone();
        prop_assume!(offset + len <= 2 * 4096);
        s.set_prot(geo.vpage_index(0, 0), Prot::from_u8(p0).expect("valid")).expect("ok");
        s.set_prot(geo.vpage_index(0, 1), Prot::from_u8(p1).expect("valid")).expect("ok");
        let addr = geo.addr_of(0, 0, offset);
        let access = if write { Access::Write } else { Access::Read };
        let covered_second_page = offset + len > 4096;
        let allowed = {
            let a0 = Prot::from_u8(p0).expect("valid").allows(access);
            let a1 = Prot::from_u8(p1).expect("valid").allows(access);
            a0 && (!covered_second_page || a1)
        };
        let got = s.check(addr, len, access);
        if allowed {
            prop_assert!(got.is_ok(), "{got:?}");
        } else {
            prop_assert!(matches!(got, Err(AccessError::Fault(_))), "{got:?}");
        }
    }

    /// snapshot_and_protect returns exactly what an app could have read,
    /// and afterwards the range is sealed.
    #[test]
    fn snapshot_and_protect_roundtrip(
        offset in 0usize..4096,
        len in 1usize..6000,
        seed in any::<u8>(),
    ) {
        let s = space(4, 2);
        let geo = s.geometry().clone();
        prop_assume!(offset + len <= 2 * 4096);
        let addr = geo.addr_of(1, 0, offset);
        let data: Vec<u8> = (0..len).map(|i| (i as u8) ^ seed).collect();
        s.priv_write(addr, &data).expect("in range");
        let snap = s.snapshot_and_protect(addr, len, Prot::NoAccess).expect("app view");
        prop_assert_eq!(snap, data);
        prop_assert!(matches!(
            s.check(addr, len, Access::Read),
            Err(AccessError::Fault(_))
        ));
    }
}
