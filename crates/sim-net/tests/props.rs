//! Property-based tests of the message fabric and the service timeline.

use proptest::prelude::*;
use sim_core::{CostModel, HostId, SplitMix64};
use sim_net::{FaultPlane, Network, RecvError, ServerTimeline};

proptest! {
    /// Per-sender FIFO: messages from one sender to one receiver arrive
    /// in send order regardless of payload sizes and timestamps.
    #[test]
    fn per_sender_fifo(
        sends in proptest::collection::vec((0usize..4096, 0u64..1_000_000), 1..200),
    ) {
        let (_net, eps) = Network::<u32>::new(2, CostModel::default());
        for (i, &(payload, vt)) in sends.iter().enumerate() {
            eps[0].send(HostId(1), i as u32, payload, vt);
        }
        for i in 0..sends.len() {
            let pkt = eps[1].recv().expect("delivered");
            prop_assert_eq!(pkt.msg, i as u32);
            prop_assert_eq!(pkt.payload_bytes, sends[i].0);
        }
    }

    /// Arrival stamps: wire latency is monotone in payload size and the
    /// arrival never precedes the send.
    #[test]
    fn arrival_monotone_in_payload(a in 0usize..65536, b in 0usize..65536, vt in 0u64..1_000_000) {
        let (net, eps) = Network::<()>::new(2, CostModel::default());
        let (small, large) = (a.min(b), a.max(b));
        let t_small = eps[0].send(HostId(1), (), small, vt);
        let t_large = eps[0].send(HostId(1), (), large, vt);
        prop_assert!(t_small >= vt);
        prop_assert!(t_large >= t_small);
        prop_assert_eq!(t_small, vt + net.cost().msg_time(small));
    }

    /// Self-delivery is cheaper than any wire message.
    #[test]
    fn self_send_is_local(payload in 0usize..8192, vt in 0u64..1_000_000) {
        let (net, eps) = Network::<()>::new(2, CostModel::default());
        let t_self = eps[0].send(HostId(0), (), payload, vt);
        prop_assert_eq!(t_self, vt + net.cost().self_msg);
        prop_assert!(t_self <= eps[1].send(HostId(1), (), payload, vt));
        // Drain so nothing is left hanging.
        let _ = eps[0].recv();
        let _ = eps[1].recv();
    }

    /// Timeline: service start never precedes arrival + the minimum poll
    /// delay, and idle-host service is deterministic.
    #[test]
    fn timeline_start_bounds(arrivals in proptest::collection::vec(0u64..50_000_000, 1..100)) {
        let cost = CostModel::default();
        let mut tl = ServerTimeline::new(cost.clone(), SplitMix64::new(1));
        for &a in &arrivals {
            let start = tl.begin_service(a, false);
            prop_assert!(start >= a + cost.service_delay.poller_delay);
            tl.charge(1_000);
        }
    }

    /// Reliable channel: under an arbitrary seeded drop/duplicate/reorder
    /// schedule, delivery to the receiver is exactly-once and FIFO — every
    /// message arrives once, in send order, with consecutive wire sequence
    /// numbers, and the cumulative-ack watermark ends at the send count.
    /// (The stub proptest has integer strategies only, hence the
    /// per-mille probabilities; drop stays ≤ 10% so no schedule can
    /// plausibly exhaust the 8-retransmit budget.)
    #[test]
    fn reliable_channel_exactly_once_fifo(
        seed in 0u64..1_000_000,
        drop_pm in 1u32..100,
        dup_pm in 0u32..200,
        reorder_pm in 0u32..300,
        n in 1usize..120,
    ) {
        let plane = FaultPlane::lossy(
            seed,
            drop_pm as f64 / 1000.0,
            dup_pm as f64 / 1000.0,
            reorder_pm as f64 / 1000.0,
        );
        let (net, eps) = Network::<u64>::with_faults(2, CostModel::default(), plane);
        for i in 0..n {
            eps[0].send(HostId(1), i as u64, 64, i as u64 * 1_000);
        }
        for i in 0..n {
            let pkt = eps[1].recv().expect("delivered");
            prop_assert_eq!(pkt.msg, i as u64, "out-of-order delivery");
            prop_assert_eq!(pkt.wire_seq, i as u64 + 1);
        }
        // No duplicate survived the dedup buffer…
        prop_assert!(matches!(eps[1].try_recv(), Err(RecvError::Empty)));
        // …and the receiver acknowledged every sequence number in order.
        prop_assert_eq!(net.link_acked(HostId(0), HostId(1)), n as u64);
        prop_assert_eq!(net.total_unacked(), 0);
    }

    /// Stats: message and byte counters equal what was sent.
    #[test]
    fn stats_match_traffic(payloads in proptest::collection::vec(0usize..4096, 0..64)) {
        let (net, eps) = Network::<()>::new(2, CostModel::default());
        let mut bytes = 0u64;
        for &p in &payloads {
            eps[0].send(HostId(1), (), p, 0);
            bytes += p as u64;
        }
        prop_assert_eq!(net.stats().messages.get(), payloads.len() as u64);
        prop_assert_eq!(net.stats().payload_bytes.get(), bytes);
    }
}

#[test]
fn timeline_contention_window_behaviour() {
    // Messages close in virtual time queue; far-future then far-past
    // messages do not drag each other.
    let cost = CostModel::fast_polling(); // Deterministic poll delay.
    let mut tl = ServerTimeline::new(cost, SplitMix64::new(2));
    let s1 = tl.begin_service(1_000, false);
    tl.charge(100_000); // Busy until ~103k.
    let s2 = tl.begin_service(2_000, false);
    assert!(s2 >= s1 + 100_000, "close-by message queues: {s2}");
    tl.charge(10_000);
    // A message an hour ahead jumps the clock...
    let s3 = tl.begin_service(3_600_000_000_000, false);
    assert!(s3 >= 3_600_000_000_000);
    // ...and one far in the past is served back at its own time.
    let s4 = tl.begin_service(5_000, false);
    assert!(
        s4 < 1_000_000,
        "past message must not queue behind the future: {s4}"
    );
}
