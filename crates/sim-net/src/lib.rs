//! Simulated FastMessages (§3.5 of the paper).
//!
//! Millipage uses the Illinois FastMessages (FM) package on Myrinet: a
//! reliable, FIFO-ordered, user-level messaging layer with no kernel
//! transitions and no buffer copying on the send side. This crate models
//! the properties the DSM depends on:
//!
//! * **reliable FIFO delivery** between each pair of hosts ([`Network`],
//!   [`Endpoint`]),
//! * the **latency model** fitted to the paper's measurements (25 µs
//!   round-trip for small messages, 180 µs for 4 KB — see
//!   [`sim_core::CostModel::msg_time`]),
//! * **virtual-time arrival stamps**: a message sent at virtual time `t`
//!   with `b` payload bytes arrives at `t + msg_time(b)`,
//! * the **polling service-delay model** ([`ServerTimeline`]): FM receives
//!   by polling, so a request that reaches a busy host waits for the
//!   sweeper thread's next (jittery) 1 ms timer tick — the effect §3.5.1
//!   blames for most of Millipage's 750 µs average fault service time.
//!
//! Data messages carry their payload as [`bytes::Bytes`]; the zero-copy
//! receive into the privileged view (§2.3.1) is performed by the DSM layer.
//!
//! Reliable FIFO delivery is a property FM *builds*, not one Myrinet
//! grants: an optional, seeded [`FaultPlane`] makes the raw wire drop,
//! duplicate, jitter and reorder packets, and the fabric then earns the
//! guarantee back with per-link sequence numbers, cumulative acks,
//! virtual-time retransmission with exponential backoff, and receive-side
//! dedup/resequencing buffers (see [`net`](self) module docs). The plane
//! is inert by default.

mod fault;
mod net;
mod timeline;

pub use fault::{
    FaultPlane, ScriptedFault, ScriptedKind, SendReceipt, DEFAULT_MAX_RETRANSMITS, DEFAULT_RTO_NS,
};
pub use net::{Endpoint, NetStats, Network, Packet, RecvError};
pub use timeline::ServerTimeline;
