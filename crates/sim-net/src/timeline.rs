//! The DSM server thread's virtual timeline.
//!
//! §3.5.1: each Millipage host runs a low-priority *poller* thread (busy
//! polling whenever the CPU is otherwise idle) and a *sweeper* thread woken
//! by a 1 ms multimedia timer whose jitter is extreme. When the host's
//! application threads are computing, only the sweeper sees the message —
//! on average more than 500 µs after arrival. [`ServerTimeline`] turns
//! packet arrival stamps into handler start times under that model, and
//! serializes the (single) server thread: a handler cannot start before the
//! previous one finished.

use sim_core::clock::Ns;
use sim_core::{CostModel, LogHistogram, SplitMix64};

/// How far apart in virtual time two messages can be and still contend
/// for the server thread. The simulation processes messages in real
/// arrival order, which can differ from virtual order when one host's
/// application races ahead in virtual time; a message stamped far in the
/// virtual future must not drag the service time of a logically earlier,
/// unrelated message (and a logically past message is served "back then"
/// rather than behind the future one).
const SERIALIZE_WINDOW: Ns = 5_000_000;

/// Virtual timeline of one host's DSM service threads.
#[derive(Debug)]
pub struct ServerTimeline {
    clock: Ns,
    rng: SplitMix64,
    cost: CostModel,
    /// Arrival→service-start delay of every packet this server handled:
    /// poll/sweeper delay plus genuine queueing behind earlier handlers.
    queue_delay: LogHistogram,
    /// Times the queue delay came out negative (service start before
    /// arrival) and was clamped to zero. Every branch of `begin_service`
    /// keeps `start >= arrival`, so a nonzero count is a virtual-clock
    /// inversion the `saturating_sub` would otherwise silently hide.
    clamped: u64,
}

impl ServerTimeline {
    /// Creates a timeline at virtual time zero.
    pub fn new(cost: CostModel, rng: SplitMix64) -> Self {
        Self {
            clock: 0,
            rng,
            cost,
            queue_delay: LogHistogram::new(),
            clamped: 0,
        }
    }

    /// The time the server becomes free after everything handled so far.
    pub fn now(&self) -> Ns {
        self.clock
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Computes when a handler starts for a packet that arrived at
    /// `arrival_vt`, given whether the host's application threads were busy
    /// computing at that moment, and advances the timeline to that point.
    ///
    /// `max(server free, arrival + poll delay)` within a serialization
    /// window: the poll delay models the poller/sweeper distinction, the
    /// `max` serializes the server thread (manager queueing delay emerges
    /// from it), and messages whose virtual arrival lies far outside the
    /// server's current busy period — virtual-time order inversions of the
    /// optimistic simulation — are served at their own time instead of
    /// dragging or being dragged.
    pub fn begin_service(&mut self, arrival_vt: Ns, app_busy: bool) -> Ns {
        let delay = self.cost.service_delay.sample(app_busy, &mut self.rng);
        let ideal = arrival_vt + delay;
        let start = if ideal >= self.clock {
            ideal // Server idle at that virtual time.
        } else if self.clock - ideal <= SERIALIZE_WINDOW {
            self.clock // Genuine contention: queue behind current work.
        } else {
            ideal // Inversion: logically served before the future work.
        };
        if start < arrival_vt {
            debug_assert!(
                false,
                "virtual-clock inversion: service starts {} ns before arrival",
                arrival_vt - start
            );
            self.clamped += 1;
        }
        self.queue_delay.record(start.saturating_sub(arrival_vt));
        self.clock = start;
        start
    }

    /// Number of negative-queue-delay clamps so far (see the field docs:
    /// any nonzero value marks a virtual-clock inversion).
    pub fn clamp_events(&self) -> u64 {
        self.clamped
    }

    /// The arrival→start delay histogram accumulated so far.
    pub fn queue_delay(&self) -> &LogHistogram {
        &self.queue_delay
    }

    /// Extracts the delay histogram (end of run).
    pub fn take_queue_delay(&mut self) -> LogHistogram {
        std::mem::replace(&mut self.queue_delay, LogHistogram::new())
    }

    /// Charges `dt` of handler work and returns the completion time.
    pub fn charge(&mut self, dt: Ns) -> Ns {
        self.clock += dt;
        self.clock
    }

    /// Merges an externally-imposed time (e.g. the server observed state
    /// that only exists from `t` onwards).
    pub fn merge(&mut self, t: Ns) -> Ns {
        if t > self.clock {
            self.clock = t;
        }
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> ServerTimeline {
        ServerTimeline::new(CostModel::default(), SplitMix64::new(7))
    }

    #[test]
    fn idle_host_service_starts_after_poller_delay() {
        let mut t = timeline();
        let start = t.begin_service(100_000, false);
        assert_eq!(start, 100_000 + t.cost().service_delay.poller_delay);
    }

    #[test]
    fn busy_host_service_is_sweeper_delayed() {
        let mut t = timeline();
        let start = t.begin_service(100_000, true);
        assert!(start > 100_000 + t.cost().service_delay.poller_delay);
    }

    #[test]
    fn server_thread_serializes_handlers() {
        let mut t = timeline();
        let s1 = t.begin_service(0, false);
        let done = t.charge(50_000);
        assert_eq!(done, s1 + 50_000);
        // Second packet arrived long ago; it still starts only when the
        // server is free.
        let s2 = t.begin_service(0, false);
        assert!(s2 >= done);
    }

    #[test]
    fn merge_moves_only_forward() {
        let mut t = timeline();
        t.charge(500);
        assert_eq!(t.merge(100), 500);
        assert_eq!(t.merge(900), 900);
    }

    #[test]
    fn queue_delay_histogram_tracks_arrival_to_start() {
        let mut t = timeline();
        let s1 = t.begin_service(100_000, false);
        t.charge(50_000);
        t.begin_service(100_000, false);
        assert_eq!(t.queue_delay().count(), 2);
        // First packet: pure poll delay; second also queued behind it.
        assert_eq!(t.queue_delay().min(), Some(s1 - 100_000));
        assert_eq!(t.queue_delay().max(), Some(s1 + 50_000 - 100_000));
        let h = t.take_queue_delay();
        assert_eq!(h.count(), 2);
        assert_eq!(t.queue_delay().count(), 0);
    }

    #[test]
    fn no_branch_of_begin_service_clamps_queue_delay() {
        // Exercise all three branches (idle, contended, inverted); the
        // clamp must never fire because every branch keeps start >=
        // arrival. A regression here would silently corrupt the
        // queue-delay histogram via saturating_sub.
        let mut t = timeline();
        t.begin_service(100_000, false); // idle
        t.charge(1_000_000);
        t.begin_service(100_000, true); // contended: queued behind work
        t.charge(50_000_000);
        t.begin_service(10_000, false); // inversion: served "back then"
        assert_eq!(t.clamp_events(), 0);
    }

    #[test]
    fn fast_polling_model_has_tiny_busy_delay() {
        let mut t = ServerTimeline::new(CostModel::fast_polling(), SplitMix64::new(1));
        let start = t.begin_service(10_000, true);
        assert_eq!(start, 12_000);
    }
}
