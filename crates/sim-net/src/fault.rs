//! Deterministic fault injection for the message fabric.
//!
//! The paper's Millipage inherits reliability from FastMessages, but FM
//! itself has to *build* reliable FIFO delivery on top of raw Myrinet —
//! sequence numbers, acks, retransmission timers. [`FaultPlane`] makes the
//! simulated wire unreliable (seeded per-link drop / duplicate / reorder /
//! jitter, plus scripted one-shot faults), so the reliable-channel layer in
//! [`crate::Network`] has real work to do and the DSM protocol above it can
//! be audited against loss.
//!
//! Everything is deterministic: each (sender, destination) link forks its
//! own [`SplitMix64`](sim_core::SplitMix64) stream from [`FaultPlane::seed`],
//! so a run with the same seed and the same send order replays the same
//! fault schedule regardless of wall-clock interleaving.

use sim_core::clock::Ns;
use sim_core::HostId;

/// Default virtual-time retransmission timeout: 100 µs, roughly four
/// small-message round trips (§3.5: 25 µs RTT), mirroring FM's aggressive
/// user-level timer.
pub const DEFAULT_RTO_NS: Ns = 100_000;

/// Default retransmit budget before a send is declared lost.
pub const DEFAULT_MAX_RETRANSMITS: u32 = 8;

/// Cap on the exponential-backoff shift so the penalty cannot overflow.
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 16;

/// Per-link fault probabilities and the reliable-channel parameters that
/// compensate for them.
///
/// A default-constructed plane is inert: [`FaultPlane::is_active`] returns
/// `false` and the fabric takes the exact pre-fault-plane code path (no RNG
/// draws, no locks, wire sequence numbers stay 0), keeping perf and trace
/// output byte-for-byte identical to a build without fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlane {
    /// Probability that any single transmission is lost on the wire.
    /// Each loss costs the sender one RTO (doubling per retry) before the
    /// retransmission goes out.
    pub drop: f64,
    /// Probability that a delivered packet is duplicated in flight; the
    /// receive-side dedup buffer must suppress the extra copy.
    pub dup: f64,
    /// Probability that a delivered packet is held back until the next
    /// send on its link, producing a genuine out-of-order arrival the
    /// receive-side resequencing buffer must repair.
    pub reorder: f64,
    /// Uniform extra delivery delay in `[0, jitter_ns)` virtual ns.
    pub jitter_ns: Ns,
    /// Initial virtual-time retransmission timeout; doubles per retry.
    pub rto_ns: Ns,
    /// Retransmissions attempted before the send surfaces as lost.
    pub max_retransmits: u32,
    /// Seed for the per-link fault streams.
    pub seed: u64,
    /// One-shot scripted faults, matched at send time in order.
    pub scripted: Vec<ScriptedFault>,
}

impl Default for FaultPlane {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultPlane {
    /// A plane that injects nothing and leaves the fabric untouched.
    pub fn disabled() -> Self {
        Self {
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            jitter_ns: 0,
            rto_ns: DEFAULT_RTO_NS,
            max_retransmits: DEFAULT_MAX_RETRANSMITS,
            seed: 0,
            scripted: Vec::new(),
        }
    }

    /// A probabilistic plane with the default RTO and retransmit budget.
    pub fn lossy(seed: u64, drop: f64, dup: f64, reorder: f64) -> Self {
        Self {
            drop,
            dup,
            reorder,
            seed,
            ..Self::disabled()
        }
    }

    /// Whether any fault can ever fire. Inactive planes keep the fabric on
    /// the exact unfaulted code path.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.jitter_ns > 0
            || !self.scripted.is_empty()
    }
}

/// What a scripted fault does to the packet it matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScriptedKind {
    /// Lose the first transmission; the retransmission proceeds normally
    /// (subject to the probabilistic plane).
    DropOnce,
    /// Lose every transmission: the send exhausts its retransmit budget
    /// and surfaces as a timeout at the protocol layer.
    Blackhole,
}

/// A one-shot fault targeting the `nth` matching packet on a link.
///
/// Packets are counted per scripted fault, in send order, over all sends
/// matching the `from`/`to` filters (a `None` filter matches any host).
/// "Drop the Nth invalidation reply" is expressed by counting sends on the
/// replier→manager link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Sending host filter, or `None` for any sender.
    pub from: Option<HostId>,
    /// Destination host filter, or `None` for any destination.
    pub to: Option<HostId>,
    /// 1-based index of the matching packet to hit.
    pub nth: u64,
    /// What to do to it.
    pub kind: ScriptedKind,
}

impl ScriptedFault {
    /// Loses the `nth` packet from `from` to `to` once.
    pub fn drop_nth(from: HostId, to: HostId, nth: u64) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            nth,
            kind: ScriptedKind::DropOnce,
        }
    }

    /// Permanently loses the `nth` packet from `from` to `to` (all
    /// retransmissions included).
    pub fn blackhole_nth(from: HostId, to: HostId, nth: u64) -> Self {
        Self {
            from: Some(from),
            to: Some(to),
            nth,
            kind: ScriptedKind::Blackhole,
        }
    }

    /// Whether a packet on the `from → to` link matches the filters.
    pub(crate) fn matches(&self, from: HostId, to: HostId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// What the fault plane did to one send. Returned by
/// [`crate::Network::send_receipt`] so the protocol layer can emit trace
/// events and surface exhausted retransmit budgets as typed errors.
#[derive(Clone, Copy, Debug)]
pub struct SendReceipt {
    /// Virtual arrival time of the (final, successful) transmission. When
    /// `delivered` is false this is when the sender gave up.
    pub arrival: Ns,
    /// Wire sequence number stamped on the packet (0 when the fault plane
    /// is inactive or for self-delivery, which bypasses the wire).
    pub wire_seq: u64,
    /// Transmissions lost on the wire before one got through.
    pub drops: u32,
    /// Virtual latency added by retransmission backoff and jitter.
    pub fault_delay: Ns,
    /// False when the retransmit budget was exhausted: the packet will
    /// never arrive and the request must surface a timeout.
    pub delivered: bool,
    /// A duplicate physical copy was also delivered.
    pub duplicated: bool,
    /// The packet was held back to force an out-of-order arrival.
    pub reordered: bool,
}

impl SendReceipt {
    /// The receipt of an unfaulted send.
    pub(crate) fn clean(arrival: Ns) -> Self {
        Self {
            arrival,
            wire_seq: 0,
            drops: 0,
            fault_delay: 0,
            delivered: true,
            duplicated: false,
            reordered: false,
        }
    }
}

/// Retransmission backoff accumulated over `drops` consecutive losses:
/// `Σ rto·2^i` with the shift capped.
pub(crate) fn backoff_penalty(rto_ns: Ns, drops: u32) -> Ns {
    let mut total: Ns = 0;
    for i in 0..drops {
        total = total.saturating_add(rto_ns << i.min(MAX_BACKOFF_SHIFT));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plane_detection() {
        assert!(!FaultPlane::disabled().is_active());
        assert!(FaultPlane::lossy(1, 0.01, 0.0, 0.0).is_active());
        assert!(FaultPlane {
            jitter_ns: 10,
            ..FaultPlane::disabled()
        }
        .is_active());
        let scripted = FaultPlane {
            scripted: vec![ScriptedFault::drop_nth(HostId(0), HostId(1), 3)],
            ..FaultPlane::disabled()
        };
        assert!(scripted.is_active());
    }

    #[test]
    fn backoff_doubles_then_saturates() {
        assert_eq!(backoff_penalty(100, 0), 0);
        assert_eq!(backoff_penalty(100, 1), 100);
        assert_eq!(backoff_penalty(100, 3), 100 + 200 + 400);
        // Deep retries cap the shift instead of overflowing.
        assert!(backoff_penalty(Ns::MAX / 2, 40) == Ns::MAX);
    }

    #[test]
    fn scripted_filters_match() {
        let f = ScriptedFault::drop_nth(HostId(2), HostId(0), 1);
        assert!(f.matches(HostId(2), HostId(0)));
        assert!(!f.matches(HostId(0), HostId(2)));
        let any = ScriptedFault {
            from: None,
            to: Some(HostId(1)),
            nth: 1,
            kind: ScriptedKind::Blackhole,
        };
        assert!(any.matches(HostId(5), HostId(1)));
        assert!(!any.matches(HostId(5), HostId(2)));
    }
}
