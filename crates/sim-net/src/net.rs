//! The message fabric: per-host endpoints over reliable FIFO channels.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use sim_core::clock::Ns;
use sim_core::trace::{TraceKind, TraceRecorder};
use sim_core::{CostModel, Counter, HostId};
use std::cell::RefCell;
use std::sync::Arc;

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Sending host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// The payload-bearing message.
    pub msg: M,
    /// Virtual time at which the sender issued the message.
    pub send_vt: Ns,
    /// Virtual time at which the message is available at the destination
    /// network adapter (`send_vt + msg_time(payload)`).
    pub arrival_vt: Ns,
    /// Payload bytes beyond the 32-byte header.
    pub payload_bytes: usize,
}

/// Receive-side failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// All senders are gone; no message can ever arrive.
    Disconnected,
    /// No message currently queued (only from `try_recv`).
    Empty,
}

/// Aggregate traffic statistics for one network.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Messages sent.
    pub messages: Counter,
    /// Total payload bytes sent (headers excluded).
    pub payload_bytes: Counter,
}

struct Fabric<M> {
    inboxes: Vec<Sender<Packet<M>>>,
    cost: CostModel,
    stats: NetStats,
}

/// A handle to the simulated interconnect.
///
/// Cloneable; all clones send into the same fabric. Delivery is reliable
/// and FIFO per sender (FM provides "a reliable and FIFO ordered messaging
/// service").
pub struct Network<M> {
    fabric: Arc<Fabric<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Self {
            fabric: Arc::clone(&self.fabric),
        }
    }
}

impl<M: Send> Network<M> {
    /// Creates a fabric connecting `hosts` hosts, returning one
    /// [`Endpoint`] per host (in host order).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero or exceeds [`HostId::MAX_HOSTS`].
    pub fn new(hosts: usize, cost: CostModel) -> (Network<M>, Vec<Endpoint<M>>) {
        assert!(
            (1..=HostId::MAX_HOSTS).contains(&hosts),
            "host count {hosts} out of range"
        );
        let mut inboxes = Vec::with_capacity(hosts);
        let mut receivers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let net = Network {
            fabric: Arc::new(Fabric {
                inboxes,
                cost,
                stats: NetStats::default(),
            }),
        };
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                host: HostId(i as u16),
                net: net.clone(),
                inbox: rx,
                tracer: RefCell::new(TraceRecorder::disabled()),
            })
            .collect();
        (net, endpoints)
    }

    /// Number of hosts on the fabric.
    pub fn hosts(&self) -> usize {
        self.fabric.inboxes.len()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.fabric.stats
    }

    /// The cost model the fabric stamps arrivals with.
    pub fn cost(&self) -> &CostModel {
        &self.fabric.cost
    }

    /// Sends `msg` from `from` to `to` at virtual time `now`, with
    /// `payload_bytes` of data beyond the 32-byte header. Returns the
    /// arrival virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a host on this fabric.
    pub fn send(&self, from: HostId, to: HostId, msg: M, payload_bytes: usize, now: Ns) -> Ns {
        // Self-delivery (the manager forwarding to its own server) is a
        // local handler call, not a wire round trip.
        let arrival = if from == to {
            now + self.fabric.cost.self_msg
        } else {
            now + self.fabric.cost.msg_time(payload_bytes)
        };
        let pkt = Packet {
            from,
            to,
            msg,
            send_vt: now,
            arrival_vt: arrival,
            payload_bytes,
        };
        self.fabric.stats.messages.bump();
        self.fabric.stats.payload_bytes.add(payload_bytes as u64);
        self.fabric.inboxes[to.index()]
            .send(pkt)
            .expect("endpoint receivers live as long as the network");
        arrival
    }
}

/// One host's attachment to the fabric: its inbox plus a send handle.
pub struct Endpoint<M> {
    host: HostId,
    net: Network<M>,
    inbox: Receiver<Packet<M>>,
    /// Protocol tracer for sends issued through this endpoint (the host's
    /// server thread). Inert unless [`attach_tracer`](Self::attach_tracer)
    /// installed an enabled recorder; an endpoint is single-thread-owned,
    /// so the `RefCell` never contends.
    tracer: RefCell<TraceRecorder>,
}

impl<M: Send> Endpoint<M> {
    /// This endpoint's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The underlying network handle.
    pub fn network(&self) -> &Network<M> {
        &self.net
    }

    /// Installs a recorder that logs a `MsgSend` event for every send
    /// issued through this endpoint.
    pub fn attach_tracer(&self, rec: TraceRecorder) {
        *self.tracer.borrow_mut() = rec;
    }

    /// Sends to `to` at virtual time `now`; returns the arrival time.
    pub fn send(&self, to: HostId, msg: M, payload_bytes: usize, now: Ns) -> Ns {
        let mut t = self.tracer.borrow_mut();
        if t.enabled() {
            t.emit(now, TraceKind::MsgSend, |e| {
                e.with_peer(to).with_bytes(payload_bytes)
            });
        }
        drop(t);
        self.net.send(self.host, to, msg, payload_bytes, now)
    }

    /// Blocking receive (models the FM handler loop; the *virtual* waiting
    /// time is derived from packet timestamps, not from real time).
    pub fn recv(&self) -> Result<Packet<M>, RecvError> {
        self.inbox.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Packet<M>, RecvError> {
        self.inbox.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Empty,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_stamp_uses_latency_model() {
        let (net, eps) = Network::<&'static str>::new(2, CostModel::default());
        let arrival = eps[0].send(HostId(1), "hdr", 0, 1_000);
        assert_eq!(arrival, 1_000 + net.cost().msg_time(0));
        let pkt = eps[1].recv().unwrap();
        assert_eq!(pkt.msg, "hdr");
        assert_eq!(pkt.send_vt, 1_000);
        assert_eq!(pkt.arrival_vt, arrival);
        assert_eq!(pkt.from, HostId(0));
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        let (_net, mut eps) = Network::<u32>::new(2, CostModel::default());
        let rx = eps.remove(1);
        let tx = eps.remove(0);
        for i in 0..100 {
            tx.send(HostId(1), i, 0, i as Ns);
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap().msg, i);
        }
    }

    #[test]
    fn cross_thread_delivery_works() {
        let (_net, mut eps) = Network::<u64>::new(3, CostModel::default());
        let e2 = eps.remove(2);
        let e1 = eps.remove(1);
        let e0 = eps.remove(0);
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                e0.send(HostId(2), i, 64, i);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 50..100 {
                e1.send(HostId(2), i, 64, i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(e2.recv().unwrap().msg);
        }
        t1.join().unwrap();
        t2.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (net, eps) = Network::<()>::new(2, CostModel::default());
        eps[0].send(HostId(1), (), 128, 0);
        eps[0].send(HostId(1), (), 0, 0);
        assert_eq!(net.stats().messages.get(), 2);
        assert_eq!(net.stats().payload_bytes.get(), 128);
    }

    #[test]
    fn try_recv_reports_empty() {
        let (_net, eps) = Network::<()>::new(1, CostModel::default());
        assert_eq!(eps[0].try_recv().unwrap_err(), RecvError::Empty);
    }

    #[test]
    fn self_send_is_allowed() {
        // The manager host's own application threads fault too; their
        // requests go through the same path.
        let (_net, eps) = Network::<u8>::new(1, CostModel::default());
        eps[0].send(HostId(0), 7, 0, 0);
        assert_eq!(eps[0].recv().unwrap().msg, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_hosts_panics() {
        let _ = Network::<()>::new(0, CostModel::default());
    }
}
