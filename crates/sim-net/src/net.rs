//! The message fabric: per-host endpoints over reliable FIFO channels.
//!
//! With the [`FaultPlane`] inactive (the default) the fabric is the
//! reliable, FIFO-ordered wire FM promises and nothing here costs anything
//! beyond the channel send. With an active plane the raw wire drops,
//! duplicates, jitters and reorders packets, and this module layers the
//! reliable channel FM actually implements over Myrinet on top of it:
//!
//! * per-(sender, destination) **wire sequence numbers**, stamped at send,
//! * **virtual-time retransmission** with exponential backoff — a dropped
//!   transmission costs the sender `rto·2^retry` virtual ns and the packet
//!   that finally arrives carries the accumulated penalty in its
//!   `arrival_vt` (the real channel delivers it once; the losses are
//!   accounted, not re-executed),
//! * **receive-side dedup and resequencing**: duplicates are suppressed,
//!   out-of-order arrivals are parked until the gap fills, and delivery to
//!   the caller is exactly-once in FIFO order per sender,
//! * a **cumulative-ack watermark** per link, advanced on in-order
//!   delivery, so a run can prove every assigned sequence number was
//!   delivered and acknowledged.

use crate::fault::{backoff_penalty, FaultPlane, ScriptedKind, SendReceipt};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use sim_core::clock::Ns;
use sim_core::sched::{DeliveryGate, Scheduler};
use sim_core::trace::{TraceKind, TraceRecorder};
use sim_core::{CostModel, Counter, HostId, LogHistogram, SplitMix64};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// How long a fault-mode blocking receive parks before re-checking the
/// per-link holdback slots for packets stashed by a sender that has since
/// gone quiet. Pure wall-clock plumbing; carries no virtual time.
const RESCUE_POLL: Duration = Duration::from_millis(5);

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Sending host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// The payload-bearing message.
    pub msg: M,
    /// Virtual time at which the sender issued the message.
    pub send_vt: Ns,
    /// Virtual time at which the message is available at the destination
    /// network adapter (`send_vt + msg_time(payload)`, plus any
    /// retransmission and jitter penalty under an active fault plane).
    pub arrival_vt: Ns,
    /// Payload bytes beyond the 32-byte header.
    pub payload_bytes: usize,
    /// Per-(sender, destination) wire sequence number, stamped by the
    /// reliable channel. 0 when the fault plane is inactive or for
    /// self-delivery (which bypasses the wire).
    pub wire_seq: u64,
    /// Virtual time at which the delivery gate released this packet to the
    /// destination (the link-FIFO cumulative maximum of arrival stamps).
    /// 0 when the gate is inactive — i.e. in free-threaded mode, under the
    /// exploration policies, and for self-delivery. Servers must not begin
    /// service before `max(arrival_vt, release_vt)`.
    pub release_vt: Ns,
}

/// Receive-side failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// All senders are gone; no message can ever arrive.
    Disconnected,
    /// No message currently queued (only from `try_recv`).
    Empty,
}

/// Aggregate traffic statistics for one network.
///
/// The fault-plane counters stay zero when the plane is inactive.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Messages sent.
    pub messages: Counter,
    /// Total payload bytes sent (headers excluded).
    pub payload_bytes: Counter,
    /// Transmissions lost on the wire (each one cost the sender an RTO).
    pub pkts_dropped: Counter,
    /// Retransmissions driven by the virtual RTO timers.
    pub retransmits: Counter,
    /// Duplicate physical deliveries injected by the plane.
    pub dups_delivered: Counter,
    /// Duplicates discarded by the receive-side dedup buffer.
    pub dups_suppressed: Counter,
    /// Packets held back at send to force an out-of-order arrival.
    pub reorders: Counter,
    /// Out-of-order arrivals parked in a resequencing buffer.
    pub reorder_buffered: Counter,
    /// Sends that exhausted their retransmit budget (packet never arrives;
    /// the protocol layer must surface a timeout).
    pub expired: Counter,
    /// Sends to an endpoint whose receiver was already torn down; the
    /// message is counted and discarded instead of panicking the sender.
    pub send_failures: Counter,
    /// Negative queue-delay clamps observed by server timelines — each one
    /// is a virtual-clock inversion `saturating_sub` would silently hide.
    pub clamped_delays: Counter,
}

/// Per-link mutable fault state: the seeded fault stream, the next wire
/// sequence number, and the one-deep reorder holdback slot.
struct LinkFault<M> {
    rng: SplitMix64,
    next_seq: u64,
    held: Option<Packet<M>>,
}

/// Fault machinery shared by all handles; present only for active planes.
struct FaultState<M> {
    plane: FaultPlane,
    /// `hosts × hosts` links, indexed `from * hosts + to`.
    links: Vec<Mutex<LinkFault<M>>>,
    /// Cumulative-ack watermark per link: the highest wire sequence
    /// number delivered in order to the receiver.
    acked: Vec<AtomicU64>,
    /// Per scripted-fault count of matching packets seen so far.
    script_hits: Mutex<Vec<u64>>,
    /// Virtual latency the plane added to faulted sends.
    delay: Mutex<LogHistogram>,
}

/// Per-link delivery-gate state: the cumulative maximum of release stamps
/// handed out on this link (enforcing FIFO release order per link even
/// when fault backoff inverts raw arrival stamps) and a per-link tie-break
/// sequence for packets released at the same virtual time.
struct GateLink {
    cummax: Ns,
    next_seq: u64,
}

/// Release order of parked packets at one destination: release stamp,
/// then sender, then per-link sequence number.
type GateQueue<M> = BTreeMap<(Ns, HostId, u64), Packet<M>>;

/// The conservative delivery gate, present only when the attached
/// scheduler runs the canonical virtual-time policy.
///
/// Cross-host packets are parked here instead of going straight into the
/// destination inbox; the scheduler's dispatch loop releases them in
/// `(release_vt, from, seq)` order, interleaved with thread dispatches
/// through the virtual-time total order. This is what makes partitioned
/// execution byte-identical to the sequential schedule: delivery becomes
/// an explicitly ordered event instead of a racy channel send.
struct GateState<M> {
    /// `hosts × hosts` link stamps, indexed `from * hosts + to`.
    links: Vec<Mutex<GateLink>>,
    /// Per-destination pending queue ordered by `(release_vt, from, seq)`.
    queues: Vec<Mutex<GateQueue<M>>>,
    /// Per-destination mirror of the minimum pending release stamp
    /// (`Ns::MAX` when empty), readable without taking the queue lock.
    mins: Vec<AtomicU64>,
}

struct Fabric<M> {
    inboxes: Vec<Sender<Packet<M>>>,
    cost: CostModel,
    stats: NetStats,
    /// Always-on per-link traffic counters: `hosts × hosts × 2` cells of
    /// (messages, payload bytes), indexed `(from · hosts + to) · 2`. Two
    /// relaxed bumps per send; feeds the diagnose command's wire summary.
    link_traffic: Vec<AtomicU64>,
    faults: Option<FaultState<M>>,
    /// Deterministic scheduler to notify on every delivery (a delivery may
    /// unblock the destination's receive loop). Unset or disabled in the
    /// default free-threaded mode.
    sched: OnceLock<Scheduler>,
    /// Conservative delivery gate; installed by `attach_scheduler` when the
    /// scheduler gates deliveries (canonical virtual-time policy).
    gate: OnceLock<GateState<M>>,
}

/// A handle to the simulated interconnect.
///
/// Cloneable; all clones send into the same fabric. Delivery to the
/// protocol layer is reliable and FIFO per sender (FM provides "a reliable
/// and FIFO ordered messaging service") — natively so when the
/// [`FaultPlane`] is inactive, and via the reliable-channel layer (see the
/// module docs) when it is not.
pub struct Network<M> {
    fabric: Arc<Fabric<M>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Self {
            fabric: Arc::clone(&self.fabric),
        }
    }
}

impl<M: Send + Clone> Network<M> {
    /// Creates a fabric connecting `hosts` hosts with a reliable wire,
    /// returning one [`Endpoint`] per host (in host order).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero or exceeds [`HostId::MAX_HOSTS`].
    pub fn new(hosts: usize, cost: CostModel) -> (Network<M>, Vec<Endpoint<M>>) {
        Self::with_faults(hosts, cost, FaultPlane::disabled())
    }

    /// Creates a fabric whose wire misbehaves according to `plane`.
    ///
    /// An inactive plane (the default) is completely inert: no locks, no
    /// RNG draws, wire sequence numbers stay 0, and behaviour is
    /// byte-for-byte identical to [`Network::new`].
    pub fn with_faults(
        hosts: usize,
        cost: CostModel,
        plane: FaultPlane,
    ) -> (Network<M>, Vec<Endpoint<M>>) {
        assert!(
            (1..=HostId::MAX_HOSTS).contains(&hosts),
            "host count {hosts} out of range"
        );
        let mut inboxes = Vec::with_capacity(hosts);
        let mut receivers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let faults = plane.is_active().then(|| {
            let mut seed_rng = SplitMix64::new(plane.seed);
            let links = (0..hosts * hosts)
                .map(|i| {
                    Mutex::new(LinkFault {
                        rng: seed_rng.fork(i as u64),
                        next_seq: 1,
                        held: None,
                    })
                })
                .collect();
            FaultState {
                script_hits: Mutex::new(vec![0; plane.scripted.len()]),
                plane,
                links,
                acked: (0..hosts * hosts).map(|_| AtomicU64::new(0)).collect(),
                delay: Mutex::new(LogHistogram::new()),
            }
        });
        let net = Network {
            fabric: Arc::new(Fabric {
                inboxes,
                cost,
                stats: NetStats::default(),
                link_traffic: (0..hosts * hosts * 2).map(|_| AtomicU64::new(0)).collect(),
                faults,
                sched: OnceLock::new(),
                gate: OnceLock::new(),
            }),
        };
        let endpoints = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                host: HostId(i as u16),
                rel: net
                    .fault_active()
                    .then(|| RefCell::new(RelState::new(hosts))),
                net: net.clone(),
                inbox: rx,
                tracer: RefCell::new(TraceRecorder::disabled()),
            })
            .collect();
        (net, endpoints)
    }

    /// Number of hosts on the fabric.
    pub fn hosts(&self) -> usize {
        self.fabric.inboxes.len()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.fabric.stats
    }

    /// The cost model the fabric stamps arrivals with.
    pub fn cost(&self) -> &CostModel {
        &self.fabric.cost
    }

    /// Whether an active fault plane is installed.
    pub fn fault_active(&self) -> bool {
        self.fabric.faults.is_some()
    }

    /// The virtual latency the fault plane added to faulted sends
    /// (empty histogram when the plane is inactive).
    pub fn fault_delay(&self) -> LogHistogram {
        match &self.fabric.faults {
            Some(f) => f.delay.lock().expect("fault delay lock").clone(),
            None => LogHistogram::new(),
        }
    }

    /// Wire sequence numbers assigned on the `from → to` link so far.
    pub fn link_sent(&self, from: HostId, to: HostId) -> u64 {
        match &self.fabric.faults {
            Some(f) => {
                let link = f.links[self.link_index(from, to)]
                    .lock()
                    .expect("link lock");
                link.next_seq - 1
            }
            None => 0,
        }
    }

    /// Cumulative-ack watermark of the `from → to` link: the highest wire
    /// sequence number the receiver has taken delivery of in order.
    pub fn link_acked(&self, from: HostId, to: HostId) -> u64 {
        match &self.fabric.faults {
            Some(f) => f.acked[self.link_index(from, to)].load(Ordering::Acquire),
            None => 0,
        }
    }

    /// Total wire sequence numbers assigned but not (yet) acknowledged,
    /// summed over every link. After a quiesced run this counts packets
    /// that were permanently lost (blackholes) or parked behind a loss.
    pub fn total_unacked(&self) -> u64 {
        let Some(f) = &self.fabric.faults else {
            return 0;
        };
        let hosts = self.hosts();
        let mut total = 0;
        for from in 0..hosts {
            for to in 0..hosts {
                let li = from * hosts + to;
                let sent = f.links[li].lock().expect("link lock").next_seq - 1;
                total += sent - f.acked[li].load(Ordering::Acquire);
            }
        }
        total
    }

    fn link_index(&self, from: HostId, to: HostId) -> usize {
        from.index() * self.hosts() + to.index()
    }

    /// Per-link traffic `(from, to, messages, payload_bytes)` recorded on
    /// every send, links with no traffic omitted.
    pub fn link_traffic(&self) -> Vec<(u16, u16, u64, u64)> {
        let hosts = self.hosts();
        let mut out = Vec::new();
        for from in 0..hosts {
            for to in 0..hosts {
                let i = (from * hosts + to) * 2;
                let msgs = self.fabric.link_traffic[i].load(Ordering::Relaxed);
                if msgs > 0 {
                    let bytes = self.fabric.link_traffic[i + 1].load(Ordering::Relaxed);
                    out.push((from as u16, to as u16, msgs, bytes));
                }
            }
        }
        out
    }

    /// Sends `msg` from `from` to `to` at virtual time `now`, with
    /// `payload_bytes` of data beyond the 32-byte header. Returns the
    /// arrival virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a host on this fabric.
    pub fn send(&self, from: HostId, to: HostId, msg: M, payload_bytes: usize, now: Ns) -> Ns {
        self.send_receipt(from, to, msg, payload_bytes, now).arrival
    }

    /// Like [`send`](Self::send), but reports what the fault plane did to
    /// the packet so the protocol layer can trace retransmissions and
    /// surface exhausted budgets as typed timeouts.
    pub fn send_receipt(
        &self,
        from: HostId,
        to: HostId,
        msg: M,
        payload_bytes: usize,
        now: Ns,
    ) -> SendReceipt {
        // Self-delivery (the manager forwarding to its own server) is a
        // local handler call, not a wire round trip; the fault plane does
        // not apply.
        let arrival = if from == to {
            now + self.fabric.cost.self_msg
        } else {
            now + self.fabric.cost.msg_time(payload_bytes)
        };
        self.fabric.stats.messages.bump();
        self.fabric.stats.payload_bytes.add(payload_bytes as u64);
        let li = self.link_index(from, to) * 2;
        self.fabric.link_traffic[li].fetch_add(1, Ordering::Relaxed);
        self.fabric.link_traffic[li + 1].fetch_add(payload_bytes as u64, Ordering::Relaxed);
        let pkt = Packet {
            from,
            to,
            msg,
            send_vt: now,
            arrival_vt: arrival,
            payload_bytes,
            wire_seq: 0,
            release_vt: 0,
        };
        match &self.fabric.faults {
            Some(faults) if from != to => self.send_through_faults(faults, pkt, arrival),
            _ => {
                self.deliver(pkt);
                SendReceipt::clean(arrival)
            }
        }
    }

    /// Runs one packet through the active fault plane. Assigns the wire
    /// sequence number, samples losses/duplication/reordering from the
    /// link's seeded stream, accounts the retransmission backoff into the
    /// arrival stamp, and performs the (at most two) physical deliveries.
    fn send_through_faults(
        &self,
        faults: &FaultState<M>,
        mut pkt: Packet<M>,
        base_arrival: Ns,
    ) -> SendReceipt {
        let plane = &faults.plane;
        let stats = &self.fabric.stats;
        let li = self.link_index(pkt.from, pkt.to);
        let mut link = faults.links[li].lock().expect("link lock");
        let seq = link.next_seq;
        link.next_seq += 1;
        pkt.wire_seq = seq;

        // Scripted one-shot faults fire before the probabilistic plane.
        let mut forced_drop = false;
        let mut blackhole = false;
        if !plane.scripted.is_empty() {
            let mut hits = faults.script_hits.lock().expect("script lock");
            for (fault, hit) in plane.scripted.iter().zip(hits.iter_mut()) {
                if fault.matches(pkt.from, pkt.to) {
                    *hit += 1;
                    if *hit == fault.nth {
                        match fault.kind {
                            ScriptedKind::DropOnce => forced_drop = true,
                            ScriptedKind::Blackhole => blackhole = true,
                        }
                    }
                }
            }
        }

        // Sample consecutive wire losses; each costs one (doubling) RTO.
        let budget = plane.max_retransmits;
        let mut drops = 0u32;
        if blackhole {
            drops = budget + 1;
        } else {
            while drops <= budget {
                let lost = if drops == 0 && forced_drop {
                    true
                } else {
                    link.rng.next_f64() < plane.drop
                };
                if !lost {
                    break;
                }
                drops += 1;
            }
        }
        let delivered = drops <= budget;
        stats.pkts_dropped.add(drops as u64);
        stats.retransmits.add(drops.min(budget) as u64);
        let mut fault_delay = backoff_penalty(plane.rto_ns, drops);
        if delivered && plane.jitter_ns > 0 {
            fault_delay += link.rng.next_range(plane.jitter_ns);
        }
        pkt.arrival_vt = base_arrival.saturating_add(fault_delay);
        let arrival = pkt.arrival_vt;

        let mut duplicated = false;
        let mut reordered = false;
        // Anything previously held back must go out behind this packet
        // (that inversion is the point of the holdback slot).
        let prev_held = link.held.take();
        if delivered {
            duplicated = link.rng.next_f64() < plane.dup;
            reordered = link.rng.next_f64() < plane.reorder && prev_held.is_none();
            if duplicated {
                stats.dups_delivered.bump();
                self.deliver(pkt.clone());
            }
            if reordered {
                stats.reorders.bump();
                link.held = Some(pkt);
            } else {
                self.deliver(pkt);
            }
        } else {
            stats.expired.bump();
        }
        if let Some(h) = prev_held {
            self.deliver(h);
        }
        drop(link);
        if fault_delay > 0 {
            faults
                .delay
                .lock()
                .expect("fault delay lock")
                .record(fault_delay as u64);
        }
        SendReceipt {
            arrival,
            wire_seq: seq,
            drops,
            fault_delay,
            delivered,
            duplicated,
            reordered,
        }
    }

    /// Physically enqueues a packet, tolerating a torn-down receiver: a
    /// host that exited early absorbs late protocol traffic into the
    /// `send_failures` counter instead of panicking the sender.
    ///
    /// Under a gating scheduler (canonical virtual-time policy) cross-host
    /// packets are parked in the delivery gate instead, to be released by
    /// the scheduler in `(release_vt, from, seq)` order; self-deliveries
    /// (local handler calls, not wire traffic) and shutdown-era external
    /// deliveries (issued under `Scheduler::quiesce_then`, when no
    /// simulated thread runs) still go straight into the inbox.
    fn deliver(&self, pkt: Packet<M>) {
        match self.fabric.sched.get() {
            Some(sched) if sched.gating() => {
                if pkt.from != pkt.to && !sched.external_active() {
                    self.gate_enqueue(pkt);
                } else {
                    let to = pkt.to;
                    self.deliver_raw(pkt);
                    sched.bump_action_host(to);
                }
            }
            Some(sched) => {
                self.deliver_raw(pkt);
                // Every successful delivery may unblock the destination's
                // receive loop: tell the deterministic scheduler so the
                // receiver becomes a candidate again.
                sched.bump_action();
            }
            None => self.deliver_raw(pkt),
        }
    }

    /// The raw physical enqueue: inbox send plus failure accounting, no
    /// scheduler interaction. Gate release paths call this directly — the
    /// scheduler's dispatch loop accounts the delivery itself, and
    /// re-entering the scheduler from under its own locks would deadlock.
    fn deliver_raw(&self, pkt: Packet<M>) {
        if self.fabric.inboxes[pkt.to.index()].send(pkt).is_err() {
            self.fabric.stats.send_failures.bump();
        }
    }

    /// Parks a cross-host packet in the delivery gate. The release stamp is
    /// the cumulative maximum of arrival stamps on its link, so releases on
    /// one link are FIFO even when fault backoff inverts raw arrivals.
    fn gate_enqueue(&self, mut pkt: Packet<M>) {
        let gate = self.fabric.gate.get().expect("delivery gate installed");
        let li = self.link_index(pkt.from, pkt.to);
        let (release, seq) = {
            let mut link = gate.links[li].lock().expect("gate link lock");
            let release = pkt.arrival_vt.max(link.cummax);
            link.cummax = release;
            let seq = link.next_seq;
            link.next_seq += 1;
            (release, seq)
        };
        pkt.release_vt = release;
        let di = pkt.to.index();
        let mut q = gate.queues[di].lock().expect("gate queue lock");
        q.insert((release, pkt.from, seq), pkt);
        let min = q.keys().next().map_or(Ns::MAX, |k| k.0);
        gate.mins[di].store(min, Ordering::Release);
    }

    /// Attaches the deterministic scheduler so deliveries count as
    /// potentially-unblocking actions. No-op for a disabled scheduler;
    /// later attachments are ignored.
    pub fn attach_scheduler(&self, sched: &Scheduler)
    where
        M: 'static,
    {
        if sched.is_enabled() {
            if self.fabric.sched.set(sched.clone()).is_err() {
                return;
            }
            if sched.gating() {
                let hosts = self.hosts();
                let _ = self.fabric.gate.set(GateState {
                    links: (0..hosts * hosts)
                        .map(|_| {
                            Mutex::new(GateLink {
                                cummax: 0,
                                next_seq: 0,
                            })
                        })
                        .collect(),
                    queues: (0..hosts).map(|_| Mutex::new(BTreeMap::new())).collect(),
                    mins: (0..hosts).map(|_| AtomicU64::new(Ns::MAX)).collect(),
                });
                sched.set_gate(Arc::new(GateHandle {
                    fabric: Arc::downgrade(&self.fabric),
                }));
            }
        }
    }

    /// Whether the delivery gate is active (gating scheduler attached).
    fn gated(&self) -> bool {
        self.fabric.gate.get().is_some()
    }

    /// Flushes any reorder-holdback packets destined to `to` into its
    /// inbox. Called by the receiver before parking, so a stashed packet
    /// whose sender went quiet cannot deadlock the destination. Returns
    /// whether anything was flushed.
    ///
    /// Inert under a gating scheduler: receiver-driven flushes would race
    /// the canonical schedule. There the scheduler itself flushes held
    /// packets, at the deterministic global-idle point (see
    /// [`DeliveryGate::flush_held`]).
    fn flush_held_to(&self, to: HostId) -> bool {
        let Some(faults) = &self.fabric.faults else {
            return false;
        };
        if self.gated() {
            return false;
        }
        let hosts = self.hosts();
        let mut flushed = false;
        for from in 0..hosts {
            let li = from * hosts + to.index();
            let held = faults.links[li].lock().expect("link lock").held.take();
            if let Some(pkt) = held {
                self.deliver(pkt);
                flushed = true;
            }
        }
        flushed
    }

    /// Records an acknowledged in-order delivery on the `from → to` link.
    fn ack(&self, from: HostId, to: HostId, seq: u64) {
        if let Some(faults) = &self.fabric.faults {
            faults.acked[self.link_index(from, to)].fetch_max(seq, Ordering::AcqRel);
        }
    }
}

/// The scheduler-facing view of the delivery gate.
///
/// Holds the fabric weakly: the scheduler outlives the run's network in
/// some teardown orders, and a strong reference here would cycle
/// (fabric → scheduler → gate → fabric) and leak every run. A dead fabric
/// degrades to "nothing pending".
struct GateHandle<M> {
    fabric: Weak<Fabric<M>>,
}

impl<M: Send + Clone + 'static> DeliveryGate for GateHandle<M> {
    fn min_pending(&self, host: HostId) -> Ns {
        let Some(fabric) = self.fabric.upgrade() else {
            return Ns::MAX;
        };
        let gate = fabric.gate.get().expect("delivery gate installed");
        gate.mins[host.index()].load(Ordering::Acquire)
    }

    fn release_next(&self, host: HostId) {
        let Some(fabric) = self.fabric.upgrade() else {
            return;
        };
        let net = Network { fabric };
        let gate = net.fabric.gate.get().expect("delivery gate installed");
        let pkt = {
            let mut q = gate.queues[host.index()].lock().expect("gate queue lock");
            let key = *q.keys().next().expect("release_next on empty gate queue");
            let pkt = q.remove(&key).expect("gate queue entry");
            let min = q.keys().next().map_or(Ns::MAX, |k| k.0);
            gate.mins[host.index()].store(min, Ordering::Release);
            pkt
        };
        net.deliver_raw(pkt);
    }

    fn flush_held(&self) -> Vec<HostId> {
        let Some(fabric) = self.fabric.upgrade() else {
            return Vec::new();
        };
        let net = Network { fabric };
        let Some(faults) = &net.fabric.faults else {
            return Vec::new();
        };
        // Fixed link order keeps the flush deterministic; the caller is at
        // the global-idle decision point, so no sender is concurrently
        // stashing.
        let mut dests = Vec::new();
        for link in &faults.links {
            let held = link.lock().expect("link lock").held.take();
            if let Some(pkt) = held {
                dests.push(pkt.to);
                net.deliver_raw(pkt);
            }
        }
        dests
    }
}

/// Receive-side reliable-channel state: per-sender expected sequence
/// numbers, resequencing buffers, and the in-order ready queue.
struct RelState<M> {
    ready: VecDeque<Packet<M>>,
    peers: Vec<PeerSeq<M>>,
}

struct PeerSeq<M> {
    next: u64,
    parked: BTreeMap<u64, Packet<M>>,
}

impl<M> RelState<M> {
    fn new(hosts: usize) -> Self {
        Self {
            ready: VecDeque::new(),
            peers: (0..hosts)
                .map(|_| PeerSeq {
                    next: 1,
                    parked: BTreeMap::new(),
                })
                .collect(),
        }
    }
}

/// One host's attachment to the fabric: its inbox plus a send handle.
pub struct Endpoint<M> {
    host: HostId,
    net: Network<M>,
    inbox: Receiver<Packet<M>>,
    /// Reliable-channel receive state; present only under an active fault
    /// plane. Like the tracer, an endpoint is single-thread-owned, so the
    /// `RefCell` never contends.
    rel: Option<RefCell<RelState<M>>>,
    /// Protocol tracer for sends issued through this endpoint (the host's
    /// server thread). Inert unless [`attach_tracer`](Self::attach_tracer)
    /// installed an enabled recorder; an endpoint is single-thread-owned,
    /// so the `RefCell` never contends.
    tracer: RefCell<TraceRecorder>,
}

impl<M: Send + Clone> Endpoint<M> {
    /// This endpoint's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The underlying network handle.
    pub fn network(&self) -> &Network<M> {
        &self.net
    }

    /// Installs a recorder that logs a `MsgSend` event for every send
    /// issued through this endpoint.
    pub fn attach_tracer(&self, rec: TraceRecorder) {
        *self.tracer.borrow_mut() = rec;
    }

    /// Sends to `to` at virtual time `now`; returns the arrival time.
    pub fn send(&self, to: HostId, msg: M, payload_bytes: usize, now: Ns) -> Ns {
        self.send_receipt(to, msg, payload_bytes, now).arrival
    }

    /// Sends to `to`, tracing what the fault plane did (`PktDropped` /
    /// `Retransmit` per lost transmission) and returning the receipt so
    /// the caller can surface an exhausted retransmit budget.
    pub fn send_receipt(&self, to: HostId, msg: M, payload_bytes: usize, now: Ns) -> SendReceipt {
        let mut t = self.tracer.borrow_mut();
        if t.enabled() {
            t.emit(now, TraceKind::MsgSend, |e| {
                e.with_peer(to).with_bytes(payload_bytes)
            });
        }
        drop(t);
        let receipt = self
            .net
            .send_receipt(self.host, to, msg, payload_bytes, now);
        if receipt.drops > 0 {
            let mut t = self.tracer.borrow_mut();
            if t.enabled() {
                for retry in 1..=receipt.drops {
                    t.emit(now, TraceKind::PktDropped, |e| {
                        e.with_peer(to).with_aux(retry)
                    });
                    if retry
                        <= self
                            .net
                            .fabric
                            .faults
                            .as_ref()
                            .map_or(0, |f| f.plane.max_retransmits)
                    {
                        t.emit(now, TraceKind::Retransmit, |e| {
                            e.with_peer(to).with_aux(retry)
                        });
                    }
                }
            }
        }
        receipt
    }

    /// Blocking receive (models the FM handler loop; the *virtual* waiting
    /// time is derived from packet timestamps, not from real time).
    ///
    /// Under an active fault plane this is the reliable-channel receive:
    /// duplicates are suppressed, out-of-order packets are parked until
    /// their gap fills, and delivery is exactly-once FIFO per sender.
    pub fn recv(&self) -> Result<Packet<M>, RecvError> {
        let Some(rel) = &self.rel else {
            return self.inbox.recv().map_err(|_| RecvError::Disconnected);
        };
        loop {
            if let Some(p) = rel.borrow_mut().ready.pop_front() {
                return Ok(p);
            }
            match self.inbox.try_recv() {
                Ok(p) => self.sequence(rel, p),
                Err(TryRecvError::Disconnected) => return Err(RecvError::Disconnected),
                Err(TryRecvError::Empty) => {
                    // A sender may have stashed a packet for us in a
                    // holdback slot and gone quiet; rescue it rather than
                    // blocking forever, then park briefly so the race
                    // between a stash and this flush stays bounded.
                    if self.net.flush_held_to(self.host) {
                        continue;
                    }
                    match self.inbox.recv_timeout(RESCUE_POLL) {
                        Ok(p) => self.sequence(rel, p),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Disconnected),
                    }
                }
            }
        }
    }

    /// Non-blocking receive (reliable-channel semantics under an active
    /// fault plane, as for [`recv`](Self::recv)).
    pub fn try_recv(&self) -> Result<Packet<M>, RecvError> {
        let Some(rel) = &self.rel else {
            return self.inbox.try_recv().map_err(|e| match e {
                TryRecvError::Empty => RecvError::Empty,
                TryRecvError::Disconnected => RecvError::Disconnected,
            });
        };
        let mut flushed_once = false;
        loop {
            if let Some(p) = rel.borrow_mut().ready.pop_front() {
                return Ok(p);
            }
            match self.inbox.try_recv() {
                Ok(p) => self.sequence(rel, p),
                Err(TryRecvError::Disconnected) => return Err(RecvError::Disconnected),
                Err(TryRecvError::Empty) => {
                    if !flushed_once && self.net.flush_held_to(self.host) {
                        flushed_once = true;
                        continue;
                    }
                    return Err(RecvError::Empty);
                }
            }
        }
    }

    /// Runs one raw arrival through the dedup/resequencing buffers,
    /// advancing the cumulative-ack watermark for every in-order delivery.
    fn sequence(&self, rel: &RefCell<RelState<M>>, pkt: Packet<M>) {
        let mut st = rel.borrow_mut();
        if pkt.wire_seq == 0 {
            // Self-delivery bypasses the wire and is never faulted.
            st.ready.push_back(pkt);
            return;
        }
        let stats = &self.net.fabric.stats;
        let from = pkt.from;
        let seq = pkt.wire_seq;
        let expected = st.peers[from.index()].next;
        if seq < expected || st.peers[from.index()].parked.contains_key(&seq) {
            stats.dups_suppressed.bump();
            let mut t = self.tracer.borrow_mut();
            if t.enabled() {
                t.emit(pkt.arrival_vt, TraceKind::DupSuppressed, |e| {
                    e.with_peer(from).with_aux(seq as u32)
                });
            }
        } else if seq == expected {
            self.net.ack(from, self.host, seq);
            st.peers[from.index()].next += 1;
            st.ready.push_back(pkt);
            // The gap just closed may release parked successors.
            loop {
                let released = {
                    let peer = &mut st.peers[from.index()];
                    match peer.parked.remove(&peer.next) {
                        Some(p) => {
                            peer.next += 1;
                            p
                        }
                        None => break,
                    }
                };
                self.net.ack(from, self.host, released.wire_seq);
                st.ready.push_back(released);
            }
        } else {
            stats.reorder_buffered.bump();
            st.peers[from.index()].parked.insert(seq, pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ScriptedFault;

    #[test]
    fn arrival_stamp_uses_latency_model() {
        let (net, eps) = Network::<&'static str>::new(2, CostModel::default());
        let arrival = eps[0].send(HostId(1), "hdr", 0, 1_000);
        assert_eq!(arrival, 1_000 + net.cost().msg_time(0));
        let pkt = eps[1].recv().unwrap();
        assert_eq!(pkt.msg, "hdr");
        assert_eq!(pkt.send_vt, 1_000);
        assert_eq!(pkt.arrival_vt, arrival);
        assert_eq!(pkt.from, HostId(0));
        assert_eq!(pkt.wire_seq, 0);
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        let (_net, mut eps) = Network::<u32>::new(2, CostModel::default());
        let rx = eps.remove(1);
        let tx = eps.remove(0);
        for i in 0..100 {
            tx.send(HostId(1), i, 0, i as Ns);
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap().msg, i);
        }
    }

    #[test]
    fn cross_thread_delivery_works() {
        let (_net, mut eps) = Network::<u64>::new(3, CostModel::default());
        let e2 = eps.remove(2);
        let e1 = eps.remove(1);
        let e0 = eps.remove(0);
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                e0.send(HostId(2), i, 64, i);
            }
        });
        let t2 = std::thread::spawn(move || {
            for i in 50..100 {
                e1.send(HostId(2), i, 64, i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(e2.recv().unwrap().msg);
        }
        t1.join().unwrap();
        t2.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (net, eps) = Network::<()>::new(2, CostModel::default());
        eps[0].send(HostId(1), (), 128, 0);
        eps[0].send(HostId(1), (), 0, 0);
        assert_eq!(net.stats().messages.get(), 2);
        assert_eq!(net.stats().payload_bytes.get(), 128);
    }

    #[test]
    fn link_traffic_attributes_per_link_and_omits_idle() {
        let (net, eps) = Network::<()>::new(3, CostModel::default());
        eps[0].send(HostId(1), (), 128, 0);
        eps[0].send(HostId(1), (), 32, 0);
        eps[2].send(HostId(0), (), 8, 0);
        assert_eq!(net.link_traffic(), vec![(0, 1, 2, 160), (2, 0, 1, 8)],);
    }

    #[test]
    fn try_recv_reports_empty() {
        let (_net, eps) = Network::<()>::new(1, CostModel::default());
        assert_eq!(eps[0].try_recv().unwrap_err(), RecvError::Empty);
    }

    #[test]
    fn self_send_is_allowed() {
        // The manager host's own application threads fault too; their
        // requests go through the same path.
        let (_net, eps) = Network::<u8>::new(1, CostModel::default());
        eps[0].send(HostId(0), 7, 0, 0);
        assert_eq!(eps[0].recv().unwrap().msg, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_hosts_panics() {
        let _ = Network::<()>::new(0, CostModel::default());
    }

    #[test]
    fn inactive_plane_is_inert() {
        let (net, eps) =
            Network::<u8>::with_faults(2, CostModel::default(), FaultPlane::disabled());
        assert!(!net.fault_active());
        let r = net.send_receipt(HostId(0), HostId(1), 1, 0, 0);
        assert_eq!(r.wire_seq, 0);
        assert!(r.delivered && r.drops == 0);
        assert_eq!(eps[1].recv().unwrap().wire_seq, 0);
        assert_eq!(net.total_unacked(), 0);
    }

    #[test]
    fn drops_inflate_arrival_and_count_retransmits() {
        // drop = 1 for the first transmission would retry forever; use a
        // scripted DropOnce so exactly one loss occurs deterministically.
        let plane = FaultPlane {
            scripted: vec![ScriptedFault::drop_nth(HostId(0), HostId(1), 1)],
            ..FaultPlane::disabled()
        };
        let rto = plane.rto_ns;
        let (net, eps) = Network::<u8>::with_faults(2, CostModel::default(), plane);
        let clean = net.cost().msg_time(0);
        let r = net.send_receipt(HostId(0), HostId(1), 9, 0, 0);
        assert!(r.delivered);
        assert_eq!(r.drops, 1);
        assert_eq!(r.arrival, clean + rto);
        assert_eq!(net.stats().pkts_dropped.get(), 1);
        assert_eq!(net.stats().retransmits.get(), 1);
        let pkt = eps[1].recv().unwrap();
        assert_eq!(pkt.arrival_vt, clean + rto);
        assert_eq!(pkt.wire_seq, 1);
        assert_eq!(net.link_acked(HostId(0), HostId(1)), 1);
        assert_eq!(net.total_unacked(), 0);
    }

    #[test]
    fn duplicates_are_suppressed_at_the_receiver() {
        let plane = FaultPlane::lossy(42, 0.0, 1.0, 0.0);
        let (net, eps) = Network::<u8>::with_faults(2, CostModel::default(), plane);
        for i in 0..10 {
            eps[0].send(HostId(1), i, 0, 0);
        }
        for i in 0..10 {
            assert_eq!(eps[1].recv().unwrap().msg, i);
        }
        assert_eq!(eps[1].try_recv().unwrap_err(), RecvError::Empty);
        assert_eq!(net.stats().dups_delivered.get(), 10);
        assert_eq!(net.stats().dups_suppressed.get(), 10);
        assert_eq!(net.total_unacked(), 0);
    }

    #[test]
    fn reordered_packets_are_resequenced() {
        // Every packet is a reorder candidate; the holdback slot inverts
        // consecutive pairs on the wire and the receive buffer repairs
        // them back into FIFO order.
        let plane = FaultPlane::lossy(7, 0.0, 0.0, 1.0);
        let (net, eps) = Network::<u32>::with_faults(2, CostModel::default(), plane);
        for i in 0..20 {
            eps[0].send(HostId(1), i, 0, i as Ns);
        }
        for i in 0..20 {
            assert_eq!(eps[1].recv().unwrap().msg, i, "FIFO broken at {i}");
        }
        assert!(net.stats().reorders.get() > 0);
        assert!(net.stats().reorder_buffered.get() > 0);
        assert_eq!(net.total_unacked(), 0);
    }

    #[test]
    fn blackhole_exhausts_budget_and_leaves_seq_unacked() {
        let plane = FaultPlane {
            scripted: vec![ScriptedFault::blackhole_nth(HostId(0), HostId(1), 2)],
            ..FaultPlane::disabled()
        };
        let (net, eps) = Network::<u8>::with_faults(2, CostModel::default(), plane);
        let r1 = net.send_receipt(HostId(0), HostId(1), 1, 0, 0);
        let r2 = net.send_receipt(HostId(0), HostId(1), 2, 0, 0);
        let r3 = net.send_receipt(HostId(0), HostId(1), 3, 0, 0);
        assert!(r1.delivered && !r2.delivered && r3.delivered);
        assert_eq!(net.stats().expired.get(), 1);
        // Packet 1 arrives; packet 3 stays parked behind the permanent
        // gap left by the blackholed packet 2.
        assert_eq!(eps[1].recv().unwrap().msg, 1);
        assert_eq!(eps[1].try_recv().unwrap_err(), RecvError::Empty);
        assert_eq!(net.link_acked(HostId(0), HostId(1)), 1);
        assert_eq!(net.total_unacked(), 2);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = |seed| {
            let plane = FaultPlane::lossy(seed, 0.2, 0.1, 0.1);
            let (net, eps) = Network::<u32>::with_faults(2, CostModel::default(), plane);
            for i in 0..200 {
                eps[0].send(HostId(1), i, 0, i as Ns);
            }
            for i in 0..200 {
                assert_eq!(eps[1].recv().unwrap().msg, i);
            }
            (
                net.stats().pkts_dropped.get(),
                net.stats().dups_delivered.get(),
                net.stats().reorders.get(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn send_to_torn_down_endpoint_is_tolerated() {
        let (net, mut eps) = Network::<u8>::new(2, CostModel::default());
        drop(eps.remove(1));
        // Pre-PR this panicked the sender; a late shutdown-era message
        // must degrade into a counter instead.
        eps[0].send(HostId(1), 1, 0, 0);
        assert_eq!(net.stats().send_failures.get(), 1);
    }
}
