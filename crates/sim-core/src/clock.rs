//! Virtual clocks.
//!
//! Every simulated thread (application thread, DSM server thread, manager)
//! owns a [`Clock`] measured in virtual nanoseconds since the start of the
//! run. Clocks only move forward. Message passing merges clocks in the
//! Lamport style: a handler runs at `max(local, arrival)`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nanoseconds.
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const US: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MS: Ns = 1_000_000;

/// A thread-local virtual clock.
///
/// The clock is deliberately not shareable: each simulated thread advances
/// its own clock and publishes it through a [`SharedClock`] when other
/// threads need to observe it (e.g. the server thread checking whether the
/// application was busy when a message arrived).
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Ns,
}

impl Clock {
    /// Creates a clock at virtual time zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Creates a clock at the given virtual time.
    pub fn at(now: Ns) -> Self {
        Self { now }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Advances the clock by `delta` and returns the new time.
    #[inline]
    pub fn advance(&mut self, delta: Ns) -> Ns {
        self.now += delta;
        self.now
    }

    /// Moves the clock forward to `t` if `t` is in the future; otherwise
    /// leaves it unchanged. Returns the new time.
    ///
    /// This is the Lamport merge used when a blocked thread resumes at the
    /// completion time of a remote operation.
    #[inline]
    pub fn merge(&mut self, t: Ns) -> Ns {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

/// A clock value published for other threads to read.
///
/// Used for the "was the host busy computing when the request arrived?"
/// test in the service-delay model (§3.5.1 of the paper): the server thread
/// compares a message's arrival time against the application clock of its
/// host.
#[derive(Clone, Debug, Default)]
pub struct SharedClock {
    inner: Arc<AtomicU64>,
}

impl SharedClock {
    /// Creates a shared clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the most recently published time.
    #[inline]
    pub fn load(&self) -> Ns {
        self.inner.load(Ordering::Acquire)
    }

    /// Publishes `t` if it is later than the currently published time.
    ///
    /// Publishing never moves the shared value backwards, so concurrent
    /// publishers of a host's several application threads combine to "the
    /// latest application activity on this host".
    #[inline]
    pub fn publish_max(&self, t: Ns) {
        self.inner.fetch_max(t, Ordering::AcqRel);
    }
}

/// The most recent busy interval of a host's application threads.
///
/// The DSM server needs "was the application computing at virtual time
/// t?" to choose between the poller and the sweeper (§3.5.1). The
/// application records each compute/access burst `[start, end)`;
/// contiguous bursts merge. Time spent blocked (barriers, locks, faults)
/// is never recorded, so hosts parked in synchronization read as idle.
#[derive(Debug, Default)]
pub struct BusyWindow {
    start: AtomicU64,
    end: AtomicU64,
}

impl BusyWindow {
    /// An empty window (never busy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy burst `[from, to)`; merges with the previous burst
    /// when contiguous.
    pub fn record(&self, from: Ns, to: Ns) {
        if from > to {
            return;
        }
        // Single producer (one application thread per host): plain loads
        // and stores suffice.
        if self.end.load(Ordering::Acquire) != from {
            self.start.store(from, Ordering::Release);
        }
        self.end.store(to, Ordering::Release);
    }

    /// Whether the application was busy at virtual time `t` (within the
    /// most recent burst).
    pub fn busy_at(&self, t: Ns) -> bool {
        let end = self.end.load(Ordering::Acquire);
        let start = self.start.load(Ordering::Acquire);
        t >= start && t < end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_window_records_and_merges() {
        let b = BusyWindow::new();
        assert!(!b.busy_at(0));
        b.record(100, 200);
        assert!(b.busy_at(100));
        assert!(b.busy_at(199));
        assert!(!b.busy_at(200));
        assert!(!b.busy_at(50));
        // Contiguous burst merges.
        b.record(200, 300);
        assert!(b.busy_at(150));
        assert!(b.busy_at(250));
        // A disjoint burst replaces the window.
        b.record(1000, 1100);
        assert!(!b.busy_at(250));
        assert!(b.busy_at(1050));
    }

    #[test]
    fn clock_advances_and_merges_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.merge(5), 10, "merge with the past is a no-op");
        assert_eq!(c.merge(25), 25);
        assert_eq!(c.advance(1), 26);
    }

    #[test]
    fn clock_at_starts_at_given_time() {
        assert_eq!(Clock::at(42).now(), 42);
    }

    #[test]
    fn shared_clock_publish_max_keeps_latest() {
        let s = SharedClock::new();
        s.publish_max(100);
        s.publish_max(50);
        assert_eq!(s.load(), 100);
        s.publish_max(150);
        assert_eq!(s.load(), 150);
    }

    #[test]
    fn shared_clock_clones_share_state() {
        let s = SharedClock::new();
        let s2 = s.clone();
        s.publish_max(7);
        assert_eq!(s2.load(), 7);
    }
}
