//! Cooperative deterministic scheduling of simulated threads.
//!
//! The simulation runs every simulated host as real OS threads (one DSM
//! server plus the application threads), which makes the default execution
//! *optimistic*: virtual time is accounted deterministically, but the real
//! interleaving — and therefore message arrival order, directory state
//! transitions, and the recorded trace — is whatever the OS scheduler
//! produced. This module adds a **deterministic mode**: when a
//! [`Scheduler`] is enabled, exactly one simulated thread runs at a time,
//! every thread hands control back at explicit *yield points* (message
//! send/receive, fault entry, blocking rendezvous), and the next runnable
//! thread is picked by a deterministic [`SchedPolicy`]. A seed then maps
//! to exactly one interleaving and one trace, which is what makes
//! schedule *exploration* (random-walk / PCT search over interleavings,
//! with replayable minimal reproducers) possible at all.
//!
//! Design notes:
//!
//! * **Disabled is free.** A disabled scheduler hands out inert
//!   [`SchedThread`] handles whose methods are a single branch on an
//!   `Option`; the free-threaded default path is untouched.
//! * **Wake-ups are action-counted, not wired.** Blocking conditions
//!   (a waiter slot filling, a packet landing in an inbox) live in the
//!   protocol layer and are not told about the scheduler. Instead a
//!   global *action counter* is bumped after anything that could unblock
//!   a peer (every network delivery, every handler dispatch); a blocked
//!   thread is schedulable again exactly when the counter moved past the
//!   value it recorded when its condition last failed, and it simply
//!   re-checks. A finite number of re-checks per action means no
//!   livelock, and a thread whose condition was already met never parks.
//! * **Handler atomicity.** A DSM server handles one message per
//!   scheduling step: the dispatch boundary *is* the yield point, and
//!   everything inside a handler (window open/close, directory updates,
//!   reply sends) is atomic with respect to other simulated threads —
//!   exactly as in the real system, where a handler runs to completion
//!   inside the message layer.
//! * **Deadlock is a verdict, not a hang.** If no thread is runnable and
//!   an application thread is still blocked, the schedule deadlocked:
//!   the scheduler poisons itself, every blocked thread returns
//!   [`BlockOutcome::Poisoned`], and the run terminates with typed
//!   errors instead of hanging — a deadlocking schedule is a *finding*
//!   for the exploration harness.

use crate::clock::Ns;
use crate::rng::SplitMix64;
use crate::HostId;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How many scheduling steps a PCT priority-change schedule spreads its
/// change points over. PCT samples `depth - 1` change points uniformly
/// from this range; runs longer than the hint simply see no further
/// demotions.
const PCT_STEP_HINT: u64 = 4096;

/// Which simulated role a scheduled thread plays. Part of the
/// deterministic tie-break key (application threads before server
/// threads at equal virtual time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ThreadClass {
    /// An application thread (drives faults, barriers, locks).
    App,
    /// A DSM server thread (handles protocol messages; the manager shard
    /// runs inside its host's server dispatch).
    Server,
}

/// Identity of one simulated thread: the deterministic tie-break key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ThreadKey {
    /// Host the thread belongs to.
    pub host: HostId,
    /// Role on that host.
    pub class: ThreadClass,
    /// Index among same-class threads of the host (0 for the server,
    /// the application thread index otherwise).
    pub lane: u16,
}

impl ThreadKey {
    /// The server thread of `host`.
    pub fn server(host: HostId) -> Self {
        Self {
            host,
            class: ThreadClass::Server,
            lane: 0,
        }
    }

    /// Application thread `lane` of `host`.
    pub fn app(host: HostId, lane: u16) -> Self {
        Self {
            host,
            class: ThreadClass::App,
            lane,
        }
    }
}

impl std::fmt::Display for ThreadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            ThreadClass::App => write!(f, "{}.app{}", self.host, self.lane),
            ThreadClass::Server => write!(f, "{}.server", self.host),
        }
    }
}

/// How the deterministic scheduler picks the next runnable thread.
#[derive(Clone, Debug)]
pub enum SchedPolicy {
    /// Smallest `(virtual time, thread key)` first — the canonical
    /// deterministic schedule, closest to what the virtual-time model
    /// "means".
    VirtualTime,
    /// Seeded uniform random walk over the runnable set.
    Random {
        /// Seed of the walk.
        seed: u64,
    },
    /// PCT-style priority schedule (Burckhardt et al.): every thread gets
    /// a random priority, the highest-priority runnable thread always
    /// runs, and at `depth - 1` pre-sampled change points the running
    /// thread's priority drops below everyone else's. Finds bugs of
    /// "ordering depth" ≤ `depth` with known probability.
    Pct {
        /// Seed for priorities and change points.
        seed: u64,
        /// Bug depth to target (≥ 1; 1 means no priority changes).
        depth: u32,
    },
    /// Replays a recorded decision sequence: entry *i* names the slot to
    /// run at step *i*. A choice that is not currently runnable (or an
    /// exhausted sequence) falls back to [`SchedPolicy::VirtualTime`], so
    /// prefixes of a recorded schedule are always replayable.
    Replay {
        /// Recorded slot choices, in dispatch order.
        choices: Arc<Vec<u32>>,
    },
}

/// Scheduling mode carried on a cluster configuration. Off by default:
/// the free-threaded optimistic execution. When on, it names the policy
/// and owns the shared decision log the run's [`Scheduler`] records into
/// (so callers can retrieve the schedule after the run for replay and
/// shrinking).
#[derive(Clone, Debug, Default)]
pub struct SchedMode {
    inner: Option<ModeInner>,
}

#[derive(Clone, Debug)]
struct ModeInner {
    policy: SchedPolicy,
    log: Arc<Mutex<Vec<u32>>>,
}

impl SchedMode {
    /// Free-threaded execution (the default).
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// Whether deterministic scheduling is requested.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Deterministic mode with the canonical [`SchedPolicy::VirtualTime`]
    /// policy.
    pub fn deterministic() -> Self {
        Self::with_policy(SchedPolicy::VirtualTime)
    }

    /// Deterministic mode with a seeded random-walk schedule.
    pub fn random(seed: u64) -> Self {
        Self::with_policy(SchedPolicy::Random { seed })
    }

    /// Deterministic mode with a seeded PCT priority schedule.
    pub fn pct(seed: u64, depth: u32) -> Self {
        Self::with_policy(SchedPolicy::Pct {
            seed,
            depth: depth.max(1),
        })
    }

    /// Deterministic mode replaying a recorded decision sequence.
    pub fn replay(choices: Vec<u32>) -> Self {
        Self::with_policy(SchedPolicy::Replay {
            choices: Arc::new(choices),
        })
    }

    /// Deterministic mode with an explicit policy.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        Self {
            inner: Some(ModeInner {
                policy,
                log: Arc::new(Mutex::new(Vec::new())),
            }),
        }
    }

    /// Short policy name for reports.
    pub fn policy_name(&self) -> &'static str {
        match &self.inner {
            None => "off",
            Some(m) => match m.policy {
                SchedPolicy::VirtualTime => "virtual-time",
                SchedPolicy::Random { .. } => "random",
                SchedPolicy::Pct { .. } => "pct",
                SchedPolicy::Replay { .. } => "replay",
            },
        }
    }

    /// The decision sequence the last run recorded under this mode (the
    /// slot picked at each scheduling step). Empty before any run or when
    /// off. Feed it to [`SchedMode::replay`] to reproduce the run.
    pub fn decisions(&self) -> Vec<u32> {
        match &self.inner {
            None => Vec::new(),
            Some(m) => m.log.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// What a scheduled blocking wait resolved to.
#[derive(Debug)]
pub enum BlockOutcome<T> {
    /// The condition was met; the value it produced.
    Ready(T),
    /// The schedule deadlocked (no runnable thread while an application
    /// thread was blocked) and the run is tearing down. The caller must
    /// unwind/exit instead of retrying.
    Poisoned,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Blocked since the action counter read `seen`; schedulable again
    /// (to re-check its condition) once the counter moves past it.
    Blocked {
        seen: u64,
    },
    Done,
}

struct Slot {
    key: ThreadKey,
    vt: Ns,
    status: Status,
    attached: bool,
}

enum PolicyState {
    VirtualTime,
    Random {
        rng: SplitMix64,
    },
    Pct {
        prios: Vec<u64>,
        change_at: Vec<u64>,
        demote_next: u64,
    },
    Replay {
        choices: Arc<Vec<u32>>,
        pos: usize,
    },
}

struct State {
    slots: Vec<Slot>,
    attached: usize,
    started: bool,
    poisoned: bool,
    /// Index of the one thread currently allowed to run, if any.
    running: Option<usize>,
    /// Set while an unregistered external actor (the cluster's main
    /// thread, delivering shutdowns) runs inside a quiesced window;
    /// suppresses dispatches from its action bumps.
    external: bool,
    /// Global potentially-unblocking-action counter (see module docs).
    actions: u64,
    steps: u64,
    policy: PolicyState,
}

struct Inner {
    state: Mutex<State>,
    /// One condvar per slot: a dispatch wakes exactly the picked thread
    /// instead of broadcasting to every parked one (the broadcast storm
    /// dominates runtime on million-step schedules).
    cvs: Vec<Condvar>,
    /// Signalled when the scheduler goes idle or poisons; what
    /// [`Scheduler::quiesce_then`] waits on.
    main_cv: Condvar,
    log: Arc<Mutex<Vec<u32>>>,
}

/// Wakes every parked thread (poison teardown) and the quiesce waiter.
fn wake_everyone(inner: &Inner) {
    for cv in &inner.cvs {
        cv.notify_all();
    }
    inner.main_cv.notify_all();
}

/// The run-wide deterministic scheduler handle. Cloning shares the
/// scheduler; a default/disabled one is inert.
#[derive(Clone, Default)]
pub struct Scheduler {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scheduler({})",
            if self.inner.is_some() {
                "deterministic"
            } else {
                "off"
            }
        )
    }
}

impl Scheduler {
    /// An inert scheduler: every handle it produces is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Builds a scheduler for the thread set named by `keys` under
    /// `mode`'s policy (inert when the mode is off). The slot order of
    /// `keys` defines the decision-log numbering, so callers must build
    /// it deterministically (the cluster enumerates servers then
    /// application threads in host order).
    pub fn new(mode: &SchedMode, keys: Vec<ThreadKey>) -> Self {
        let Some(m) = &mode.inner else {
            return Self::disabled();
        };
        assert!(!keys.is_empty(), "deterministic mode with no threads");
        let policy = match &m.policy {
            SchedPolicy::VirtualTime => PolicyState::VirtualTime,
            SchedPolicy::Random { seed } => PolicyState::Random {
                rng: SplitMix64::new(*seed),
            },
            SchedPolicy::Pct { seed, depth } => {
                let mut rng = SplitMix64::new(*seed);
                // High bit set: every initial priority sits above every
                // demotion value, and demotions stay mutually distinct.
                let prios = keys.iter().map(|_| rng.next_u64() | (1 << 63)).collect();
                let mut change_at: Vec<u64> = (1..*depth)
                    .map(|_| 1 + rng.next_range(PCT_STEP_HINT))
                    .collect();
                change_at.sort_unstable();
                PolicyState::Pct {
                    prios,
                    change_at,
                    demote_next: 1 << 62,
                }
            }
            SchedPolicy::Replay { choices } => PolicyState::Replay {
                choices: Arc::clone(choices),
                pos: 0,
            },
        };
        m.log.lock().unwrap_or_else(|e| e.into_inner()).clear();
        let slots: Vec<Slot> = keys
            .into_iter()
            .map(|key| Slot {
                key,
                vt: 0,
                status: Status::Runnable,
                attached: false,
            })
            .collect();
        let cvs = (0..slots.len()).map(|_| Condvar::new()).collect();
        Self {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(State {
                    slots,
                    attached: 0,
                    started: false,
                    poisoned: false,
                    running: None,
                    external: false,
                    actions: 0,
                    steps: 0,
                    policy,
                }),
                cvs,
                main_cv: Condvar::new(),
                log: Arc::clone(&m.log),
            })),
        }
    }

    /// Whether deterministic scheduling is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers the calling OS thread as the simulated thread `key` and
    /// parks it until every expected thread has attached and the policy
    /// picks it. Must be called on the spawned thread itself. Returns an
    /// inert handle when the scheduler is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `key` names no slot or was already attached.
    pub fn attach(&self, key: ThreadKey) -> SchedThread {
        let Some(inner) = &self.inner else {
            return SchedThread { inner: None, id: 0 };
        };
        let mut st = lock(&inner.state);
        let id = st
            .slots
            .iter()
            .position(|s| s.key == key)
            .unwrap_or_else(|| panic!("no scheduler slot for thread {key}"));
        assert!(!st.slots[id].attached, "thread {key} attached twice");
        st.slots[id].attached = true;
        st.attached += 1;
        if st.attached == st.slots.len() {
            st.started = true;
            dispatch(inner, &mut st);
        }
        let t = SchedThread {
            inner: Some(Arc::clone(inner)),
            id,
        };
        drop(park_until_running(inner, st, id));
        t
    }

    /// Bumps the action counter from *any* thread (registered or not):
    /// called by the network fabric on every delivery, so a blocked
    /// receiver always becomes schedulable again. Dispatches if the
    /// scheduler was idle (an external actor made progress possible).
    pub fn bump_action(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = lock(&inner.state);
        st.actions += 1;
        if st.started && !st.external && !st.poisoned && st.running.is_none() {
            dispatch(inner, &mut st);
        }
    }

    /// Waits until every scheduled thread is either done or blocked with
    /// nothing runnable (the cluster has quiesced), then runs `f` with
    /// dispatching suppressed, then dispatches whatever `f`'s actions
    /// made runnable. This is how the cluster's (unscheduled) main thread
    /// injects its shutdown messages without racing the scheduled world.
    pub fn quiesce_then(&self, f: impl FnOnce()) {
        let Some(inner) = &self.inner else {
            f();
            return;
        };
        let mut st = lock(&inner.state);
        while !(st.poisoned || (st.started && st.running.is_none())) {
            st = wait(&inner.main_cv, st);
        }
        st.external = true;
        drop(st);
        f();
        let mut st = lock(&inner.state);
        st.external = false;
        if !st.poisoned && st.running.is_none() {
            dispatch(inner, &mut st);
        }
    }

    /// Number of scheduling decisions taken so far.
    pub fn steps(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => lock(&inner.state).steps,
        }
    }
}

/// One simulated thread's handle into the scheduler. Obtained from
/// [`Scheduler::attach`]; all methods are no-ops on a disabled handle.
/// Dropping the handle marks the thread done and hands control on.
pub struct SchedThread {
    inner: Option<Arc<Inner>>,
    id: usize,
}

impl SchedThread {
    /// An inert handle (what a disabled scheduler hands out).
    pub fn disabled() -> Self {
        Self { inner: None, id: 0 }
    }

    /// Whether this thread is cooperatively scheduled.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A cooperative yield point: records the thread's current virtual
    /// time, lets the policy pick the next thread (possibly this one
    /// again), and returns when this thread is picked again.
    pub fn yield_now(&self, vt: Ns) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = lock(&inner.state);
        if st.poisoned {
            return;
        }
        debug_assert_eq!(st.running, Some(self.id), "yield from a paused thread");
        st.slots[self.id].vt = vt;
        dispatch(inner, &mut st);
        drop(park_until_running(inner, st, self.id));
    }

    /// Bumps the action counter: the caller just did something that may
    /// have unblocked a peer (fulfilled a waiter, mutated protocol state)
    /// outside the network-delivery hook.
    pub fn action(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        lock(&inner.state).actions += 1;
    }

    /// Blocks until `check` produces a value, yielding to other threads
    /// while the condition is unmet. `check` runs *while this thread
    /// holds the schedule* (no scheduler lock held), so it may touch
    /// channels and waiter slots freely; it must be side-effect-free on
    /// failure. `vt` is the block-entry virtual time used for the
    /// policy's tie-break while parked.
    pub fn block_until<T>(&self, vt: Ns, mut check: impl FnMut() -> Option<T>) -> BlockOutcome<T> {
        let Some(inner) = &self.inner else {
            unreachable!("block_until on a disabled scheduler handle");
        };
        loop {
            // Snapshot the counter *before* checking: an external action
            // landing between a failed check and the park below leaves
            // `seen` stale, so the thread stays schedulable and re-checks
            // — no lost wake-up.
            let seen = {
                let st = lock(&inner.state);
                if st.poisoned {
                    return BlockOutcome::Poisoned;
                }
                st.actions
            };
            if let Some(v) = check() {
                return BlockOutcome::Ready(v);
            }
            let mut st = lock(&inner.state);
            if st.poisoned {
                return BlockOutcome::Poisoned;
            }
            st.slots[self.id].vt = vt;
            st.slots[self.id].status = Status::Blocked { seen };
            dispatch(inner, &mut st);
            let mut st = park_until_running(inner, st, self.id);
            if st.poisoned {
                return BlockOutcome::Poisoned;
            }
            st.slots[self.id].status = Status::Runnable;
        }
    }

    /// Marks the thread done and hands control to the next runnable
    /// thread. Idempotent; also called on drop.
    pub fn finish(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let mut st = lock(&inner.state);
        st.slots[self.id].status = Status::Done;
        // Finishing is an action: a sibling blocked on state this thread
        // just released (a cancelled waiter, a final message) must
        // re-check.
        st.actions += 1;
        if !st.poisoned {
            dispatch(&inner, &mut st);
        } else {
            wake_everyone(&inner);
        }
    }
}

impl Drop for SchedThread {
    fn drop(&mut self) {
        self.finish();
    }
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(cv: &Condvar, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn park_until_running<'a>(
    inner: &'a Inner,
    mut st: MutexGuard<'a, State>,
    id: usize,
) -> MutexGuard<'a, State> {
    while !(st.poisoned || st.running == Some(id)) {
        st = wait(&inner.cvs[id], st);
    }
    st
}

/// Whether slot `i` may be scheduled right now.
fn is_candidate(s: &Slot, actions: u64) -> bool {
    match s.status {
        Status::Runnable => true,
        Status::Blocked { seen } => seen < actions,
        Status::Done => false,
    }
}

/// Picks and installs the next thread to run; idles (or poisons, on a
/// genuine deadlock) when nothing is runnable. Call with the state lock
/// held, from the thread relinquishing control.
fn dispatch(inner: &Inner, st: &mut State) {
    st.running = None;
    if st.poisoned {
        wake_everyone(inner);
        return;
    }
    let actions = st.actions;
    // Candidate scans are allocation-free: a schedule takes millions of
    // steps and a Vec per step would dominate the scheduler's cost.
    let n_candidates = st.slots.iter().filter(|s| is_candidate(s, actions)).count();
    if n_candidates == 0 {
        let stuck_app = st
            .slots
            .iter()
            .any(|s| s.key.class == ThreadClass::App && s.status != Status::Done);
        if stuck_app {
            // A blocked application thread nobody can ever wake: the
            // schedule deadlocked. Poison so every thread unwinds with a
            // typed error instead of hanging the run.
            st.poisoned = true;
            wake_everyone(inner);
        } else {
            // Only servers are parked on empty inboxes; idle until an
            // external action (the cluster's shutdown) re-dispatches.
            inner.main_cv.notify_all();
        }
        return;
    }
    let step = st.steps + 1;
    let slots = &st.slots;
    let chosen = match &mut st.policy {
        PolicyState::VirtualTime => None,
        PolicyState::Random { rng } => (0..slots.len())
            .filter(|&i| is_candidate(&slots[i], actions))
            .nth(rng.next_usize(n_candidates)),
        PolicyState::Pct {
            prios,
            change_at,
            demote_next,
        } => {
            let pick = (0..slots.len())
                .filter(|&i| is_candidate(&slots[i], actions))
                .max_by_key(|&i| prios[i])
                .expect("non-empty candidate set");
            while change_at.first() == Some(&step) {
                change_at.remove(0);
                prios[pick] = *demote_next;
                *demote_next -= 1;
            }
            Some(pick)
        }
        PolicyState::Replay { choices, pos } => {
            let want = choices.get(*pos).map(|&c| c as usize);
            *pos += 1;
            // Exhausted or invalid choices fall back to virtual-time order.
            want.filter(|&w| w < slots.len() && is_candidate(&slots[w], actions))
        }
    };
    let pick = chosen.unwrap_or_else(|| {
        (0..st.slots.len())
            .filter(|&i| is_candidate(&st.slots[i], actions))
            .min_by_key(|&i| (st.slots[i].vt, st.slots[i].key))
            .expect("non-empty candidate set")
    });
    st.steps += 1;
    inner
        .log
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(pick as u32);
    st.running = Some(pick);
    inner.cvs[pick].notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn keys(apps: usize) -> Vec<ThreadKey> {
        let mut v = vec![ThreadKey::server(HostId(0))];
        for t in 0..apps {
            v.push(ThreadKey::app(HostId(0), t as u16));
        }
        v
    }

    #[test]
    fn disabled_scheduler_is_inert() {
        let s = Scheduler::disabled();
        assert!(!s.is_enabled());
        let t = s.attach(ThreadKey::app(HostId(0), 0));
        assert!(!t.enabled());
        t.yield_now(5);
        s.bump_action();
        s.quiesce_then(|| {});
        assert_eq!(s.steps(), 0);
        assert_eq!(SchedMode::off().decisions(), Vec::<u32>::new());
    }

    /// Two producers and one counter-consumer, serialized: the consumer
    /// blocks until both producers bumped, and the whole interleaving is
    /// recorded and identical run-to-run.
    fn run_once(mode: &SchedMode) -> (u64, Vec<u32>) {
        let sched = Scheduler::new(mode, keys(2));
        let counter = Arc::new(AtomicU64::new(0));
        let order = Arc::new(Mutex::new(Vec::<u64>::new()));
        std::thread::scope(|scope| {
            for lane in 0..2u16 {
                let sched = sched.clone();
                let counter = Arc::clone(&counter);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    let t = sched.attach(ThreadKey::app(HostId(0), lane));
                    for i in 0..3 {
                        counter.fetch_add(1, Ordering::Relaxed);
                        order.lock().unwrap().push(u64::from(lane) * 10 + i);
                        t.action();
                        t.yield_now(i);
                    }
                });
            }
            let sched2 = sched.clone();
            let counter2 = Arc::clone(&counter);
            scope.spawn(move || {
                let t = sched2.attach(ThreadKey::server(HostId(0)));
                let got = t.block_until(0, || {
                    (counter2.load(Ordering::Relaxed) >= 6)
                        .then(|| counter2.load(Ordering::Relaxed))
                });
                match got {
                    BlockOutcome::Ready(v) => assert_eq!(v, 6),
                    BlockOutcome::Poisoned => panic!("unexpected poison"),
                }
            });
        });
        let hash = order
            .lock()
            .unwrap()
            .iter()
            .fold(17u64, |h, &x| h.wrapping_mul(31).wrapping_add(x));
        (hash, mode.decisions())
    }

    #[test]
    fn same_policy_same_interleaving() {
        for mode in [
            SchedMode::deterministic(),
            SchedMode::random(42),
            SchedMode::pct(7, 3),
        ] {
            let (h1, d1) = run_once(&mode);
            let (h2, d2) = run_once(&mode);
            assert_eq!(h1, h2, "{} interleaving drifted", mode.policy_name());
            assert_eq!(d1, d2, "{} decision log drifted", mode.policy_name());
            assert!(!d1.is_empty());
        }
    }

    #[test]
    fn replay_reproduces_a_random_walk() {
        let random = SchedMode::random(1234);
        let (h1, decisions) = run_once(&random);
        let replay = SchedMode::replay(decisions.clone());
        let (h2, d2) = run_once(&replay);
        assert_eq!(h1, h2, "replay produced a different interleaving");
        assert_eq!(decisions, d2, "replay re-recorded a different log");
    }

    #[test]
    fn different_seeds_usually_differ() {
        // With three threads and nine yield points at least one of these
        // seeds must deviate from the virtual-time order.
        let (base, _) = run_once(&SchedMode::deterministic());
        let diverged = (0..8u64).any(|s| run_once(&SchedMode::random(s)).0 != base);
        assert!(diverged, "random walks never left the default order");
    }

    #[test]
    fn deadlock_poisons_instead_of_hanging() {
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new(&mode, vec![ThreadKey::app(HostId(0), 0)]);
        let outcome = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let t = sched.attach(ThreadKey::app(HostId(0), 0));
                    // A condition nothing will ever satisfy.
                    match t.block_until(0, || None::<()>) {
                        BlockOutcome::Poisoned => "poisoned",
                        BlockOutcome::Ready(()) => "ready",
                    }
                })
                .join()
                .unwrap()
        });
        assert_eq!(outcome, "poisoned");
    }

    #[test]
    fn quiesce_runs_after_all_threads_block_or_finish() {
        let mode = SchedMode::deterministic();
        let sched = Scheduler::new(&mode, keys(1));
        let flag = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let sched_app = sched.clone();
            scope.spawn(move || {
                let t = sched_app.attach(ThreadKey::app(HostId(0), 0));
                t.yield_now(1);
                // App finishes; server stays blocked on the flag.
            });
            let sched_srv = sched.clone();
            let flag_srv = Arc::clone(&flag);
            scope.spawn(move || {
                let t = sched_srv.attach(ThreadKey::server(HostId(0)));
                match t.block_until(0, || {
                    let v = flag_srv.load(Ordering::Relaxed);
                    (v != 0).then_some(v)
                }) {
                    BlockOutcome::Ready(v) => assert_eq!(v, 9),
                    BlockOutcome::Poisoned => panic!("server poisoned"),
                }
            });
            // Main thread: wait for quiescence, then unblock the server
            // the way the cluster injects its shutdown messages.
            let flag_main = Arc::clone(&flag);
            sched.quiesce_then(move || {
                flag_main.store(9, Ordering::Relaxed);
            });
            sched.bump_action();
        });
    }
}
